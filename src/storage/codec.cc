#include "storage/codec.h"

#include <cstring>

namespace pisrep::storage {

namespace {
using util::Result;
using util::Status;
}  // namespace

void PutVarint(std::uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutSignedVarint(std::int64_t v, std::string* out) {
  std::uint64_t zigzag =
      (static_cast<std::uint64_t>(v) << 1) ^
      static_cast<std::uint64_t>(v >> 63);
  PutVarint(zigzag, out);
}

void PutLengthPrefixed(std::string_view s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s.data(), s.size());
}

Result<std::uint64_t> Decoder::GetVarint() {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift >= 64) return Status::DataLoss("varint too long");
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
  return Status::DataLoss("truncated varint");
}

Result<std::int64_t> Decoder::GetSignedVarint() {
  PISREP_ASSIGN_OR_RETURN(std::uint64_t zigzag, GetVarint());
  return static_cast<std::int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
}

Result<std::string> Decoder::GetLengthPrefixed() {
  PISREP_ASSIGN_OR_RETURN(std::uint64_t len, GetVarint());
  if (pos_ + len > data_.size()) {
    return Status::DataLoss("truncated length-prefixed string");
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<std::uint8_t> Decoder::GetByte() {
  if (pos_ >= data_.size()) return Status::DataLoss("truncated byte");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

void EncodeValue(const Value& value, std::string* out) {
  switch (value.type()) {
    case ColumnType::kInt64:
      PutSignedVarint(value.AsInt(), out);
      return;
    case ColumnType::kDouble: {
      double d = value.AsReal();
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      char raw[8];
      for (int i = 0; i < 8; ++i) {
        raw[i] = static_cast<char>(bits >> (8 * i));
      }
      out->append(raw, 8);
      return;
    }
    case ColumnType::kString:
      PutLengthPrefixed(value.AsStr(), out);
      return;
    case ColumnType::kBool:
      out->push_back(value.AsBool() ? 1 : 0);
      return;
  }
}

Result<Value> DecodeValue(ColumnType type, Decoder& dec) {
  switch (type) {
    case ColumnType::kInt64: {
      PISREP_ASSIGN_OR_RETURN(std::int64_t v, dec.GetSignedVarint());
      return Value::Int(v);
    }
    case ColumnType::kDouble: {
      std::uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        PISREP_ASSIGN_OR_RETURN(std::uint8_t b, dec.GetByte());
        bits |= static_cast<std::uint64_t>(b) << (8 * i);
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case ColumnType::kString: {
      PISREP_ASSIGN_OR_RETURN(std::string s, dec.GetLengthPrefixed());
      return Value::Str(std::move(s));
    }
    case ColumnType::kBool: {
      PISREP_ASSIGN_OR_RETURN(std::uint8_t b, dec.GetByte());
      if (b > 1) return Status::DataLoss("invalid bool byte");
      return Value::Boolean(b == 1);
    }
  }
  return Status::DataLoss("unknown column type");
}

void EncodeRow(const TableSchema& schema, const Row& row, std::string* out) {
  for (std::size_t i = 0; i < schema.num_columns(); ++i) {
    EncodeValue(row[i], out);
  }
}

Result<Row> DecodeRow(const TableSchema& schema, Decoder& dec) {
  Row row;
  row.reserve(schema.num_columns());
  for (const Column& col : schema.columns()) {
    PISREP_ASSIGN_OR_RETURN(Value v, DecodeValue(col.type, dec));
    row.push_back(std::move(v));
  }
  return row;
}

void EncodeSchema(const TableSchema& schema, std::string* out) {
  PutLengthPrefixed(schema.table_name(), out);
  PutVarint(schema.num_columns(), out);
  for (const Column& col : schema.columns()) {
    PutLengthPrefixed(col.name, out);
    out->push_back(static_cast<char>(col.type));
  }
  PutVarint(schema.primary_key_index(), out);
  PutVarint(schema.secondary_indexes().size(), out);
  for (std::size_t idx : schema.secondary_indexes()) {
    PutVarint(idx, out);
  }
  PutVarint(schema.ordered_indexes().size(), out);
  for (std::size_t idx : schema.ordered_indexes()) {
    PutVarint(idx, out);
  }
}

Result<TableSchema> DecodeSchema(Decoder& dec) {
  PISREP_ASSIGN_OR_RETURN(std::string name, dec.GetLengthPrefixed());
  PISREP_ASSIGN_OR_RETURN(std::uint64_t num_cols, dec.GetVarint());
  if (num_cols == 0 || num_cols > 1024) {
    return Status::DataLoss("implausible column count");
  }
  std::vector<Column> columns;
  columns.reserve(num_cols);
  for (std::uint64_t i = 0; i < num_cols; ++i) {
    PISREP_ASSIGN_OR_RETURN(std::string col_name, dec.GetLengthPrefixed());
    PISREP_ASSIGN_OR_RETURN(std::uint8_t type_byte, dec.GetByte());
    if (type_byte > static_cast<std::uint8_t>(ColumnType::kBool)) {
      return Status::DataLoss("invalid column type byte");
    }
    columns.push_back({std::move(col_name),
                       static_cast<ColumnType>(type_byte)});
  }
  PISREP_ASSIGN_OR_RETURN(std::uint64_t pk, dec.GetVarint());
  if (pk >= num_cols) return Status::DataLoss("primary key out of range");
  std::string pk_name = columns[pk].name;
  TableSchema schema(std::move(name), std::move(columns), pk_name);
  PISREP_ASSIGN_OR_RETURN(std::uint64_t num_indexes, dec.GetVarint());
  for (std::uint64_t i = 0; i < num_indexes; ++i) {
    PISREP_ASSIGN_OR_RETURN(std::uint64_t idx, dec.GetVarint());
    if (idx >= num_cols) return Status::DataLoss("index column out of range");
    schema.AddIndex(schema.columns()[idx].name);
  }
  PISREP_ASSIGN_OR_RETURN(std::uint64_t num_ordered, dec.GetVarint());
  for (std::uint64_t i = 0; i < num_ordered; ++i) {
    PISREP_ASSIGN_OR_RETURN(std::uint64_t idx, dec.GetVarint());
    if (idx >= num_cols) {
      return Status::DataLoss("ordered index column out of range");
    }
    schema.AddOrderedIndex(schema.columns()[idx].name);
  }
  return schema;
}

}  // namespace pisrep::storage
