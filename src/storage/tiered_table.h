#ifndef PISREP_STORAGE_TIERED_TABLE_H_
#define PISREP_STORAGE_TIERED_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/cold_store.h"
#include "storage/hot_tier.h"
#include "storage/table.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::storage {

/// Residency policy for one tiered table.
struct TierPolicy {
  /// Target number of resident rows; the LRU-coldest unpinned rows beyond
  /// this are demoted at each Tick. 0 = no capacity bound.
  std::size_t hot_capacity_rows = 4096;
  /// Optional int64 (sim TimePoint) column driving age-based demotion:
  /// rows whose column value is older than `demote_age` at Tick time are
  /// cold-eligible regardless of capacity (old votes, inactive titles).
  std::string age_column;
  util::Duration demote_age = 0;
};

/// Tier counters for one table, aggregated into pisrep_storage_* metrics.
struct TieredTableStats {
  std::size_t hot_rows = 0;
  std::size_t cold_rows = 0;
  std::size_t pinned_rows = 0;
  std::uint64_t hits = 0;
  std::uint64_t faults = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t approx_resident_bytes = 0;
};

/// Deterministic deep-size model of one value / row: struct size plus
/// string payload. Shared by the resident-bytes gauge and the tiered
/// storage benchmark so both twins are measured with the same ruler.
inline std::uint64_t ApproxValueBytes(const Value& value) {
  std::uint64_t bytes = sizeof(Value);
  if (value.type() == ColumnType::kString) bytes += value.AsStr().size();
  return bytes;
}
inline std::uint64_t ApproxRowBytes(const Row& row) {
  std::uint64_t bytes = sizeof(Row);
  for (const Value& value : row) bytes += ApproxValueBytes(value);
  return bytes;
}

/// The access facade of the tiered storage engine (DESIGN.md §15): mirrors
/// Table's full API, serving resident rows from the in-memory Table and
/// transparently faulting the rest in from the ColdStore.
///
/// Invariants:
///  - Write-through: every mutation lands in the cold store synchronously
///    before the in-memory table announces it, so the block file is the
///    complete, authoritative copy and the hot tier is purely a cache
///    (hot ⊆ cold). Demoting a row just drops its resident copy.
///  - Deterministic iteration: index visits and scans walk the cold
///    store's append-order offset lists regardless of residency, so query
///    results — including float-summation order in the aggregation job —
///    are bit-identical to an all-hot table fed the same mutations.
///  - Read paths are const and never structurally mutate: a cold Get
///    decodes a transient row and enqueues the key for promotion at the
///    next Tick (deferred admission), which keeps concurrent snapshot /
///    aggregation readers safe without a lock on the data itself.
///
/// Rows handed to visitors may be transient cold decodes: references are
/// valid only for the duration of the callback, never retained.
///
/// Without an attached ColdStore the facade is a zero-cost pass-through to
/// the wrapped Table, so untiered tables keep their exact semantics.
class TieredTable {
 public:
  /// `hot` is owned by the Database; `cold` may be nullptr (pass-through).
  TieredTable(Table* hot, ColdStore* cold, TierPolicy policy);

  TieredTable(const TieredTable&) = delete;
  TieredTable& operator=(const TieredTable&) = delete;

  const TableSchema& schema() const { return hot_->schema(); }
  bool tiered() const { return cold_ != nullptr; }
  /// The wrapped in-memory table (tests and legacy callers). Bypassing the
  /// facade on a tiered table sees only resident rows — reads must come
  /// through the facade.
  Table* hot() { return hot_; }

  /// Live rows across both tiers.
  std::size_t size() const;
  std::size_t HotRows() const { return hot_->size(); }

  util::Status Insert(Row row);
  util::Status Upsert(Row row);
  util::Result<Row> Get(const Value& key) const;
  bool Contains(const Value& key) const;
  util::Status Delete(const Value& key);

  util::Result<std::vector<Row>> FindByIndex(std::string_view column,
                                             const Value& value) const;
  util::Status ForEachByIndex(
      std::string_view column, const Value& value,
      const std::function<void(const Row&)>& visit) const;
  util::Result<std::size_t> CountByIndex(std::string_view column,
                                         const Value& value) const;
  util::Result<std::vector<Row>> ScanRange(std::string_view column,
                                           const Value& min,
                                           const Value& max) const;
  util::Result<std::vector<Row>> ScanOrdered(std::string_view column,
                                             bool ascending,
                                             std::size_t limit) const;
  std::vector<Row> Scan(const std::function<bool(const Row&)>& pred) const;
  void ForEach(const std::function<void(const Row&)>& visit) const;

  // -- Residency control ----------------------------------------------------

  /// Pins the row resident (faulting it in if cold); pinned rows are never
  /// demoted. Refcounted; the server pins rows the live ScoreSnapshot
  /// references. kNotFound when the key does not exist.
  util::Status Pin(const Value& key);
  util::Status Unpin(const Value& key);
  bool IsHot(const Value& key) const;

  /// The sim-clock eviction schedule hook: promotes queued faults, demotes
  /// aged-out rows and LRU overflow past the capacity target.
  void Tick(util::TimePoint now);

  /// Drops every unpinned resident row (tests and benchmarks).
  void DemoteAll();

  // -- Replication / replay import (no listener notification) --------------

  /// Cold-only apply of a replicated/replayed frame: the row lands in the
  /// block file without populating the hot tier, which is what lets a
  /// backup resync stream blocks at flat memory. `row_bytes` must be the
  /// frame's EncodeRow payload for `row`. `strict_insert` preserves
  /// duplicate-key detection (live replication import); replay of a
  /// pre-tiering WAL uses upsert semantics, since the same rows may exist
  /// in both logs during migration.
  util::Status ApplyColdPut(const Row& row, std::string_view row_bytes,
                            bool strict_insert);
  util::Status ApplyColdDelete(const Value& key);

  /// Rebuilds the cold-side index maps (and residents' cached offsets) by
  /// scanning the cold store — on open, and after a GC moved every frame.
  util::Status RebuildFromCold();

  TieredTableStats stats() const;
  /// Deterministic model of this table's resident memory: hot rows + hot
  /// indexes + tier bookkeeping + cold in-memory index (never cold rows).
  std::uint64_t ApproxResidentBytes() const;

 private:
  util::Status Promote(const std::string& key_bytes);
  void Demote(const std::string& key_bytes);
  /// Appends `offset` to the cold secondary/ordered index maps.
  void IndexColdRow(std::uint64_t offset, const Row& row);
  std::string EncodeKey(const Value& key) const;
  util::Result<Value> DecodeKey(std::string_view key_bytes) const;
  util::Result<Row> DecodeRowBytes(std::string_view row_bytes) const;
  util::TimePoint AgeOf(const Row& row) const;
  /// Resolves one cold-index offset: serves the resident copy when hot,
  /// otherwise preads + decodes; skips stale frames. `verify_column` ≥ 0
  /// guards against digest collisions in the cold secondary map.
  util::Status VisitOffset(std::uint64_t offset, int verify_column,
                           const Value* expect, bool* visited,
                           const std::function<void(const Row&)>& visit)
      const;

  Table* hot_;
  ColdStore* cold_;
  TierPolicy policy_;
  std::string name_;
  ColumnType key_type_ = ColumnType::kInt64;
  int age_col_ = -1;
  HotTier tier_;
  /// Per secondary index: digest(EncodeValue(column)) → frame offsets in
  /// append order (may contain stale entries; visits liveness-check).
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>>
      cold_sec_;
  std::size_t cold_sec_entries_ = 0;
  /// Per ordered index: column value → frame offset, sorted.
  std::vector<std::multimap<Value, std::uint64_t, ValueLess>> cold_ord_;
  mutable std::atomic<std::uint64_t> faults_{0};
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_TIERED_TABLE_H_
