#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#include "storage/codec.h"

namespace pisrep::storage {

namespace {
using util::Result;
using util::Status;
}  // namespace

std::uint32_t WalChecksum(std::string_view payload) {
  std::uint32_t h = 2166136261u;
  for (char c : payload) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open WAL " + path + ": " +
                               std::strerror(errno));
  }
  return Status::Ok();
}

Status WalWriter::OpenTruncated(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot truncate WAL " + path + ": " +
                               std::strerror(errno));
  }
  return Status::Ok();
}

Status WalWriter::Append(std::string_view payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is not open");
  }
  std::string frame;
  PutVarint(payload.size(), &frame);
  frame.append(payload.data(), payload.size());
  std::uint32_t checksum = WalChecksum(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>(checksum >> (8 * i)));
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::DataLoss("short write to WAL");
  }
  std::fflush(file_);
  return Status::Ok();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WalReader::Open(const std::string& path) {
  data_.clear();
  pos_ = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // A missing log is an empty log.
    return Status::Ok();
  }
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data_.append(buf, n);
  }
  std::fclose(f);
  return Status::Ok();
}

Result<std::string> WalReader::Next() {
  if (pos_ >= data_.size()) return Status::NotFound("end of log");

  Decoder dec(std::string_view(data_).substr(pos_));
  auto len_result = dec.GetVarint();
  if (!len_result.ok()) {
    // Torn mid-varint: ignore, treat as end of log.
    pos_ = data_.size();
    return Status::NotFound("end of log (torn length)");
  }
  std::uint64_t len = *len_result;
  std::size_t header = dec.position();
  if (pos_ + header + len + 4 > data_.size()) {
    // Torn final frame: ignore, treat as end of log.
    pos_ = data_.size();
    return Status::NotFound("end of log (torn frame)");
  }
  std::string payload = data_.substr(pos_ + header, len);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                  data_[pos_ + header + len + i]))
              << (8 * i);
  }
  if (stored != WalChecksum(payload)) {
    return Status::DataLoss("WAL checksum mismatch");
  }
  pos_ += header + len + 4;
  return payload;
}

}  // namespace pisrep::storage
