#include "storage/database.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "storage/codec.h"
#include "util/logging.h"

namespace pisrep::storage {

namespace {
using util::Result;
using util::Status;
}  // namespace

Database::Database(std::string wal_path) : wal_path_(std::move(wal_path)) {}

Result<std::unique_ptr<Database>> Database::Open(const std::string& wal_path) {
  return Open(wal_path, OpenOptions{});
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& wal_path,
                                                 const OpenOptions& options) {
  // Private constructor: std::make_unique cannot reach it.
  // pisrep-lint: allow(raw-new-delete)
  std::unique_ptr<Database> db(new Database(wal_path));
  db->tier_config_ = options.tier;
  if (!options.tier.path.empty()) {
    if (wal_path.empty()) {
      return Status::InvalidArgument(
          "tiered storage requires a WAL path (schemas and untiered tables "
          "still journal there)");
    }
    ColdStoreOptions cold_options = options.tier.cold;
    cold_options.salvage_corruption = options.salvage_corruption;
    PISREP_ASSIGN_OR_RETURN(db->cold_,
                            ColdStore::Open(options.tier.path, cold_options));
    if (db->cold_->recovered_with_loss()) db->recovered_with_loss_ = true;
  }
  if (!wal_path.empty()) {
    PISREP_RETURN_IF_ERROR(db->Replay(options));
    PISREP_RETURN_IF_ERROR(db->wal_.Open(wal_path));
    if (db->replayed_tiered_rows_) {
      // A pre-tiering WAL was just migrated into the cold store; compact
      // right away so rows are journaled in exactly one place again.
      PISREP_RETURN_IF_ERROR(db->Compact());
    }
  }
  return db;
}

Status Database::Replay(const OpenOptions& options) {
  WalReader reader;
  PISREP_RETURN_IF_ERROR(reader.Open(wal_path_));
  for (;;) {
    std::size_t frame_start = reader.offset();
    auto frame = reader.Next();
    if (!frame.ok()) {
      if (frame.status().code() == util::StatusCode::kNotFound) {
        if (frame_start < reader.offset()) {
          // Torn final frame (crash mid-append). The partial bytes were
          // never committed — chop them off so subsequent appends extend
          // intact data instead of burying garbage mid-log.
          std::error_code ec;
          std::filesystem::resize_file(wal_path_, frame_start, ec);
          if (ec) {
            return Status::DataLoss("cannot trim torn WAL tail of " +
                                    wal_path_ + ": " + ec.message());
          }
        }
        break;
      }
      if (!options.salvage_corruption) return frame.status();
      return SalvageTail(frame_start, frame.status());
    }
    bool tiered_row = false;
    Status applied = ApplyFrame(*frame, /*replay_relaxed=*/true, &tiered_row);
    if (tiered_row) replayed_tiered_rows_ = true;
    if (!applied.ok()) {
      if (!options.salvage_corruption) return applied;
      return SalvageTail(frame_start, applied);
    }
  }
  return Status::Ok();
}

Status Database::ApplyFrame(const std::string& frame, bool replay_relaxed,
                            bool* tiered_row) {
  *tiered_row = false;
  Decoder dec(frame);
  PISREP_ASSIGN_OR_RETURN(std::uint8_t op_byte, dec.GetByte());
  WalOp op = static_cast<WalOp>(op_byte);
  switch (op) {
    case WalOp::kCreateTable: {
      PISREP_ASSIGN_OR_RETURN(TableSchema schema, DecodeSchema(dec));
      std::string name = schema.table_name();
      if (tables_.contains(name)) {
        return Status::DataLoss("duplicate create-table in WAL: " + name);
      }
      PISREP_RETURN_IF_ERROR(
          InstallTable(std::make_unique<Table>(std::move(schema))));
      break;
    }
    case WalOp::kInsert:
    case WalOp::kUpsert: {
      PISREP_ASSIGN_OR_RETURN(std::string name, dec.GetLengthPrefixed());
      auto it = facades_.find(name);
      if (it == facades_.end()) {
        return Status::DataLoss("WAL references unknown table: " + name);
      }
      TieredTable* facade = it->second.get();
      std::size_t row_start = dec.position();
      PISREP_ASSIGN_OR_RETURN(Row row, DecodeRow(facade->schema(), dec));
      *tiered_row = facade->tiered();
      std::string_view row_bytes =
          std::string_view(frame).substr(row_start,
                                         dec.position() - row_start);
      // Inserts stay strict (duplicate = corruption) except when replaying
      // a tiered table: a pre-tiering WAL being migrated may briefly
      // journal rows in both logs, so replay must be idempotent there.
      bool strict = op == WalOp::kInsert &&
                    (!replay_relaxed || !facade->tiered());
      PISREP_RETURN_IF_ERROR(facade->ApplyColdPut(row, row_bytes, strict));
      break;
    }
    case WalOp::kDelete: {
      PISREP_ASSIGN_OR_RETURN(std::string name, dec.GetLengthPrefixed());
      auto it = facades_.find(name);
      if (it == facades_.end()) {
        return Status::DataLoss("WAL references unknown table: " + name);
      }
      TieredTable* facade = it->second.get();
      const TableSchema& schema = facade->schema();
      ColumnType key_type =
          schema.columns()[schema.primary_key_index()].type;
      PISREP_ASSIGN_OR_RETURN(Value key, DecodeValue(key_type, dec));
      *tiered_row = facade->tiered();
      PISREP_RETURN_IF_ERROR(facade->ApplyColdDelete(key));
      break;
    }
    default:
      return Status::DataLoss("unknown WAL op");
  }
  return Status::Ok();
}

Status Database::SalvageTail(std::size_t prefix_len,
                             const util::Status& cause) {
  recovered_with_loss_ = true;
  std::error_code ec;
  std::filesystem::resize_file(wal_path_, prefix_len, ec);
  if (ec) {
    return Status::DataLoss("cannot truncate corrupted WAL " + wal_path_ +
                            ": " + ec.message());
  }
  PISREP_LOG(kWarning) << "WAL " << wal_path_
                       << " corrupted: " << cause.ToString() << "; salvaged "
                       << prefix_len << "-byte prefix";
  return Status::Ok();
}

Status Database::InstallTable(std::unique_ptr<Table> table) {
  std::string name = table->schema().table_name();
  ColdStore* cold = nullptr;
  TierPolicy policy;
  auto policy_it = tier_config_.tables.find(name);
  if (cold_ != nullptr && policy_it != tier_config_.tables.end()) {
    cold = cold_.get();
    policy = policy_it->second;
  }
  auto facade = std::make_unique<TieredTable>(table.get(), cold, policy);
  if (facade->tiered()) {
    // Pick up any rows already in the cold store (recovery, migration).
    PISREP_RETURN_IF_ERROR(facade->RebuildFromCold());
  }
  bool tiered = facade->tiered();
  table->SetMutationListener(
      [this, name, tiered](MutationOp op, const Row& row, const Value& key) {
        LogMutation(name, tiered, op, row, key);
      });
  tables_.emplace(name, std::move(table));
  facades_.emplace(name, std::move(facade));
  return Status::Ok();
}

Status Database::CreateTable(const TableSchema& schema) {
  const std::string& name = schema.table_name();
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  PISREP_RETURN_IF_ERROR(LogCreateTable(schema));
  return InstallTable(std::make_unique<Table>(schema));
}

bool Database::HasTable(std::string_view name) const {
  return tables_.contains(std::string(name));
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return it->second.get();
}

Result<TieredTable*> Database::GetTiered(std::string_view name) {
  auto it = facades_.find(std::string(name));
  if (it == facades_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status Database::ForEachRow(std::string_view name,
                            const std::function<void(const Row&)>& visit) {
  PISREP_ASSIGN_OR_RETURN(TieredTable * facade, GetTiered(name));
  facade->ForEach(visit);
  return Status::Ok();
}

void Database::SetAutoCompact(double factor, std::size_t min_frames) {
  auto_compact_factor_ = factor;
  auto_compact_min_frames_ = min_frames;
}

void Database::MaybeAutoCompact() {
  if (auto_compact_factor_ <= 0.0 || compacting_) return;
  if (frames_since_compact_ < auto_compact_min_frames_) return;
  if (static_cast<double>(frames_since_compact_) <
      auto_compact_factor_ * static_cast<double>(WalRows() + 1)) {
    return;
  }
  Status status = Compact();
  PISREP_CHECK(status.ok()) << "auto-compaction failed: "
                            << status.ToString();
}

Status Database::Compact() {
  if (wal_path_.empty()) return Status::Ok();
  // Write a fresh log containing schema + current rows, then reopen it for
  // appending. Recovery stays uniform: a snapshot is just a shorter log.
  // Tiered tables emit their schema only — their rows live in the cold
  // store, in the very same frame payload format.
  compacting_ = true;
  frames_since_compact_ = 0;
  ++compactions_;
  PISREP_RETURN_IF_ERROR(wal_.OpenTruncated(wal_path_));
  for (const std::string& name : TableNames()) {
    Table* table = tables_.at(name).get();
    std::string frame;
    frame.push_back(static_cast<char>(WalOp::kCreateTable));
    EncodeSchema(table->schema(), &frame);
    PISREP_RETURN_IF_ERROR(wal_.Append(frame));
    if (facades_.at(name)->tiered()) continue;
    Status row_status = Status::Ok();
    table->ForEach([&](const Row& row) {
      if (!row_status.ok()) return;
      std::string row_frame;
      row_frame.push_back(static_cast<char>(WalOp::kInsert));
      PutLengthPrefixed(name, &row_frame);
      EncodeRow(table->schema(), row, &row_frame);
      row_status = wal_.Append(row_frame);
    });
    if (!row_status.ok()) {
      compacting_ = false;
      return row_status;
    }
  }
  compacting_ = false;
  return Status::Ok();
}

std::size_t Database::TotalRows() const {
  std::size_t total = 0;
  for (const auto& [name, facade] : facades_) total += facade->size();
  return total;
}

std::size_t Database::WalRows() const {
  std::size_t total = 0;
  for (const auto& [name, facade] : facades_) {
    if (!facade->tiered()) total += facade->size();
  }
  return total;
}

Status Database::TierTick(util::TimePoint now) {
  if (cold_ == nullptr) return Status::Ok();
  for (auto& [name, facade] : facades_) {
    facade->Tick(now);
  }
  PISREP_ASSIGN_OR_RETURN(bool gc_ran, cold_->MaybeGc());
  if (gc_ran) {
    // Every frame moved: cached offsets and index maps are stale.
    for (auto& [name, facade] : facades_) {
      if (!facade->tiered()) continue;
      PISREP_RETURN_IF_ERROR(facade->RebuildFromCold());
    }
  }
  return Status::Ok();
}

DatabaseTierStats Database::TierStats() const {
  DatabaseTierStats stats;
  for (const auto& [name, facade] : facades_) {
    if (!facade->tiered()) continue;
    TieredTableStats table_stats = facade->stats();
    stats.hot_rows += table_stats.hot_rows;
    stats.cold_rows += table_stats.cold_rows;
    stats.pinned_rows += table_stats.pinned_rows;
    stats.hits += table_stats.hits;
    stats.faults += table_stats.faults;
    stats.promotions += table_stats.promotions;
    stats.demotions += table_stats.demotions;
    stats.resident_bytes += table_stats.approx_resident_bytes;
  }
  if (cold_ != nullptr) {
    ColdStoreStats cold_stats = cold_->stats();
    stats.cold_file_bytes = cold_stats.file_bytes;
    stats.cold_dead_bytes = cold_stats.dead_bytes;
    stats.cold_reads = cold_stats.reads;
    stats.cold_appends = cold_stats.appends;
    stats.gc_runs = cold_stats.gc_runs;
    stats.gc_reclaimed_bytes = cold_stats.gc_reclaimed_bytes;
  }
  return stats;
}

Status Database::LogCreateTable(const TableSchema& schema) {
  if (!wal_.is_open()) return Status::Ok();
  std::string frame;
  frame.push_back(static_cast<char>(WalOp::kCreateTable));
  EncodeSchema(schema, &frame);
  PISREP_RETURN_IF_ERROR(wal_.Append(frame));
  ++frames_since_compact_;
  return Status::Ok();
}

void Database::SetFrameListener(FrameListener listener) {
  frame_listener_ = std::move(listener);
}

Status Database::ApplyReplicatedFrame(const std::string& frame) {
  bool tiered_row = false;
  PISREP_RETURN_IF_ERROR(
      ApplyFrame(frame, /*replay_relaxed=*/false, &tiered_row));
  // Journal the imported frame for this database's own durability; apply
  // above went through the *Unlogged paths, so this is the only append.
  // Tiered rows already landed durably in the cold store — journaling
  // them again would re-create the dual-history the tier split removed.
  if (wal_.is_open() && !tiered_row) {
    PISREP_RETURN_IF_ERROR(wal_.Append(frame));
    ++frames_since_compact_;
    MaybeAutoCompact();
  }
  return Status::Ok();
}

Status Database::ExportSnapshotFrames(
    const std::function<util::Status(const std::string&)>& emit) {
  for (const std::string& name : TableNames()) {
    Table* table = tables_.at(name).get();
    std::string frame;
    frame.push_back(static_cast<char>(WalOp::kCreateTable));
    EncodeSchema(table->schema(), &frame);
    PISREP_RETURN_IF_ERROR(emit(frame));
  }
  for (const std::string& name : TableNames()) {
    TieredTable* facade = facades_.at(name).get();
    if (facade->tiered()) {
      // Stream cold blocks: the stored row payload is already the frame's
      // row encoding, so a resync never materializes the rows in memory.
      PISREP_RETURN_IF_ERROR(cold_->ForEachLive(
          name, [&](std::uint64_t, std::string_view,
                    std::string_view row_bytes) -> Status {
            std::string row_frame;
            row_frame.push_back(static_cast<char>(WalOp::kInsert));
            PutLengthPrefixed(name, &row_frame);
            row_frame.append(row_bytes);
            return emit(row_frame);
          }));
      continue;
    }
    Table* table = tables_.at(name).get();
    Status row_status = Status::Ok();
    table->ForEach([&](const Row& row) {
      if (!row_status.ok()) return;
      std::string row_frame;
      row_frame.push_back(static_cast<char>(WalOp::kInsert));
      PutLengthPrefixed(name, &row_frame);
      EncodeRow(table->schema(), row, &row_frame);
      row_status = emit(row_frame);
    });
    PISREP_RETURN_IF_ERROR(row_status);
  }
  return Status::Ok();
}

void Database::LogMutation(const std::string& table_name, bool tiered,
                           MutationOp op, const Row& row, const Value& key) {
  bool journal = wal_.is_open() && !tiered;
  if (!journal && !frame_listener_) return;
  std::string frame;
  Table* table = tables_.at(table_name).get();
  switch (op) {
    case MutationOp::kInsert:
      frame.push_back(static_cast<char>(WalOp::kInsert));
      PutLengthPrefixed(table_name, &frame);
      EncodeRow(table->schema(), row, &frame);
      break;
    case MutationOp::kUpsert:
      frame.push_back(static_cast<char>(WalOp::kUpsert));
      PutLengthPrefixed(table_name, &frame);
      EncodeRow(table->schema(), row, &frame);
      break;
    case MutationOp::kDelete:
      frame.push_back(static_cast<char>(WalOp::kDelete));
      PutLengthPrefixed(table_name, &frame);
      EncodeValue(key, &frame);
      break;
  }
  if (journal) {
    Status status = wal_.Append(frame);
    PISREP_CHECK(status.ok()) << "WAL append failed: " << status.ToString();
    ++frames_since_compact_;
  }
  if (frame_listener_) frame_listener_(frame);
  if (journal) MaybeAutoCompact();
}

}  // namespace pisrep::storage
