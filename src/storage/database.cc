#include "storage/database.h"

#include <algorithm>
#include <filesystem>

#include "storage/codec.h"
#include "util/logging.h"

namespace pisrep::storage {

namespace {
using util::Result;
using util::Status;
}  // namespace

Database::Database(std::string wal_path) : wal_path_(std::move(wal_path)) {}

Result<std::unique_ptr<Database>> Database::Open(const std::string& wal_path) {
  return Open(wal_path, OpenOptions{});
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& wal_path,
                                                 const OpenOptions& options) {
  // Private constructor: std::make_unique cannot reach it.
  // pisrep-lint: allow(raw-new-delete)
  std::unique_ptr<Database> db(new Database(wal_path));
  if (!wal_path.empty()) {
    PISREP_RETURN_IF_ERROR(db->Replay(options));
    PISREP_RETURN_IF_ERROR(db->wal_.Open(wal_path));
  }
  return db;
}

Status Database::Replay(const OpenOptions& options) {
  WalReader reader;
  PISREP_RETURN_IF_ERROR(reader.Open(wal_path_));
  for (;;) {
    std::size_t frame_start = reader.offset();
    auto frame = reader.Next();
    if (!frame.ok()) {
      if (frame.status().code() == util::StatusCode::kNotFound) {
        if (frame_start < reader.offset()) {
          // Torn final frame (crash mid-append). The partial bytes were
          // never committed — chop them off so subsequent appends extend
          // intact data instead of burying garbage mid-log.
          std::error_code ec;
          std::filesystem::resize_file(wal_path_, frame_start, ec);
          if (ec) {
            return Status::DataLoss("cannot trim torn WAL tail of " +
                                    wal_path_ + ": " + ec.message());
          }
        }
        break;
      }
      if (!options.salvage_corruption) return frame.status();
      return SalvageTail(frame_start, frame.status());
    }
    Status applied = ApplyFrame(*frame);
    if (!applied.ok()) {
      if (!options.salvage_corruption) return applied;
      return SalvageTail(frame_start, applied);
    }
  }
  return Status::Ok();
}

Status Database::ApplyFrame(const std::string& frame) {
  Decoder dec(frame);
  PISREP_ASSIGN_OR_RETURN(std::uint8_t op_byte, dec.GetByte());
  WalOp op = static_cast<WalOp>(op_byte);
  switch (op) {
    case WalOp::kCreateTable: {
      PISREP_ASSIGN_OR_RETURN(TableSchema schema, DecodeSchema(dec));
      std::string name = schema.table_name();
      if (tables_.contains(name)) {
        return Status::DataLoss("duplicate create-table in WAL: " + name);
      }
      auto table = std::make_unique<Table>(std::move(schema));
      AttachListener(name, table.get());
      tables_.emplace(name, std::move(table));
      break;
    }
    case WalOp::kInsert:
    case WalOp::kUpsert: {
      PISREP_ASSIGN_OR_RETURN(std::string name, dec.GetLengthPrefixed());
      auto it = tables_.find(name);
      if (it == tables_.end()) {
        return Status::DataLoss("WAL references unknown table: " + name);
      }
      PISREP_ASSIGN_OR_RETURN(Row row, DecodeRow(it->second->schema(), dec));
      if (op == WalOp::kInsert) {
        PISREP_RETURN_IF_ERROR(it->second->InsertUnlogged(std::move(row)));
      } else {
        PISREP_RETURN_IF_ERROR(it->second->UpsertUnlogged(std::move(row)));
      }
      break;
    }
    case WalOp::kDelete: {
      PISREP_ASSIGN_OR_RETURN(std::string name, dec.GetLengthPrefixed());
      auto it = tables_.find(name);
      if (it == tables_.end()) {
        return Status::DataLoss("WAL references unknown table: " + name);
      }
      const TableSchema& schema = it->second->schema();
      ColumnType key_type =
          schema.columns()[schema.primary_key_index()].type;
      PISREP_ASSIGN_OR_RETURN(Value key, DecodeValue(key_type, dec));
      PISREP_RETURN_IF_ERROR(it->second->DeleteUnlogged(key));
      break;
    }
    default:
      return Status::DataLoss("unknown WAL op");
  }
  return Status::Ok();
}

Status Database::SalvageTail(std::size_t prefix_len,
                             const util::Status& cause) {
  recovered_with_loss_ = true;
  std::error_code ec;
  std::filesystem::resize_file(wal_path_, prefix_len, ec);
  if (ec) {
    return Status::DataLoss("cannot truncate corrupted WAL " + wal_path_ +
                            ": " + ec.message());
  }
  PISREP_LOG(kWarning) << "WAL " << wal_path_
                       << " corrupted: " << cause.ToString() << "; salvaged "
                       << prefix_len << "-byte prefix";
  return Status::Ok();
}

Status Database::CreateTable(const TableSchema& schema) {
  const std::string& name = schema.table_name();
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  PISREP_RETURN_IF_ERROR(LogCreateTable(schema));
  auto table = std::make_unique<Table>(schema);
  AttachListener(name, table.get());
  tables_.emplace(name, std::move(table));
  return Status::Ok();
}

bool Database::HasTable(std::string_view name) const {
  return tables_.contains(std::string(name));
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Database::SetAutoCompact(double factor, std::size_t min_frames) {
  auto_compact_factor_ = factor;
  auto_compact_min_frames_ = min_frames;
}

void Database::MaybeAutoCompact() {
  if (auto_compact_factor_ <= 0.0 || compacting_) return;
  if (frames_since_compact_ < auto_compact_min_frames_) return;
  if (static_cast<double>(frames_since_compact_) <
      auto_compact_factor_ * static_cast<double>(TotalRows() + 1)) {
    return;
  }
  Status status = Compact();
  PISREP_CHECK(status.ok()) << "auto-compaction failed: "
                            << status.ToString();
}

Status Database::Compact() {
  if (wal_path_.empty()) return Status::Ok();
  // Write a fresh log containing schema + current rows, then reopen it for
  // appending. Recovery stays uniform: a snapshot is just a shorter log.
  compacting_ = true;
  frames_since_compact_ = 0;
  ++compactions_;
  PISREP_RETURN_IF_ERROR(wal_.OpenTruncated(wal_path_));
  for (const std::string& name : TableNames()) {
    Table* table = tables_.at(name).get();
    std::string frame;
    frame.push_back(static_cast<char>(WalOp::kCreateTable));
    EncodeSchema(table->schema(), &frame);
    PISREP_RETURN_IF_ERROR(wal_.Append(frame));
    Status row_status = Status::Ok();
    table->ForEach([&](const Row& row) {
      if (!row_status.ok()) return;
      std::string row_frame;
      row_frame.push_back(static_cast<char>(WalOp::kInsert));
      PutLengthPrefixed(name, &row_frame);
      EncodeRow(table->schema(), row, &row_frame);
      row_status = wal_.Append(row_frame);
    });
    if (!row_status.ok()) {
      compacting_ = false;
      return row_status;
    }
  }
  compacting_ = false;
  return Status::Ok();
}

std::size_t Database::TotalRows() const {
  std::size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->size();
  return total;
}

Status Database::LogCreateTable(const TableSchema& schema) {
  if (!wal_.is_open()) return Status::Ok();
  std::string frame;
  frame.push_back(static_cast<char>(WalOp::kCreateTable));
  EncodeSchema(schema, &frame);
  PISREP_RETURN_IF_ERROR(wal_.Append(frame));
  ++frames_since_compact_;
  return Status::Ok();
}

void Database::SetFrameListener(FrameListener listener) {
  frame_listener_ = std::move(listener);
}

Status Database::ApplyReplicatedFrame(const std::string& frame) {
  PISREP_RETURN_IF_ERROR(ApplyFrame(frame));
  // Journal the imported frame for this database's own durability; apply
  // above went through the *Unlogged paths, so this is the only append.
  if (wal_.is_open()) {
    PISREP_RETURN_IF_ERROR(wal_.Append(frame));
    ++frames_since_compact_;
    MaybeAutoCompact();
  }
  return Status::Ok();
}

Status Database::ExportSnapshotFrames(
    const std::function<util::Status(const std::string&)>& emit) {
  for (const std::string& name : TableNames()) {
    Table* table = tables_.at(name).get();
    std::string frame;
    frame.push_back(static_cast<char>(WalOp::kCreateTable));
    EncodeSchema(table->schema(), &frame);
    PISREP_RETURN_IF_ERROR(emit(frame));
  }
  for (const std::string& name : TableNames()) {
    Table* table = tables_.at(name).get();
    Status row_status = Status::Ok();
    table->ForEach([&](const Row& row) {
      if (!row_status.ok()) return;
      std::string row_frame;
      row_frame.push_back(static_cast<char>(WalOp::kInsert));
      PutLengthPrefixed(name, &row_frame);
      EncodeRow(table->schema(), row, &row_frame);
      row_status = emit(row_frame);
    });
    PISREP_RETURN_IF_ERROR(row_status);
  }
  return Status::Ok();
}

void Database::LogMutation(const std::string& table_name, MutationOp op,
                           const Row& row, const Value& key) {
  if (!wal_.is_open() && !frame_listener_) return;
  std::string frame;
  Table* table = tables_.at(table_name).get();
  switch (op) {
    case MutationOp::kInsert:
      frame.push_back(static_cast<char>(WalOp::kInsert));
      PutLengthPrefixed(table_name, &frame);
      EncodeRow(table->schema(), row, &frame);
      break;
    case MutationOp::kUpsert:
      frame.push_back(static_cast<char>(WalOp::kUpsert));
      PutLengthPrefixed(table_name, &frame);
      EncodeRow(table->schema(), row, &frame);
      break;
    case MutationOp::kDelete:
      frame.push_back(static_cast<char>(WalOp::kDelete));
      PutLengthPrefixed(table_name, &frame);
      EncodeValue(key, &frame);
      break;
  }
  if (wal_.is_open()) {
    Status status = wal_.Append(frame);
    PISREP_CHECK(status.ok()) << "WAL append failed: " << status.ToString();
    ++frames_since_compact_;
  }
  if (frame_listener_) frame_listener_(frame);
  if (wal_.is_open()) MaybeAutoCompact();
}

void Database::AttachListener(const std::string& name, Table* table) {
  table->SetMutationListener(
      [this, name](MutationOp op, const Row& row, const Value& key) {
        LogMutation(name, op, row, key);
      });
}

}  // namespace pisrep::storage
