#ifndef PISREP_STORAGE_VALUE_H_
#define PISREP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace pisrep::storage {

/// Column types supported by the storage engine.
enum class ColumnType : std::uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

const char* ColumnTypeName(ColumnType type);

/// A typed cell value. Values are immutable once constructed; rows are
/// replaced wholesale on update, which keeps index maintenance simple.
class Value {
 public:
  /// Default-constructs an int64 zero (useful for resizing row vectors).
  Value() : data_(std::int64_t{0}) {}

  static Value Int(std::int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Boolean(bool v) { return Value(v); }

  ColumnType type() const;

  /// Typed accessors; calling the wrong one is a programming error and
  /// aborts (storage schemas are checked on write, so reads are trusted).
  std::int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsStr() const;
  bool AsBool() const;

  /// Human-readable rendering for debugging and reports.
  std::string ToString() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}

  std::variant<std::int64_t, double, std::string, bool> data_;
};

/// Hash functor so values can key unordered index maps.
struct ValueHash {
  std::size_t operator()(const Value& v) const;
};

/// Strict weak ordering for ordered indexes: values order by type tag
/// first, then by value within a type (numeric, lexicographic, false<true).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

/// A row is a vector of values, one per schema column.
using Row = std::vector<Value>;

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_VALUE_H_
