#include "storage/value.h"

#include <functional>

#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::storage {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kBool:
      return "bool";
  }
  return "?";
}

ColumnType Value::type() const {
  return static_cast<ColumnType>(data_.index());
}

std::int64_t Value::AsInt() const {
  PISREP_CHECK(type() == ColumnType::kInt64) << "value is " << ToString();
  return std::get<std::int64_t>(data_);
}

double Value::AsReal() const {
  PISREP_CHECK(type() == ColumnType::kDouble) << "value is " << ToString();
  return std::get<double>(data_);
}

const std::string& Value::AsStr() const {
  PISREP_CHECK(type() == ColumnType::kString) << "value is " << ToString();
  return std::get<std::string>(data_);
}

bool Value::AsBool() const {
  PISREP_CHECK(type() == ColumnType::kBool) << "value is " << ToString();
  return std::get<bool>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ColumnType::kInt64:
      return std::to_string(std::get<std::int64_t>(data_));
    case ColumnType::kDouble:
      return util::StrFormat("%.10g", std::get<double>(data_));
    case ColumnType::kString:
      return "\"" + std::get<std::string>(data_) + "\"";
    case ColumnType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
  }
  return "?";
}

bool ValueLess::operator()(const Value& a, const Value& b) const {
  if (a.type() != b.type()) return a.type() < b.type();
  switch (a.type()) {
    case ColumnType::kInt64:
      return a.AsInt() < b.AsInt();
    case ColumnType::kDouble:
      return a.AsReal() < b.AsReal();
    case ColumnType::kString:
      return a.AsStr() < b.AsStr();
    case ColumnType::kBool:
      return a.AsBool() < b.AsBool();
  }
  return false;
}

std::size_t ValueHash::operator()(const Value& v) const {
  std::size_t seed = static_cast<std::size_t>(v.type()) * 0x9E3779B9u;
  switch (v.type()) {
    case ColumnType::kInt64:
      return seed ^ std::hash<std::int64_t>{}(v.AsInt());
    case ColumnType::kDouble:
      return seed ^ std::hash<double>{}(v.AsReal());
    case ColumnType::kString:
      return seed ^ std::hash<std::string>{}(v.AsStr());
    case ColumnType::kBool:
      return seed ^ std::hash<bool>{}(v.AsBool());
  }
  return seed;
}

}  // namespace pisrep::storage
