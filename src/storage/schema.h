#ifndef PISREP_STORAGE_SCHEMA_H_
#define PISREP_STORAGE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace pisrep::storage {

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;

  friend bool operator==(const Column&, const Column&) = default;
};

/// Description of a table: name, columns, the primary-key column, and any
/// secondary (non-unique, hash) indexes.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<Column> columns,
              std::string primary_key);

  const std::string& table_name() const { return table_name_; }
  const std::vector<Column>& columns() const { return columns_; }
  std::size_t primary_key_index() const { return primary_key_index_; }
  const std::vector<std::size_t>& secondary_indexes() const {
    return secondary_indexes_;
  }
  const std::vector<std::size_t>& ordered_indexes() const {
    return ordered_indexes_;
  }

  /// Declares a secondary hash index over the named column. Returns *this
  /// for chaining during schema construction.
  TableSchema& AddIndex(std::string_view column_name);

  /// Declares an ordered (tree) index over the named column, enabling
  /// range scans and top-N traversals.
  TableSchema& AddOrderedIndex(std::string_view column_name);

  /// Index of the named column; fails when absent.
  util::Result<std::size_t> ColumnIndex(std::string_view name) const;

  /// Validates that `row` has one value per column with matching types.
  util::Status CheckRow(const Row& row) const;

  std::size_t num_columns() const { return columns_.size(); }

  friend bool operator==(const TableSchema&, const TableSchema&) = default;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  std::size_t primary_key_index_ = 0;
  std::vector<std::size_t> secondary_indexes_;
  std::vector<std::size_t> ordered_indexes_;
};

/// Fluent helper for building schemas:
///   TableSchema s = SchemaBuilder("users")
///       .Int("id").Str("name").PrimaryKey("id").Index("name").Build();
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string table_name)
      : table_name_(std::move(table_name)) {}

  SchemaBuilder& Int(std::string name);
  SchemaBuilder& Real(std::string name);
  SchemaBuilder& Str(std::string name);
  SchemaBuilder& Boolean(std::string name);
  SchemaBuilder& PrimaryKey(std::string column_name);
  SchemaBuilder& Index(std::string column_name);
  SchemaBuilder& OrderedIndex(std::string column_name);

  /// Builds the schema. Aborts when the primary key names a missing column
  /// (a programming error in schema definitions, not runtime input).
  TableSchema Build() const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  std::string primary_key_;
  std::vector<std::string> indexes_;
  std::vector<std::string> ordered_indexes_;
};

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_SCHEMA_H_
