#include "storage/hot_tier.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace pisrep::storage {

const HotTier::Meta* HotTier::Find(const std::string& key_bytes) const {
  auto it = metas_.find(key_bytes);
  return it == metas_.end() ? nullptr : &it->second;
}

void HotTier::Touch(const Meta* meta) const {
  meta->stamp.store(lru_tick_.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
}

void HotTier::Add(const std::string& key_bytes, std::uint64_t offset,
                  util::TimePoint age) {
  auto [it, inserted] = metas_.try_emplace(key_bytes);
  if (!inserted) {
    by_offset_.erase(it->second.offset);
  }
  it->second.offset = offset;
  it->second.age = age;
  it->second.stamp.store(lru_tick_.fetch_add(1, std::memory_order_relaxed),
                         std::memory_order_relaxed);
  by_offset_[offset] = &it->first;
}

void HotTier::Remove(const std::string& key_bytes) {
  auto it = metas_.find(key_bytes);
  if (it == metas_.end()) return;
  pinned_rows_ -= it->second.pins > 0 ? 1 : 0;
  by_offset_.erase(it->second.offset);
  metas_.erase(it);
}

void HotTier::SetOffset(const std::string& key_bytes, std::uint64_t offset) {
  auto it = metas_.find(key_bytes);
  if (it == metas_.end()) return;
  by_offset_.erase(it->second.offset);
  it->second.offset = offset;
  by_offset_[offset] = &it->first;
}

std::vector<std::string> HotTier::ResidentKeys() const {
  std::vector<std::string> keys;
  keys.reserve(metas_.size());
  for (const auto& [key, meta] : metas_) keys.push_back(key);
  return keys;
}

std::vector<std::string> HotTier::UnpinnedKeys() const {
  std::vector<std::string> keys;
  keys.reserve(metas_.size());
  for (const auto& [key, meta] : metas_) {
    if (meta.pins == 0) keys.push_back(key);
  }
  return keys;
}

const std::string* HotTier::KeyForOffset(std::uint64_t offset) const {
  auto it = by_offset_.find(offset);
  return it == by_offset_.end() ? nullptr : it->second;
}

bool HotTier::Pin(const std::string& key_bytes) {
  auto it = metas_.find(key_bytes);
  if (it == metas_.end()) return false;
  if (it->second.pins == 0) ++pinned_rows_;
  ++it->second.pins;
  return true;
}

bool HotTier::Unpin(const std::string& key_bytes) {
  auto it = metas_.find(key_bytes);
  if (it == metas_.end() || it->second.pins == 0) return false;
  --it->second.pins;
  if (it->second.pins == 0) --pinned_rows_;
  return true;
}

void HotTier::EnqueueFault(const std::string& key_bytes) const {
  util::MutexLock lock(&fault_mu_);
  if (fault_queue_.size() >= kMaxQueuedFaults) return;
  fault_queue_.push_back(key_bytes);
}

std::vector<std::string> HotTier::DrainFaults() {
  util::MutexLock lock(&fault_mu_);
  return std::exchange(fault_queue_, {});
}

std::vector<std::string> HotTier::PlanDemotions(std::size_t capacity,
                                                util::TimePoint now,
                                                util::Duration demote_age,
                                                bool age_enabled) const {
  std::vector<std::string> out;
  // (stamp, key) of unpinned, not-aged-out residents — LRU candidates.
  std::vector<std::pair<std::uint64_t, const std::string*>> candidates;
  for (const auto& [key, meta] : metas_) {
    if (meta.pins > 0) continue;
    if (age_enabled && meta.age + demote_age <= now) {
      out.push_back(key);
      continue;
    }
    candidates.emplace_back(meta.stamp.load(std::memory_order_relaxed),
                            &key);
  }
  std::size_t remaining = metas_.size() - out.size();
  if (capacity > 0 && remaining > capacity) {
    std::size_t excess = remaining - capacity;
    excess = std::min(excess, candidates.size());
    // Coldest stamps first; ties broken by key for determinism.
    std::partial_sort(candidates.begin(), candidates.begin() + excess,
                      candidates.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first < b.first;
                        return *a.second < *b.second;
                      });
    for (std::size_t i = 0; i < excess; ++i) {
      out.push_back(*candidates[i].second);
    }
  }
  return out;
}

}  // namespace pisrep::storage
