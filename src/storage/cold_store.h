#ifndef PISREP_STORAGE_COLD_STORE_H_
#define PISREP_STORAGE_COLD_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pisrep::storage {

/// Tuning knobs for the cold block file (DESIGN.md §15).
struct ColdStoreOptions {
  /// Garbage-collect when dead bytes exceed this fraction of the file.
  double gc_dead_ratio = 0.35;
  /// ... but never bother below this file size: small files rewrite so
  /// cheaply on the next threshold crossing that eager GC only adds churn.
  std::uint64_t gc_min_file_bytes = 1 << 20;
  /// Mirrors Database::OpenOptions::salvage_corruption for the block file:
  /// truncate to the intact prefix instead of failing Open.
  bool salvage_corruption = false;
};

/// Counters and sizes exposed as pisrep_storage_* metrics by the server.
struct ColdStoreStats {
  std::uint64_t file_bytes = 0;
  std::uint64_t dead_bytes = 0;
  std::uint64_t live_rows = 0;
  std::uint64_t appends = 0;
  std::uint64_t reads = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_reclaimed_bytes = 0;
};

/// The durable half of the tiered storage engine: an append-only block file
/// holding every row of every tiered table, indexed by a sparse in-memory
/// map from key digest to file offset.
///
/// Block framing matches the WAL discipline (varint payload length, payload,
/// 4-byte little-endian checksum — CRC-32 here) so a torn tail truncates
/// cleanly on open. The payload is self-describing:
///
///   op byte (0 put, 1 tombstone) | varint table-name len | table name |
///   varint key len | encoded primary key | encoded row (puts only)
///
/// The embedded key lets recovery rebuild the primary index in one
/// sequential scan with no schema in hand; row bytes are exactly the WAL's
/// EncodeRow output, which is what lets Compact, block flush and the
/// cluster snapshot-resync path share one frame format.
///
/// Overwrites and tombstones strand dead bytes in the file; once they pass
/// gc_dead_ratio, MaybeGc rewrites the live frames (in append order) into a
/// fresh file and swaps it in. All offsets change across a GC — the owner
/// must rebuild anything that cached them (TieredTable::RebuildFromCold).
///
/// Thread compatibility: mutations are single-writer (the server's writer
/// thread); const reads go through pread(2) and touch no mutable state
/// besides relaxed stat counters, so concurrent readers are safe as long as
/// no writer runs — the same contract the rest of the storage layer and the
/// parallel aggregation phase already rely on.
class ColdStore {
 public:
  /// Opens (or creates) the block file at `path`, scanning it to rebuild
  /// the per-table indexes. A torn final frame is trimmed; mid-file
  /// corruption fails the open unless options.salvage_corruption.
  static util::Result<std::unique_ptr<ColdStore>> Open(
      const std::string& path, const ColdStoreOptions& options);

  ~ColdStore();

  ColdStore(const ColdStore&) = delete;
  ColdStore& operator=(const ColdStore&) = delete;

  /// Appends a new live version of `key`; any previous version becomes
  /// dead bytes. Returns the frame's file offset.
  util::Result<std::uint64_t> Put(std::string_view table,
                                  std::string_view key_bytes,
                                  std::string_view row_bytes);

  /// Appends a tombstone; kNotFound when the key has no live version.
  util::Status Erase(std::string_view table, std::string_view key_bytes);

  bool Contains(std::string_view table, std::string_view key_bytes) const;

  /// Live row bytes + the frame offset they were read from.
  struct RowRef {
    std::uint64_t offset = 0;
    std::string row_bytes;
  };
  util::Result<RowRef> Get(std::string_view table,
                           std::string_view key_bytes) const;

  /// The frame at `offset`, plus whether it is still the key's current
  /// version (visits over cached offset lists use this to skip stale
  /// entries without the owner maintaining delete-time index upkeep).
  struct FrameView {
    std::string key_bytes;
    std::string row_bytes;
    bool live = false;
  };
  util::Result<FrameView> ReadAt(std::string_view table,
                                 std::uint64_t offset) const;

  /// Visits every live row of `table` in append order of each key's latest
  /// version — the deterministic iteration order the bit-identical
  /// aggregation twin check depends on. Stops at the first visit error.
  util::Status ForEachLive(
      std::string_view table,
      const std::function<util::Status(std::uint64_t offset,
                                       std::string_view key_bytes,
                                       std::string_view row_bytes)>& visit)
      const;

  std::size_t LiveCount(std::string_view table) const;

  /// In-memory index entry counts for one table — input to the facade's
  /// deterministic resident-bytes accounting.
  struct IndexFootprint {
    std::size_t primary_entries = 0;
    std::size_t overflow_entries = 0;
    std::size_t order_entries = 0;
  };
  IndexFootprint FootprintOf(std::string_view table) const;

  /// True when dead bytes passed the configured threshold.
  bool ShouldGc() const;
  /// Runs a GC pass when the threshold is met; returns whether it ran.
  util::Result<bool> MaybeGc();
  /// Unconditional GC pass (tests and benchmarks).
  util::Status ForceGc();

  bool recovered_with_loss() const { return recovered_with_loss_; }
  ColdStoreStats stats() const;

 private:
  struct Entry {
    std::uint64_t offset = 0;
    std::uint32_t frame_len = 0;  ///< full frame incl. header + checksum
  };
  struct TableState {
    /// key digest → latest live frame. Digest collisions are resolved by
    /// reading the candidate frame and comparing key bytes; a second key
    /// landing on an occupied digest lives in `overflow` instead, so
    /// membership is exact regardless of hash quality.
    std::unordered_map<std::uint64_t, Entry> primary;
    std::unordered_map<std::string, Entry> overflow;
    /// Frame offsets in append order; may contain stale (overwritten or
    /// deleted) entries, which visits skip via the liveness check.
    std::vector<std::uint64_t> order;
  };

  ColdStore(std::string path, ColdStoreOptions options);

  util::Status OpenFile(bool truncate);
  util::Status ScanAndIndex();
  util::Status AppendFrame(std::string_view payload, std::uint64_t* offset,
                           std::uint32_t* frame_len);
  /// Reads + CRC-checks the frame at `offset` into `payload`.
  util::Status ReadFrame(std::uint64_t offset, std::string* payload,
                         std::uint32_t* frame_len) const;
  /// The live entry for a key, or nullptr. May read the file to verify a
  /// digest hit against the actual key bytes.
  const Entry* FindEntry(const TableState& state,
                         std::string_view key_bytes) const;
  static void EncodePayload(bool tombstone, std::string_view table,
                            std::string_view key_bytes,
                            std::string_view row_bytes, std::string* out);
  util::Status RunGc();

  std::string path_;
  ColdStoreOptions options_;
  std::FILE* file_ = nullptr;
  int fd_ = -1;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t dead_bytes_ = 0;
  std::uint64_t live_rows_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t gc_reclaimed_bytes_ = 0;
  bool recovered_with_loss_ = false;
  mutable std::atomic<std::uint64_t> reads_{0};
  std::unordered_map<std::string, TableState> tables_;
};

/// CRC-32 (IEEE 802.3) over `data` — the cold block file's frame checksum.
std::uint32_t ColdBlockCrc(std::string_view data);

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_COLD_STORE_H_
