#include "storage/cold_store.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <optional>
#include <utility>

#include "storage/codec.h"
#include "util/logging.h"

namespace pisrep::storage {

namespace {

using util::Result;
using util::Status;

constexpr std::uint8_t kOpPut = 0;
constexpr std::uint8_t kOpTombstone = 1;

/// FNV-1a 64-bit over the encoded primary key: the sparse index digest.
std::uint64_t KeyDigest(std::string_view key_bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : key_bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// One decoded cold-block payload.
struct ParsedPayload {
  bool tombstone = false;
  std::string table;
  std::string key_bytes;
  std::string row_bytes;
};

Result<ParsedPayload> ParsePayload(const std::string& payload) {
  Decoder dec(payload);
  ParsedPayload parsed;
  PISREP_ASSIGN_OR_RETURN(std::uint8_t op, dec.GetByte());
  if (op != kOpPut && op != kOpTombstone) {
    return Status::DataLoss("unknown cold-block op");
  }
  parsed.tombstone = (op == kOpTombstone);
  PISREP_ASSIGN_OR_RETURN(parsed.table, dec.GetLengthPrefixed());
  PISREP_ASSIGN_OR_RETURN(parsed.key_bytes, dec.GetLengthPrefixed());
  parsed.row_bytes = payload.substr(dec.position());
  return parsed;
}

}  // namespace

std::uint32_t ColdBlockCrc(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

ColdStore::ColdStore(std::string path, ColdStoreOptions options)
    : path_(std::move(path)), options_(options) {}

ColdStore::~ColdStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<ColdStore>> ColdStore::Open(
    const std::string& path, const ColdStoreOptions& options) {
  // Private constructor: std::make_unique cannot reach it.
  // pisrep-lint: allow(raw-new-delete)
  std::unique_ptr<ColdStore> store(new ColdStore(path, options));
  // Create the file if this is a fresh database, then index its contents.
  PISREP_RETURN_IF_ERROR(store->OpenFile(/*truncate=*/false));
  PISREP_RETURN_IF_ERROR(store->ScanAndIndex());
  return store;
}

Status ColdStore::OpenFile(bool truncate) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    fd_ = -1;
  }
  // "+" modes: appends go through the FILE* stream, but faults read back
  // via pread on the raw descriptor — a write-only handle would fail
  // every cold lookup with EBADF.
  file_ = std::fopen(path_.c_str(), truncate ? "w+b" : "a+b");
  if (file_ == nullptr) {
    return Status::Internal("cannot open cold store " + path_);
  }
  fd_ = fileno(file_);
  std::error_code ec;
  std::uintmax_t size = std::filesystem::file_size(path_, ec);
  file_bytes_ = ec ? 0 : static_cast<std::uint64_t>(size);
  return Status::Ok();
}

Status ColdStore::ReadFrame(std::uint64_t offset, std::string* payload,
                            std::uint32_t* frame_len) const {
  reads_.fetch_add(1, std::memory_order_relaxed);
  // Varint length first: at most 10 bytes, clipped to the file end.
  std::array<char, 10> head{};
  std::size_t head_want = static_cast<std::size_t>(
      std::min<std::uint64_t>(head.size(), file_bytes_ - offset));
  if (offset >= file_bytes_ || head_want == 0) {
    return Status::DataLoss("cold-block offset past end of " + path_);
  }
  ssize_t got = ::pread(fd_, head.data(), head_want,
                        static_cast<off_t>(offset));
  if (got <= 0) {
    return Status::Internal("cold-block read failed at offset " +
                            std::to_string(offset));
  }
  std::uint64_t len = 0;
  int shift = 0;
  std::size_t header = 0;
  for (;; ++header) {
    if (header >= static_cast<std::size_t>(got)) {
      return Status::NotFound("torn cold-block header");  // truncated varint
    }
    std::uint8_t byte = static_cast<std::uint8_t>(head[header]);
    len |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    shift += 7;
    if ((byte & 0x80) == 0) {
      ++header;
      break;
    }
  }
  std::uint64_t total = header + len + 4;
  if (offset + total > file_bytes_) {
    return Status::NotFound("torn cold-block frame");  // truncated payload
  }
  std::string body(len + 4, '\0');
  got = ::pread(fd_, body.data(), body.size(),
                static_cast<off_t>(offset + header));
  if (got != static_cast<ssize_t>(body.size())) {
    return Status::Internal("cold-block read failed at offset " +
                            std::to_string(offset));
  }
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(body[len + i]))
              << (8 * i);
  }
  body.resize(len);
  if (ColdBlockCrc(body) != stored) {
    return Status::DataLoss("cold-block checksum mismatch at offset " +
                            std::to_string(offset));
  }
  *payload = std::move(body);
  if (frame_len != nullptr) *frame_len = static_cast<std::uint32_t>(total);
  return Status::Ok();
}

Status ColdStore::AppendFrame(std::string_view payload, std::uint64_t* offset,
                              std::uint32_t* frame_len) {
  std::string frame;
  frame.reserve(payload.size() + 14);
  PutVarint(payload.size(), &frame);
  frame.append(payload);
  std::uint32_t crc = ColdBlockCrc(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("cold-block append failed on " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("cold-block flush failed on " + path_);
  }
  *offset = file_bytes_;
  *frame_len = static_cast<std::uint32_t>(frame.size());
  file_bytes_ += frame.size();
  ++appends_;
  return Status::Ok();
}

Status ColdStore::ScanAndIndex() {
  std::uint64_t pos = 0;
  while (pos < file_bytes_) {
    std::string payload;
    std::uint32_t frame_len = 0;
    Status read = ReadFrame(pos, &payload, &frame_len);
    if (!read.ok()) {
      bool torn = read.code() == util::StatusCode::kNotFound;
      if (!torn && !options_.salvage_corruption) return read;
      // Torn tail (crash mid-append) or salvaged corruption: trim to the
      // intact prefix so later appends extend good data, not garbage.
      if (!torn) {
        recovered_with_loss_ = true;
        PISREP_LOG(kWarning) << "cold store " << path_ << " corrupted: "
                             << read.ToString() << "; salvaged " << pos
                             << "-byte prefix";
      }
      std::error_code ec;
      std::filesystem::resize_file(path_, pos, ec);
      if (ec) {
        return Status::DataLoss("cannot trim cold store " + path_ + ": " +
                                ec.message());
      }
      // Reopen so the append handle sits at the trimmed end.
      PISREP_RETURN_IF_ERROR(OpenFile(/*truncate=*/false));
      return Status::Ok();
    }
    auto parsed = ParsePayload(payload);
    if (!parsed.ok()) {
      if (!options_.salvage_corruption) return parsed.status();
      recovered_with_loss_ = true;
      std::error_code ec;
      std::filesystem::resize_file(path_, pos, ec);
      if (ec) {
        return Status::DataLoss("cannot trim cold store " + path_ + ": " +
                                ec.message());
      }
      PISREP_RETURN_IF_ERROR(OpenFile(/*truncate=*/false));
      return Status::Ok();
    }
    TableState& state = tables_[parsed->table];
    if (parsed->tombstone) {
      std::optional<std::uint32_t> old;
      auto ov = state.overflow.find(parsed->key_bytes);
      if (ov != state.overflow.end()) {
        old = ov->second.frame_len;
        state.overflow.erase(ov);
      } else {
        auto it = state.primary.find(KeyDigest(parsed->key_bytes));
        if (it != state.primary.end()) {
          old = it->second.frame_len;
          state.primary.erase(it);
        }
      }
      if (old.has_value()) {
        dead_bytes_ += *old + frame_len;
        --live_rows_;
      } else {
        dead_bytes_ += frame_len;
      }
    } else {
      Entry entry{pos, frame_len};
      auto ov = state.overflow.find(parsed->key_bytes);
      if (ov != state.overflow.end()) {
        dead_bytes_ += ov->second.frame_len;
        ov->second = entry;
      } else {
        std::uint64_t digest = KeyDigest(parsed->key_bytes);
        auto it = state.primary.find(digest);
        if (it == state.primary.end()) {
          state.primary.emplace(digest, entry);
          ++live_rows_;
        } else {
          // Digest occupied: re-put of the same key, or a collision?
          std::string other_payload;
          PISREP_RETURN_IF_ERROR(
              ReadFrame(it->second.offset, &other_payload, nullptr));
          PISREP_ASSIGN_OR_RETURN(ParsedPayload other,
                                  ParsePayload(other_payload));
          if (other.key_bytes == parsed->key_bytes) {
            dead_bytes_ += it->second.frame_len;
            it->second = entry;
          } else {
            state.overflow.emplace(parsed->key_bytes, entry);
            ++live_rows_;
          }
        }
      }
      state.order.push_back(pos);
    }
    pos += frame_len;
  }
  return Status::Ok();
}

void ColdStore::EncodePayload(bool tombstone, std::string_view table,
                              std::string_view key_bytes,
                              std::string_view row_bytes, std::string* out) {
  out->push_back(static_cast<char>(tombstone ? kOpTombstone : kOpPut));
  PutLengthPrefixed(table, out);
  PutLengthPrefixed(key_bytes, out);
  out->append(row_bytes);
}

const ColdStore::Entry* ColdStore::FindEntry(
    const TableState& state, std::string_view key_bytes) const {
  auto ov = state.overflow.find(std::string(key_bytes));
  if (ov != state.overflow.end()) return &ov->second;
  auto it = state.primary.find(KeyDigest(key_bytes));
  if (it == state.primary.end()) return nullptr;
  // A digest hit proves nothing on its own — verify against the frame.
  std::string payload;
  if (!ReadFrame(it->second.offset, &payload, nullptr).ok()) return nullptr;
  auto parsed = ParsePayload(payload);
  if (!parsed.ok() || parsed->key_bytes != key_bytes) return nullptr;
  return &it->second;
}

Result<std::uint64_t> ColdStore::Put(std::string_view table,
                                     std::string_view key_bytes,
                                     std::string_view row_bytes) {
  TableState& state = tables_[std::string(table)];
  std::string payload;
  EncodePayload(/*tombstone=*/false, table, key_bytes, row_bytes, &payload);
  std::uint64_t offset = 0;
  std::uint32_t frame_len = 0;
  PISREP_RETURN_IF_ERROR(AppendFrame(payload, &offset, &frame_len));
  Entry entry{offset, frame_len};

  auto ov = state.overflow.find(std::string(key_bytes));
  if (ov != state.overflow.end()) {
    dead_bytes_ += ov->second.frame_len;
    ov->second = entry;
  } else {
    std::uint64_t digest = KeyDigest(key_bytes);
    auto it = state.primary.find(digest);
    if (it == state.primary.end()) {
      state.primary.emplace(digest, entry);
      ++live_rows_;
    } else {
      std::string other_payload;
      Status read = ReadFrame(it->second.offset, &other_payload, nullptr);
      bool same_key = false;
      if (read.ok()) {
        auto other = ParsePayload(other_payload);
        same_key = other.ok() && other->key_bytes == key_bytes;
      }
      if (same_key) {
        dead_bytes_ += it->second.frame_len;
        it->second = entry;
      } else {
        state.overflow.emplace(std::string(key_bytes), entry);
        ++live_rows_;
      }
    }
  }
  state.order.push_back(offset);
  return offset;
}

Status ColdStore::Erase(std::string_view table, std::string_view key_bytes) {
  auto table_it = tables_.find(std::string(table));
  if (table_it == tables_.end()) {
    return Status::NotFound("cold store has no rows for table " +
                            std::string(table));
  }
  TableState& state = table_it->second;
  const Entry* entry = FindEntry(state, key_bytes);
  if (entry == nullptr) {
    return Status::NotFound("key not in cold store table " +
                            std::string(table));
  }
  std::uint32_t old_len = entry->frame_len;
  std::string payload;
  EncodePayload(/*tombstone=*/true, table, key_bytes, {}, &payload);
  std::uint64_t offset = 0;
  std::uint32_t frame_len = 0;
  PISREP_RETURN_IF_ERROR(AppendFrame(payload, &offset, &frame_len));
  auto ov = state.overflow.find(std::string(key_bytes));
  if (ov != state.overflow.end()) {
    state.overflow.erase(ov);
  } else {
    state.primary.erase(KeyDigest(key_bytes));
  }
  dead_bytes_ += old_len + frame_len;
  --live_rows_;
  return Status::Ok();
}

bool ColdStore::Contains(std::string_view table,
                         std::string_view key_bytes) const {
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return false;
  return FindEntry(it->second, key_bytes) != nullptr;
}

Result<ColdStore::RowRef> ColdStore::Get(std::string_view table,
                                         std::string_view key_bytes) const {
  auto it = tables_.find(std::string(table));
  const Entry* entry =
      it == tables_.end() ? nullptr : FindEntry(it->second, key_bytes);
  if (entry == nullptr) {
    return Status::NotFound("key not in cold store table " +
                            std::string(table));
  }
  std::string payload;
  PISREP_RETURN_IF_ERROR(ReadFrame(entry->offset, &payload, nullptr));
  PISREP_ASSIGN_OR_RETURN(ParsedPayload parsed, ParsePayload(payload));
  RowRef ref;
  ref.offset = entry->offset;
  ref.row_bytes = std::move(parsed.row_bytes);
  return ref;
}

Result<ColdStore::FrameView> ColdStore::ReadAt(std::string_view table,
                                               std::uint64_t offset) const {
  std::string payload;
  PISREP_RETURN_IF_ERROR(ReadFrame(offset, &payload, nullptr));
  PISREP_ASSIGN_OR_RETURN(ParsedPayload parsed, ParsePayload(payload));
  FrameView view;
  view.key_bytes = std::move(parsed.key_bytes);
  view.row_bytes = std::move(parsed.row_bytes);
  view.live = false;
  auto it = tables_.find(std::string(table));
  if (!parsed.tombstone && it != tables_.end()) {
    const TableState& state = it->second;
    // Liveness without a verify read: the frame's own key either sits in
    // the exact overflow map, or its digest entry points right back here.
    auto ov = state.overflow.find(view.key_bytes);
    if (ov != state.overflow.end()) {
      view.live = ov->second.offset == offset;
    } else {
      auto pri = state.primary.find(KeyDigest(view.key_bytes));
      view.live = pri != state.primary.end() && pri->second.offset == offset;
    }
  }
  return view;
}

Status ColdStore::ForEachLive(
    std::string_view table,
    const std::function<util::Status(std::uint64_t, std::string_view,
                                     std::string_view)>& visit) const {
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return Status::Ok();
  for (std::uint64_t offset : it->second.order) {
    PISREP_ASSIGN_OR_RETURN(FrameView view, ReadAt(table, offset));
    if (!view.live) continue;
    PISREP_RETURN_IF_ERROR(visit(offset, view.key_bytes, view.row_bytes));
  }
  return Status::Ok();
}

std::size_t ColdStore::LiveCount(std::string_view table) const {
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return 0;
  return it->second.primary.size() + it->second.overflow.size();
}

ColdStore::IndexFootprint ColdStore::FootprintOf(
    std::string_view table) const {
  IndexFootprint footprint;
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return footprint;
  footprint.primary_entries = it->second.primary.size();
  footprint.overflow_entries = it->second.overflow.size();
  footprint.order_entries = it->second.order.size();
  return footprint;
}

bool ColdStore::ShouldGc() const {
  if (file_bytes_ < options_.gc_min_file_bytes) return false;
  return static_cast<double>(dead_bytes_) >
         options_.gc_dead_ratio * static_cast<double>(file_bytes_);
}

Result<bool> ColdStore::MaybeGc() {
  if (!ShouldGc()) return false;
  PISREP_RETURN_IF_ERROR(RunGc());
  return true;
}

Status ColdStore::ForceGc() { return RunGc(); }

Status ColdStore::RunGc() {
  // Rewrite live frames — in global append order, so per-table iteration
  // order survives the move — into a sibling file, then swap it in.
  const std::string gc_path = path_ + ".gc";
  std::FILE* out = std::fopen(gc_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot open GC output " + gc_path);
  }
  std::unordered_map<std::string, TableState> rebuilt;
  std::uint64_t out_bytes = 0;
  std::uint64_t pos = 0;
  Status failed = Status::Ok();
  while (pos < file_bytes_) {
    std::string payload;
    std::uint32_t frame_len = 0;
    failed = ReadFrame(pos, &payload, &frame_len);
    if (!failed.ok()) break;
    auto parsed = ParsePayload(payload);
    if (!parsed.ok()) {
      failed = parsed.status();
      break;
    }
    std::uint64_t frame_offset = pos;
    pos += frame_len;
    if (parsed->tombstone) continue;
    auto state_it = tables_.find(parsed->table);
    if (state_it == tables_.end()) continue;
    const TableState& state = state_it->second;
    bool live = false;
    auto ov = state.overflow.find(parsed->key_bytes);
    if (ov != state.overflow.end()) {
      live = ov->second.offset == frame_offset;
    } else {
      auto pri = state.primary.find(KeyDigest(parsed->key_bytes));
      live = pri != state.primary.end() &&
             pri->second.offset == frame_offset;
    }
    if (!live) continue;
    // Re-frame verbatim: same payload, same CRC, new offset.
    std::string frame;
    PutVarint(payload.size(), &frame);
    frame.append(payload);
    std::uint32_t crc = ColdBlockCrc(payload);
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
    }
    if (std::fwrite(frame.data(), 1, frame.size(), out) != frame.size()) {
      failed = Status::Internal("GC write failed on " + gc_path);
      break;
    }
    TableState& new_state = rebuilt[parsed->table];
    Entry entry{out_bytes, static_cast<std::uint32_t>(frame.size())};
    std::uint64_t digest = KeyDigest(parsed->key_bytes);
    // Every key appears exactly once among live frames, so a digest hit
    // here can only be a genuine collision between distinct keys.
    if (new_state.primary.contains(digest)) {
      new_state.overflow.emplace(parsed->key_bytes, entry);
    } else {
      new_state.primary.emplace(digest, entry);
    }
    new_state.order.push_back(out_bytes);
    out_bytes += frame.size();
  }
  if (failed.ok() && std::fflush(out) != 0) {
    failed = Status::Internal("GC flush failed on " + gc_path);
  }
  std::fclose(out);
  if (!failed.ok()) {
    std::error_code ec;
    std::filesystem::remove(gc_path, ec);
    return failed;
  }
  std::fclose(file_);
  file_ = nullptr;
  fd_ = -1;
  std::error_code ec;
  std::filesystem::rename(gc_path, path_, ec);
  if (ec) {
    return Status::Internal("GC rename failed: " + ec.message());
  }
  std::uint64_t reclaimed = file_bytes_ - out_bytes;
  tables_ = std::move(rebuilt);
  dead_bytes_ = 0;
  ++gc_runs_;
  gc_reclaimed_bytes_ += reclaimed;
  PISREP_RETURN_IF_ERROR(OpenFile(/*truncate=*/false));
  return Status::Ok();
}

ColdStoreStats ColdStore::stats() const {
  ColdStoreStats stats;
  stats.file_bytes = file_bytes_;
  stats.dead_bytes = dead_bytes_;
  stats.live_rows = live_rows_;
  stats.appends = appends_;
  stats.reads = reads_.load(std::memory_order_relaxed);
  stats.gc_runs = gc_runs_;
  stats.gc_reclaimed_bytes = gc_reclaimed_bytes_;
  return stats;
}

}  // namespace pisrep::storage
