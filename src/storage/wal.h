#ifndef PISREP_STORAGE_WAL_H_
#define PISREP_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pisrep::storage {

/// Record kinds in the write-ahead log.
enum class WalOp : std::uint8_t {
  kCreateTable = 0,
  kInsert = 1,
  kUpsert = 2,
  kDelete = 3,
};

/// Framed, checksummed append-only log writer.
///
/// Frame layout: varint payload length, payload bytes, 4-byte little-endian
/// FNV-1a checksum of the payload. A truncated final frame (crash mid-write)
/// is detected and ignored on replay; a checksum mismatch anywhere else is
/// reported as data loss.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (creating it if needed).
  util::Status Open(const std::string& path);

  /// Truncates and reopens `path` (used by compaction).
  util::Status OpenTruncated(const std::string& path);

  bool is_open() const { return file_ != nullptr; }

  /// Appends one frame and flushes.
  util::Status Append(std::string_view payload);

  void Close();

 private:
  std::FILE* file_ = nullptr;
};

/// Sequential reader over a WAL file.
class WalReader {
 public:
  WalReader() = default;

  /// Loads the whole file into memory. Missing files are not an error: an
  /// empty log is returned (first open of a fresh database).
  util::Status Open(const std::string& path);

  /// Reads the next frame. Returns kNotFound at clean end-of-log, including
  /// when the final frame is truncated (torn write). Checksum mismatches on
  /// complete frames return kDataLoss *without* advancing the read
  /// position, so offset() then marks the end of the intact prefix.
  util::Result<std::string> Next();

  /// Byte offset of the next unread frame — after a kDataLoss, the length
  /// of the salvageable prefix.
  std::size_t offset() const { return pos_; }

 private:
  std::string data_;
  std::size_t pos_ = 0;
};

/// FNV-1a 32-bit checksum used by the WAL framing.
std::uint32_t WalChecksum(std::string_view payload);

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_WAL_H_
