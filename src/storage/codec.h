#ifndef PISREP_STORAGE_CODEC_H_
#define PISREP_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace pisrep::storage {

/// Binary row / schema codec used by the write-ahead log and checkpoints.
///
/// Encoding primitives: LEB128 varints, zigzag for signed integers, raw
/// IEEE-754 bits for doubles, and length-prefixed byte strings. Everything
/// decodes with strict bounds checking so a truncated or corrupt log is
/// reported as kDataLoss rather than crashing recovery.

/// Appends an unsigned LEB128 varint.
void PutVarint(std::uint64_t v, std::string* out);
/// Appends a zigzag-encoded signed varint.
void PutSignedVarint(std::int64_t v, std::string* out);
/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string_view s, std::string* out);

/// Cursor over encoded bytes. Get* methods fail with kDataLoss on underrun.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data), pos_(0) {}

  util::Result<std::uint64_t> GetVarint();
  util::Result<std::int64_t> GetSignedVarint();
  util::Result<std::string> GetLengthPrefixed();
  util::Result<std::uint8_t> GetByte();

  bool AtEnd() const { return pos_ >= data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  std::string_view data_;
  std::size_t pos_;
};

/// Appends the encoding of `value`.
void EncodeValue(const Value& value, std::string* out);
/// Decodes one value of the given type.
util::Result<Value> DecodeValue(ColumnType type, Decoder& dec);

/// Appends the encoding of `row` (values in schema order, no count prefix —
/// the schema supplies arity on decode).
void EncodeRow(const TableSchema& schema, const Row& row, std::string* out);
util::Result<Row> DecodeRow(const TableSchema& schema, Decoder& dec);

/// Schema serialization for self-describing checkpoints and WALs.
void EncodeSchema(const TableSchema& schema, std::string* out);
util::Result<TableSchema> DecodeSchema(Decoder& dec);

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_CODEC_H_
