#ifndef PISREP_STORAGE_TABLE_H_
#define PISREP_STORAGE_TABLE_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace pisrep::storage {

/// Change kinds reported to a table's mutation listener (the WAL).
enum class MutationOp : std::uint8_t {
  kInsert = 0,
  kUpsert = 1,
  kDelete = 2,
};

/// An in-memory table with a unique primary-key hash index and optional
/// non-unique secondary hash indexes.
///
/// Mutations are funneled through Insert/Upsert/Delete so that the owning
/// Database can journal them; reads are index-backed where possible and fall
/// back to full scans with a caller-supplied predicate.
class Table {
 public:
  /// Invoked after every successful mutation, with the affected row (for
  /// deletes, the pre-image's key only).
  using MutationListener =
      std::function<void(MutationOp op, const Row& row, const Value& key)>;

  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  std::size_t size() const { return rows_.size(); }

  void SetMutationListener(MutationListener listener) {
    listener_ = std::move(listener);
  }

  /// Inserts a new row; fails with kAlreadyExists when the key is taken.
  util::Status Insert(Row row);

  /// Inserts or replaces by primary key.
  util::Status Upsert(Row row);

  /// Row with the given primary key; kNotFound when absent.
  util::Result<Row> Get(const Value& key) const;

  /// Pointer to the row with the given primary key, or nullptr — the
  /// zero-copy sibling of Get for callers that serve many point reads
  /// (the tiered facade resolving resident rows). The pointer is valid
  /// only until the next mutation.
  const Row* FindRow(const Value& key) const;

  bool Contains(const Value& key) const;

  /// Deletes by primary key; kNotFound when absent.
  util::Status Delete(const Value& key);

  /// All rows whose indexed column equals `value`. The column must have a
  /// declared secondary index.
  util::Result<std::vector<Row>> FindByIndex(std::string_view column,
                                             const Value& value) const;

  /// Visits every row whose indexed column equals `value`, in index order,
  /// without materializing (and copying into) a vector — the hot-path
  /// sibling of FindByIndex. The rows passed to `visit` live inside the
  /// table; references must not be retained past a mutation.
  util::Status ForEachByIndex(
      std::string_view column, const Value& value,
      const std::function<void(const Row&)>& visit) const;

  /// Number of rows whose indexed column equals `value`; lets callers
  /// reserve before a ForEachByIndex materialization pass.
  util::Result<std::size_t> CountByIndex(std::string_view column,
                                         const Value& value) const;

  /// Rows whose ordered-indexed column lies in [min, max] (both inclusive),
  /// in ascending column order. The column must have a declared ordered
  /// index.
  util::Result<std::vector<Row>> ScanRange(std::string_view column,
                                           const Value& min,
                                           const Value& max) const;

  /// Up to `limit` rows in ascending (or descending) order of the
  /// ordered-indexed column.
  util::Result<std::vector<Row>> ScanOrdered(std::string_view column,
                                             bool ascending,
                                             std::size_t limit) const;

  /// Full scan; rows for which `pred` returns true. Order is unspecified.
  std::vector<Row> Scan(const std::function<bool(const Row&)>& pred) const;

  /// Visits every row (unspecified order) without copying.
  void ForEach(const std::function<void(const Row&)>& visit) const;

  /// Removes all rows (used by checkpoint loading). Does not notify the
  /// listener.
  void ClearUnlogged();

  /// Inserts without notifying the listener (used by WAL replay and
  /// checkpoint loading, where the row is already durable).
  util::Status InsertUnlogged(Row row);
  util::Status UpsertUnlogged(Row row);
  util::Status DeleteUnlogged(const Value& key);

 private:
  util::Status InsertImpl(Row row, bool log);
  util::Status UpsertImpl(Row row, bool log);
  util::Status DeleteImpl(const Value& key, bool log);

  void IndexRow(std::size_t slot);
  void UnindexRow(std::size_t slot);

  TableSchema schema_;
  std::vector<Row> rows_;  ///< dense storage; slots swap-removed on delete
  std::unordered_map<Value, std::size_t, ValueHash> primary_;  ///< key→slot
  /// One map per declared secondary index, parallel to
  /// schema_.secondary_indexes(): value → slots.
  std::vector<std::unordered_multimap<Value, std::size_t, ValueHash>>
      secondary_;
  /// One tree per declared ordered index, parallel to
  /// schema_.ordered_indexes(): value → slots, sorted.
  std::vector<std::multimap<Value, std::size_t, ValueLess>> ordered_;
  MutationListener listener_;
};

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_TABLE_H_
