#ifndef PISREP_STORAGE_HOT_TIER_H_
#define PISREP_STORAGE_HOT_TIER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pisrep::storage {

/// Residency bookkeeping for one tiered table: which rows are resident in
/// the in-memory Table, how recently each was touched (a logical LRU
/// clock), which are pinned by the live ScoreSnapshot, and which cold keys
/// a concurrent read path has asked to be faulted in.
///
/// Keys are the row's encoded primary-key bytes (the same digest input the
/// ColdStore indexes by). The maps are node-based, so Meta addresses stay
/// stable and the offset→key view can point straight at map keys.
///
/// Thread compatibility matches the rest of the storage layer: structural
/// mutation is single-writer; const paths touched by concurrent readers —
/// Touch and EnqueueFault — go through a relaxed atomic stamp and a small
/// mutex respectively, so the read path never structurally mutates.
class HotTier {
 public:
  struct Meta {
    /// Current cold-store frame offset of this row (refreshed after GC).
    std::uint64_t offset = 0;
    /// Logical last-touch tick; larger = more recently used. Relaxed
    /// atomic: readers stamp it concurrently, only ordering-by-value at
    /// demotion time matters. Mutable — Touch runs on the const read path.
    mutable std::atomic<std::uint64_t> stamp{0};
    /// Pin refcount; pinned rows are never demoted.
    int pins = 0;
    /// Value of the policy's age column at last write (sim time).
    util::TimePoint age = 0;
  };

  HotTier() = default;
  HotTier(const HotTier&) = delete;
  HotTier& operator=(const HotTier&) = delete;

  std::size_t size() const { return metas_.size(); }
  bool Contains(const std::string& key_bytes) const {
    return metas_.contains(key_bytes);
  }

  const Meta* Find(const std::string& key_bytes) const;
  /// Stamps `meta` with a fresh LRU tick and counts the hit.
  void Touch(const Meta* meta) const;

  /// Registers a resident row (writer thread only).
  void Add(const std::string& key_bytes, std::uint64_t offset,
           util::TimePoint age);
  void Remove(const std::string& key_bytes);
  /// Moves an existing resident row to a new cold offset (a GC pass moved
  /// the frame); age and LRU stamp are preserved.
  void SetOffset(const std::string& key_bytes, std::uint64_t offset);

  /// Encoded keys of all resident rows / all unpinned resident rows.
  std::vector<std::string> ResidentKeys() const;
  std::vector<std::string> UnpinnedKeys() const;

  /// Encoded key of the resident row whose live frame sits at `offset`,
  /// or nullptr when that frame's row is not resident.
  const std::string* KeyForOffset(std::uint64_t offset) const;

  /// Pin/unpin return false when the key is not resident.
  bool Pin(const std::string& key_bytes);
  bool Unpin(const std::string& key_bytes);
  std::size_t pinned_rows() const { return pinned_rows_; }

  /// Read-path fault admission: remember that `key_bytes` was served cold
  /// so the next Tick can promote it. Bounded; excess faults are dropped
  /// (they will simply fault again).
  void EnqueueFault(const std::string& key_bytes) const;
  std::vector<std::string> DrainFaults();

  /// Keys to demote: every unpinned row older than `demote_age` (when
  /// `age_enabled`), plus — when the tier still exceeds `capacity` — the
  /// least recently touched unpinned rows down to capacity.
  std::vector<std::string> PlanDemotions(std::size_t capacity,
                                         util::TimePoint now,
                                         util::Duration demote_age,
                                         bool age_enabled) const;

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kMaxQueuedFaults = 4096;

  std::unordered_map<std::string, Meta> metas_;
  std::unordered_map<std::uint64_t, const std::string*> by_offset_;
  std::size_t pinned_rows_ = 0;
  mutable std::atomic<std::uint64_t> lru_tick_{1};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable util::Mutex fault_mu_;
  mutable std::vector<std::string> fault_queue_ GUARDED_BY(fault_mu_);
};

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_HOT_TIER_H_
