#include "storage/table.h"

#include <utility>

#include "util/logging.h"

namespace pisrep::storage {

namespace {
using util::Result;
using util::Status;
}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  secondary_.resize(schema_.secondary_indexes().size());
  ordered_.resize(schema_.ordered_indexes().size());
}

Status Table::Insert(Row row) { return InsertImpl(std::move(row), true); }
Status Table::Upsert(Row row) { return UpsertImpl(std::move(row), true); }
Status Table::Delete(const Value& key) { return DeleteImpl(key, true); }

Status Table::InsertUnlogged(Row row) {
  return InsertImpl(std::move(row), false);
}
Status Table::UpsertUnlogged(Row row) {
  return UpsertImpl(std::move(row), false);
}
Status Table::DeleteUnlogged(const Value& key) {
  return DeleteImpl(key, false);
}

Status Table::InsertImpl(Row row, bool log) {
  PISREP_RETURN_IF_ERROR(schema_.CheckRow(row));
  const Value& key = row[schema_.primary_key_index()];
  if (primary_.contains(key)) {
    return Status::AlreadyExists("duplicate key " + key.ToString() +
                                 " in table " + schema_.table_name());
  }
  rows_.push_back(std::move(row));
  std::size_t slot = rows_.size() - 1;
  primary_.emplace(rows_[slot][schema_.primary_key_index()], slot);
  IndexRow(slot);
  if (log && listener_) {
    listener_(MutationOp::kInsert, rows_[slot],
              rows_[slot][schema_.primary_key_index()]);
  }
  return Status::Ok();
}

Status Table::UpsertImpl(Row row, bool log) {
  PISREP_RETURN_IF_ERROR(schema_.CheckRow(row));
  const Value key = row[schema_.primary_key_index()];
  auto it = primary_.find(key);
  if (it == primary_.end()) {
    rows_.push_back(std::move(row));
    std::size_t slot = rows_.size() - 1;
    primary_.emplace(rows_[slot][schema_.primary_key_index()], slot);
    IndexRow(slot);
    if (log && listener_) {
      listener_(MutationOp::kUpsert, rows_[slot], key);
    }
    return Status::Ok();
  }
  std::size_t slot = it->second;
  UnindexRow(slot);
  rows_[slot] = std::move(row);
  IndexRow(slot);
  if (log && listener_) {
    listener_(MutationOp::kUpsert, rows_[slot], key);
  }
  return Status::Ok();
}

Result<Row> Table::Get(const Value& key) const {
  auto it = primary_.find(key);
  if (it == primary_.end()) {
    return Status::NotFound("key " + key.ToString() + " not in table " +
                            schema_.table_name());
  }
  return rows_[it->second];
}

const Row* Table::FindRow(const Value& key) const {
  auto it = primary_.find(key);
  return it == primary_.end() ? nullptr : &rows_[it->second];
}

bool Table::Contains(const Value& key) const {
  return primary_.contains(key);
}

Status Table::DeleteImpl(const Value& key, bool log) {
  auto it = primary_.find(key);
  if (it == primary_.end()) {
    return Status::NotFound("key " + key.ToString() + " not in table " +
                            schema_.table_name());
  }
  std::size_t slot = it->second;
  UnindexRow(slot);
  primary_.erase(it);

  std::size_t last = rows_.size() - 1;
  if (slot != last) {
    // Swap-remove: relocate the last row into the vacated slot and update
    // all indexes pointing at it.
    UnindexRow(last);
    const Value last_key = rows_[last][schema_.primary_key_index()];
    primary_.erase(last_key);
    rows_[slot] = std::move(rows_[last]);
    primary_.emplace(rows_[slot][schema_.primary_key_index()], slot);
    IndexRow(slot);
  }
  rows_.pop_back();

  if (log && listener_) {
    static const Row kEmptyRow;
    listener_(MutationOp::kDelete, kEmptyRow, key);
  }
  return Status::Ok();
}

Result<std::vector<Row>> Table::FindByIndex(std::string_view column,
                                            const Value& value) const {
  PISREP_ASSIGN_OR_RETURN(std::size_t col, schema_.ColumnIndex(column));
  for (std::size_t i = 0; i < schema_.secondary_indexes().size(); ++i) {
    if (schema_.secondary_indexes()[i] != col) continue;
    std::vector<Row> out;
    auto [begin, end] = secondary_[i].equal_range(value);
    // Reserve up front: each Row is a vector of Values, so growth-driven
    // reallocation used to re-copy every already-collected row.
    out.reserve(static_cast<std::size_t>(std::distance(begin, end)));
    for (auto it = begin; it != end; ++it) {
      out.push_back(rows_[it->second]);
    }
    return out;
  }
  return Status::FailedPrecondition("column " + std::string(column) +
                                    " has no secondary index in table " +
                                    schema_.table_name());
}

Status Table::ForEachByIndex(
    std::string_view column, const Value& value,
    const std::function<void(const Row&)>& visit) const {
  PISREP_ASSIGN_OR_RETURN(std::size_t col, schema_.ColumnIndex(column));
  for (std::size_t i = 0; i < schema_.secondary_indexes().size(); ++i) {
    if (schema_.secondary_indexes()[i] != col) continue;
    auto [begin, end] = secondary_[i].equal_range(value);
    for (auto it = begin; it != end; ++it) {
      visit(rows_[it->second]);
    }
    return Status::Ok();
  }
  return Status::FailedPrecondition("column " + std::string(column) +
                                    " has no secondary index in table " +
                                    schema_.table_name());
}

Result<std::size_t> Table::CountByIndex(std::string_view column,
                                        const Value& value) const {
  PISREP_ASSIGN_OR_RETURN(std::size_t col, schema_.ColumnIndex(column));
  for (std::size_t i = 0; i < schema_.secondary_indexes().size(); ++i) {
    if (schema_.secondary_indexes()[i] != col) continue;
    auto [begin, end] = secondary_[i].equal_range(value);
    return static_cast<std::size_t>(std::distance(begin, end));
  }
  return Status::FailedPrecondition("column " + std::string(column) +
                                    " has no secondary index in table " +
                                    schema_.table_name());
}

namespace {

/// Finds the position of `column` within an index declaration list.
Result<std::size_t> IndexPosition(const TableSchema& schema,
                                  const std::vector<std::size_t>& declared,
                                  std::string_view column,
                                  const char* index_kind) {
  PISREP_ASSIGN_OR_RETURN(std::size_t col, schema.ColumnIndex(column));
  for (std::size_t i = 0; i < declared.size(); ++i) {
    if (declared[i] == col) return i;
  }
  return Status::FailedPrecondition(
      "column " + std::string(column) + " has no " + index_kind +
      " index in table " + schema.table_name());
}

}  // namespace

Result<std::vector<Row>> Table::ScanRange(std::string_view column,
                                          const Value& min,
                                          const Value& max) const {
  PISREP_ASSIGN_OR_RETURN(
      std::size_t pos, IndexPosition(schema_, schema_.ordered_indexes(),
                                     column, "ordered"));
  std::vector<Row> out;
  auto begin = ordered_[pos].lower_bound(min);
  auto end = ordered_[pos].upper_bound(max);
  for (auto it = begin; it != end; ++it) {
    out.push_back(rows_[it->second]);
  }
  return out;
}

Result<std::vector<Row>> Table::ScanOrdered(std::string_view column,
                                            bool ascending,
                                            std::size_t limit) const {
  PISREP_ASSIGN_OR_RETURN(
      std::size_t pos, IndexPosition(schema_, schema_.ordered_indexes(),
                                     column, "ordered"));
  std::vector<Row> out;
  const auto& index = ordered_[pos];
  if (ascending) {
    for (auto it = index.begin(); it != index.end() && out.size() < limit;
         ++it) {
      out.push_back(rows_[it->second]);
    }
  } else {
    for (auto it = index.rbegin();
         it != index.rend() && out.size() < limit; ++it) {
      out.push_back(rows_[it->second]);
    }
  }
  return out;
}

std::vector<Row> Table::Scan(
    const std::function<bool(const Row&)>& pred) const {
  std::vector<Row> out;
  for (const Row& row : rows_) {
    if (pred(row)) out.push_back(row);
  }
  return out;
}

void Table::ForEach(const std::function<void(const Row&)>& visit) const {
  for (const Row& row : rows_) visit(row);
}

void Table::ClearUnlogged() {
  rows_.clear();
  primary_.clear();
  for (auto& index : secondary_) index.clear();
  for (auto& index : ordered_) index.clear();
}

void Table::IndexRow(std::size_t slot) {
  for (std::size_t i = 0; i < schema_.secondary_indexes().size(); ++i) {
    std::size_t col = schema_.secondary_indexes()[i];
    secondary_[i].emplace(rows_[slot][col], slot);
  }
  for (std::size_t i = 0; i < schema_.ordered_indexes().size(); ++i) {
    std::size_t col = schema_.ordered_indexes()[i];
    ordered_[i].emplace(rows_[slot][col], slot);
  }
}

void Table::UnindexRow(std::size_t slot) {
  for (std::size_t i = 0; i < schema_.secondary_indexes().size(); ++i) {
    std::size_t col = schema_.secondary_indexes()[i];
    auto [begin, end] = secondary_[i].equal_range(rows_[slot][col]);
    for (auto it = begin; it != end; ++it) {
      if (it->second == slot) {
        secondary_[i].erase(it);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < schema_.ordered_indexes().size(); ++i) {
    std::size_t col = schema_.ordered_indexes()[i];
    auto [begin, end] = ordered_[i].equal_range(rows_[slot][col]);
    for (auto it = begin; it != end; ++it) {
      if (it->second == slot) {
        ordered_[i].erase(it);
        break;
      }
    }
  }
}

}  // namespace pisrep::storage
