#include "storage/tiered_table.h"

#include <utility>

#include "storage/codec.h"
#include "util/logging.h"

namespace pisrep::storage {

namespace {

using util::Result;
using util::Status;

/// FNV-1a 64-bit — the cold secondary-index digest (same family as the
/// ColdStore's primary digest; collisions are handled by value verification
/// on visit, never assumed away).
std::uint64_t BytesDigest(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Finds the position of `column` within an index declaration list, with
/// the same error wording as Table's scans — callers see one contract.
Result<std::size_t> IndexPosition(const TableSchema& schema,
                                  const std::vector<std::size_t>& declared,
                                  std::string_view column,
                                  const char* index_kind) {
  PISREP_ASSIGN_OR_RETURN(std::size_t col, schema.ColumnIndex(column));
  for (std::size_t i = 0; i < declared.size(); ++i) {
    if (declared[i] == col) return i;
  }
  return Status::FailedPrecondition(
      "column " + std::string(column) + " has no " + index_kind +
      " index in table " + schema.table_name());
}

/// Deep-size constants for the resident-bytes model: a node-based hash map
/// entry (node + bucket share) and a red-black tree node. Deliberately flat
/// round numbers — the model's job is a deterministic, twin-comparable
/// ruler, not an allocator-exact census.
constexpr std::uint64_t kHashNodeBytes = 48;
constexpr std::uint64_t kTreeNodeBytes = 56;

}  // namespace

TieredTable::TieredTable(Table* hot, ColdStore* cold, TierPolicy policy)
    : hot_(hot), cold_(cold), policy_(std::move(policy)) {
  const TableSchema& schema = hot_->schema();
  name_ = schema.table_name();
  key_type_ = schema.columns()[schema.primary_key_index()].type;
  if (cold_ != nullptr) {
    cold_sec_.resize(schema.secondary_indexes().size());
    cold_ord_.resize(schema.ordered_indexes().size());
    if (!policy_.age_column.empty()) {
      auto col = schema.ColumnIndex(policy_.age_column);
      PISREP_CHECK(col.ok()) << "tier policy for " << name_
                             << " names unknown age column "
                             << policy_.age_column;
      PISREP_CHECK(schema.columns()[*col].type == ColumnType::kInt64)
          << "tier age column " << policy_.age_column << " must be int64";
      age_col_ = static_cast<int>(*col);
    }
  }
}

std::size_t TieredTable::size() const {
  return cold_ != nullptr ? cold_->LiveCount(name_) : hot_->size();
}

std::string TieredTable::EncodeKey(const Value& key) const {
  std::string bytes;
  EncodeValue(key, &bytes);
  return bytes;
}

Result<Value> TieredTable::DecodeKey(std::string_view key_bytes) const {
  Decoder dec(key_bytes);
  return DecodeValue(key_type_, dec);
}

Result<Row> TieredTable::DecodeRowBytes(std::string_view row_bytes) const {
  Decoder dec(row_bytes);
  return DecodeRow(hot_->schema(), dec);
}

util::TimePoint TieredTable::AgeOf(const Row& row) const {
  return age_col_ >= 0 ? row[static_cast<std::size_t>(age_col_)].AsInt() : 0;
}

void TieredTable::IndexColdRow(std::uint64_t offset, const Row& row) {
  const TableSchema& schema = hot_->schema();
  for (std::size_t i = 0; i < schema.secondary_indexes().size(); ++i) {
    std::string value_bytes;
    EncodeValue(row[schema.secondary_indexes()[i]], &value_bytes);
    cold_sec_[i][BytesDigest(value_bytes)].push_back(offset);
    ++cold_sec_entries_;
  }
  for (std::size_t i = 0; i < schema.ordered_indexes().size(); ++i) {
    cold_ord_[i].emplace(row[schema.ordered_indexes()[i]], offset);
  }
}

Status TieredTable::Insert(Row row) {
  if (cold_ == nullptr) return hot_->Insert(std::move(row));
  PISREP_RETURN_IF_ERROR(hot_->schema().CheckRow(row));
  const Value& key = row[hot_->schema().primary_key_index()];
  std::string key_bytes = EncodeKey(key);
  if (tier_.Contains(key_bytes) || cold_->Contains(name_, key_bytes)) {
    return Status::AlreadyExists("duplicate key " + key.ToString() +
                                 " in table " + name_);
  }
  std::string row_bytes;
  EncodeRow(hot_->schema(), row, &row_bytes);
  // Durable-then-announce, matching the WAL discipline: the cold append
  // lands before the in-memory insert fires the mutation listener.
  PISREP_ASSIGN_OR_RETURN(std::uint64_t offset,
                          cold_->Put(name_, key_bytes, row_bytes));
  IndexColdRow(offset, row);
  util::TimePoint age = AgeOf(row);
  Status inserted = hot_->Insert(std::move(row));
  PISREP_CHECK(inserted.ok()) << "tiered insert diverged from cold state: "
                              << inserted.ToString();
  tier_.Add(key_bytes, offset, age);
  return Status::Ok();
}

Status TieredTable::Upsert(Row row) {
  if (cold_ == nullptr) return hot_->Upsert(std::move(row));
  PISREP_RETURN_IF_ERROR(hot_->schema().CheckRow(row));
  const Value& key = row[hot_->schema().primary_key_index()];
  std::string key_bytes = EncodeKey(key);
  std::string row_bytes;
  EncodeRow(hot_->schema(), row, &row_bytes);
  PISREP_ASSIGN_OR_RETURN(std::uint64_t offset,
                          cold_->Put(name_, key_bytes, row_bytes));
  IndexColdRow(offset, row);
  util::TimePoint age = AgeOf(row);
  Status upserted = hot_->Upsert(std::move(row));
  PISREP_CHECK(upserted.ok()) << "tiered upsert diverged from cold state: "
                              << upserted.ToString();
  tier_.Add(key_bytes, offset, age);
  return Status::Ok();
}

Result<Row> TieredTable::Get(const Value& key) const {
  if (cold_ == nullptr) return hot_->Get(key);
  std::string key_bytes = EncodeKey(key);
  if (const HotTier::Meta* meta = tier_.Find(key_bytes)) {
    tier_.Touch(meta);
    return hot_->Get(key);
  }
  auto ref = cold_->Get(name_, key_bytes);
  if (!ref.ok()) {
    if (ref.status().code() == util::StatusCode::kNotFound) {
      return Status::NotFound("key " + key.ToString() + " not in table " +
                              name_);
    }
    return ref.status();
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  PISREP_ASSIGN_OR_RETURN(Row row, DecodeRowBytes(ref->row_bytes));
  // Deferred admission: the next Tick promotes; the read path stays
  // structurally const so concurrent readers need no lock.
  tier_.EnqueueFault(key_bytes);
  return row;
}

bool TieredTable::Contains(const Value& key) const {
  if (cold_ == nullptr) return hot_->Contains(key);
  std::string key_bytes = EncodeKey(key);
  return tier_.Contains(key_bytes) || cold_->Contains(name_, key_bytes);
}

Status TieredTable::Delete(const Value& key) {
  if (cold_ == nullptr) return hot_->Delete(key);
  std::string key_bytes = EncodeKey(key);
  if (tier_.Contains(key_bytes)) {
    PISREP_RETURN_IF_ERROR(cold_->Erase(name_, key_bytes));
    tier_.Remove(key_bytes);
    Status deleted = hot_->Delete(key);
    PISREP_CHECK(deleted.ok()) << "tiered delete diverged from cold state: "
                               << deleted.ToString();
    return Status::Ok();
  }
  auto ref = cold_->Get(name_, key_bytes);
  if (!ref.ok()) {
    if (ref.status().code() == util::StatusCode::kNotFound) {
      return Status::NotFound("key " + key.ToString() + " not in table " +
                              name_);
    }
    return ref.status();
  }
  PISREP_ASSIGN_OR_RETURN(Row row, DecodeRowBytes(ref->row_bytes));
  PISREP_RETURN_IF_ERROR(cold_->Erase(name_, key_bytes));
  // Materialize transiently so the delete still runs through the Table
  // mutation funnel and fires the listener (replication export).
  Status staged = hot_->InsertUnlogged(std::move(row));
  PISREP_CHECK(staged.ok()) << staged.ToString();
  Status deleted = hot_->Delete(key);
  PISREP_CHECK(deleted.ok()) << deleted.ToString();
  return Status::Ok();
}

Status TieredTable::VisitOffset(
    std::uint64_t offset, int verify_column, const Value* expect,
    bool* visited, const std::function<void(const Row&)>& visit) const {
  *visited = false;
  if (const std::string* key_bytes = tier_.KeyForOffset(offset)) {
    PISREP_ASSIGN_OR_RETURN(Value key, DecodeKey(*key_bytes));
    const Row* row = hot_->FindRow(key);
    PISREP_CHECK(row != nullptr) << "resident row missing from hot table";
    if (verify_column >= 0 &&
        (*row)[static_cast<std::size_t>(verify_column)] != *expect) {
      return Status::Ok();  // digest collision: different value, skip
    }
    tier_.Touch(tier_.Find(*key_bytes));
    *visited = true;
    visit(*row);
    return Status::Ok();
  }
  PISREP_ASSIGN_OR_RETURN(ColdStore::FrameView view,
                          cold_->ReadAt(name_, offset));
  if (!view.live) return Status::Ok();  // stale frame: overwritten/deleted
  PISREP_ASSIGN_OR_RETURN(Row row, DecodeRowBytes(view.row_bytes));
  if (verify_column >= 0 &&
      row[static_cast<std::size_t>(verify_column)] != *expect) {
    return Status::Ok();
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  *visited = true;
  visit(row);
  return Status::Ok();
}

Status TieredTable::ForEachByIndex(
    std::string_view column, const Value& value,
    const std::function<void(const Row&)>& visit) const {
  if (cold_ == nullptr) return hot_->ForEachByIndex(column, value, visit);
  const TableSchema& schema = hot_->schema();
  PISREP_ASSIGN_OR_RETURN(
      std::size_t pos, IndexPosition(schema, schema.secondary_indexes(),
                                     column, "secondary"));
  std::size_t col = schema.secondary_indexes()[pos];
  std::string value_bytes;
  EncodeValue(value, &value_bytes);
  auto it = cold_sec_[pos].find(BytesDigest(value_bytes));
  if (it == cold_sec_[pos].end()) return Status::Ok();
  for (std::uint64_t offset : it->second) {
    bool visited = false;
    PISREP_RETURN_IF_ERROR(VisitOffset(offset, static_cast<int>(col),
                                       &value, &visited, visit));
  }
  return Status::Ok();
}

Result<std::vector<Row>> TieredTable::FindByIndex(std::string_view column,
                                                  const Value& value) const {
  if (cold_ == nullptr) return hot_->FindByIndex(column, value);
  std::vector<Row> out;
  PISREP_RETURN_IF_ERROR(ForEachByIndex(
      column, value, [&](const Row& row) { out.push_back(row); }));
  return out;
}

Result<std::size_t> TieredTable::CountByIndex(std::string_view column,
                                              const Value& value) const {
  if (cold_ == nullptr) return hot_->CountByIndex(column, value);
  std::size_t count = 0;
  PISREP_RETURN_IF_ERROR(
      ForEachByIndex(column, value, [&](const Row&) { ++count; }));
  return count;
}

Result<std::vector<Row>> TieredTable::ScanRange(std::string_view column,
                                                const Value& min,
                                                const Value& max) const {
  if (cold_ == nullptr) return hot_->ScanRange(column, min, max);
  const TableSchema& schema = hot_->schema();
  PISREP_ASSIGN_OR_RETURN(
      std::size_t pos, IndexPosition(schema, schema.ordered_indexes(),
                                     column, "ordered"));
  std::vector<Row> out;
  auto begin = cold_ord_[pos].lower_bound(min);
  auto end = cold_ord_[pos].upper_bound(max);
  for (auto it = begin; it != end; ++it) {
    bool visited = false;
    PISREP_RETURN_IF_ERROR(
        VisitOffset(it->second, /*verify_column=*/-1, nullptr, &visited,
                    [&](const Row& row) { out.push_back(row); }));
  }
  return out;
}

Result<std::vector<Row>> TieredTable::ScanOrdered(std::string_view column,
                                                  bool ascending,
                                                  std::size_t limit) const {
  if (cold_ == nullptr) return hot_->ScanOrdered(column, ascending, limit);
  const TableSchema& schema = hot_->schema();
  PISREP_ASSIGN_OR_RETURN(
      std::size_t pos, IndexPosition(schema, schema.ordered_indexes(),
                                     column, "ordered"));
  std::vector<Row> out;
  const auto& index = cold_ord_[pos];
  auto emit = [&](std::uint64_t offset) -> Status {
    bool visited = false;
    return VisitOffset(offset, /*verify_column=*/-1, nullptr, &visited,
                       [&](const Row& row) { out.push_back(row); });
  };
  if (ascending) {
    for (auto it = index.begin(); it != index.end() && out.size() < limit;
         ++it) {
      PISREP_RETURN_IF_ERROR(emit(it->second));
    }
  } else {
    for (auto it = index.rbegin();
         it != index.rend() && out.size() < limit; ++it) {
      PISREP_RETURN_IF_ERROR(emit(it->second));
    }
  }
  return out;
}

std::vector<Row> TieredTable::Scan(
    const std::function<bool(const Row&)>& pred) const {
  if (cold_ == nullptr) return hot_->Scan(pred);
  std::vector<Row> out;
  ForEach([&](const Row& row) {
    if (pred(row)) out.push_back(row);
  });
  return out;
}

void TieredTable::ForEach(
    const std::function<void(const Row&)>& visit) const {
  if (cold_ == nullptr) {
    hot_->ForEach(visit);
    return;
  }
  Status scanned = cold_->ForEachLive(
      name_, [&](std::uint64_t, std::string_view, std::string_view
                 row_bytes) -> Status {
        PISREP_ASSIGN_OR_RETURN(Row row, DecodeRowBytes(row_bytes));
        visit(row);
        return Status::Ok();
      });
  PISREP_CHECK(scanned.ok()) << "cold scan of " << name_
                             << " failed: " << scanned.ToString();
}

Status TieredTable::Pin(const Value& key) {
  if (cold_ == nullptr) {
    if (!hot_->Contains(key)) {
      return Status::NotFound("key " + key.ToString() + " not in table " +
                              name_);
    }
    return Status::Ok();
  }
  std::string key_bytes = EncodeKey(key);
  if (!tier_.Contains(key_bytes)) {
    PISREP_RETURN_IF_ERROR(Promote(key_bytes));
  }
  tier_.Pin(key_bytes);
  return Status::Ok();
}

Status TieredTable::Unpin(const Value& key) {
  if (cold_ == nullptr) return Status::Ok();
  if (!tier_.Unpin(EncodeKey(key))) {
    return Status::NotFound("key " + key.ToString() +
                            " not pinned in table " + name_);
  }
  return Status::Ok();
}

bool TieredTable::IsHot(const Value& key) const {
  if (cold_ == nullptr) return hot_->Contains(key);
  return tier_.Contains(EncodeKey(key));
}

Status TieredTable::Promote(const std::string& key_bytes) {
  if (tier_.Contains(key_bytes)) return Status::Ok();
  PISREP_ASSIGN_OR_RETURN(ColdStore::RowRef ref,
                          cold_->Get(name_, key_bytes));
  PISREP_ASSIGN_OR_RETURN(Row row, DecodeRowBytes(ref.row_bytes));
  util::TimePoint age = AgeOf(row);
  Status staged = hot_->InsertUnlogged(std::move(row));
  PISREP_CHECK(staged.ok()) << "promotion into " << name_
                            << " failed: " << staged.ToString();
  tier_.Add(key_bytes, ref.offset, age);
  ++promotions_;
  return Status::Ok();
}

void TieredTable::Demote(const std::string& key_bytes) {
  auto key = DecodeKey(key_bytes);
  PISREP_CHECK(key.ok()) << key.status().ToString();
  Status dropped = hot_->DeleteUnlogged(*key);
  PISREP_CHECK(dropped.ok()) << "demotion from " << name_
                             << " failed: " << dropped.ToString();
  tier_.Remove(key_bytes);
  ++demotions_;
}

void TieredTable::Tick(util::TimePoint now) {
  if (cold_ == nullptr) return;
  for (const std::string& key_bytes : tier_.DrainFaults()) {
    if (tier_.Contains(key_bytes)) continue;
    Status promoted = Promote(key_bytes);
    // The row may have been deleted since the fault was queued.
    if (!promoted.ok() &&
        promoted.code() != util::StatusCode::kNotFound) {
      PISREP_LOG(kWarning) << "tier promotion failed: "
                           << promoted.ToString();
    }
  }
  bool age_enabled = age_col_ >= 0 && policy_.demote_age > 0;
  for (const std::string& key_bytes : tier_.PlanDemotions(
           policy_.hot_capacity_rows, now, policy_.demote_age,
           age_enabled)) {
    Demote(key_bytes);
  }
}

void TieredTable::DemoteAll() {
  if (cold_ == nullptr) return;
  for (const std::string& key_bytes : tier_.UnpinnedKeys()) {
    Demote(key_bytes);
  }
}

Status TieredTable::ApplyColdPut(const Row& row, std::string_view row_bytes,
                                 bool strict_insert) {
  if (cold_ == nullptr) {
    if (strict_insert) return hot_->InsertUnlogged(row);
    return hot_->UpsertUnlogged(row);
  }
  const Value& key = row[hot_->schema().primary_key_index()];
  std::string key_bytes = EncodeKey(key);
  bool exists = tier_.Contains(key_bytes) || cold_->Contains(name_, key_bytes);
  if (strict_insert && exists) {
    return Status::AlreadyExists("duplicate key " + key.ToString() +
                                 " in table " + name_);
  }
  PISREP_ASSIGN_OR_RETURN(std::uint64_t offset,
                          cold_->Put(name_, key_bytes, row_bytes));
  IndexColdRow(offset, row);
  if (tier_.Contains(key_bytes)) {
    // Keep the resident copy coherent rather than serving a stale row.
    Status refreshed = hot_->UpsertUnlogged(row);
    PISREP_CHECK(refreshed.ok()) << refreshed.ToString();
    tier_.Add(key_bytes, offset, AgeOf(row));
  }
  return Status::Ok();
}

Status TieredTable::ApplyColdDelete(const Value& key) {
  if (cold_ == nullptr) return hot_->DeleteUnlogged(key);
  std::string key_bytes = EncodeKey(key);
  if (tier_.Contains(key_bytes)) {
    Status dropped = hot_->DeleteUnlogged(key);
    PISREP_CHECK(dropped.ok()) << dropped.ToString();
    tier_.Remove(key_bytes);
  }
  Status erased = cold_->Erase(name_, key_bytes);
  if (erased.code() == util::StatusCode::kNotFound) {
    return Status::NotFound("key " + key.ToString() + " not in table " +
                            name_);
  }
  return erased;
}

Status TieredTable::RebuildFromCold() {
  if (cold_ == nullptr) return Status::Ok();
  for (auto& index : cold_sec_) index.clear();
  for (auto& index : cold_ord_) index.clear();
  cold_sec_entries_ = 0;
  // Residents first: refresh their cached frame offsets (a GC moved them).
  for (const std::string& key_bytes : tier_.ResidentKeys()) {
    auto ref = cold_->Get(name_, key_bytes);
    if (!ref.ok()) {
      // The cold store no longer has the row; drop the orphaned resident.
      auto key = DecodeKey(key_bytes);
      PISREP_CHECK(key.ok()) << key.status().ToString();
      Status dropped = hot_->DeleteUnlogged(*key);
      PISREP_CHECK(dropped.ok()) << dropped.ToString();
      tier_.Remove(key_bytes);
      continue;
    }
    tier_.SetOffset(key_bytes, ref->offset);
  }
  return cold_->ForEachLive(
      name_, [&](std::uint64_t offset, std::string_view,
                 std::string_view row_bytes) -> Status {
        PISREP_ASSIGN_OR_RETURN(Row row, DecodeRowBytes(row_bytes));
        IndexColdRow(offset, row);
        return Status::Ok();
      });
}

TieredTableStats TieredTable::stats() const {
  TieredTableStats stats;
  stats.hot_rows = hot_->size();
  stats.cold_rows = size();
  stats.pinned_rows = tier_.pinned_rows();
  stats.hits = tier_.hits();
  stats.faults = faults_.load(std::memory_order_relaxed);
  stats.promotions = promotions_;
  stats.demotions = demotions_;
  stats.approx_resident_bytes = ApproxResidentBytes();
  return stats;
}

std::uint64_t TieredTable::ApproxResidentBytes() const {
  const TableSchema& schema = hot_->schema();
  std::uint64_t bytes = 0;
  std::size_t pk = schema.primary_key_index();
  hot_->ForEach([&](const Row& row) {
    bytes += ApproxRowBytes(row);
    bytes += kHashNodeBytes + ApproxValueBytes(row[pk]);  // primary_
    for (std::size_t col : schema.secondary_indexes()) {
      bytes += kHashNodeBytes + ApproxValueBytes(row[col]);
    }
    for (std::size_t col : schema.ordered_indexes()) {
      bytes += kTreeNodeBytes + ApproxValueBytes(row[col]);
    }
  });
  if (cold_ == nullptr) return bytes;
  // Tier bookkeeping: residency metas + offset view.
  bytes += tier_.size() *
           (2 * kHashNodeBytes + sizeof(HotTier::Meta) + 24);
  // Cold in-memory index: sparse primary, append order, secondary offset
  // lists and ordered tree — the per-row footprint that replaces a fully
  // materialized row.
  ColdStore::IndexFootprint footprint = cold_->FootprintOf(name_);
  bytes += footprint.primary_entries * kHashNodeBytes;
  bytes += footprint.overflow_entries * (kHashNodeBytes + 24);
  bytes += footprint.order_entries * 8;
  for (const auto& index : cold_sec_) {
    bytes += index.size() * kHashNodeBytes;
  }
  bytes += cold_sec_entries_ * 8;
  for (const auto& index : cold_ord_) {
    bytes += index.size() * (kTreeNodeBytes + sizeof(Value));
  }
  return bytes;
}

}  // namespace pisrep::storage
