#ifndef PISREP_STORAGE_DATABASE_H_
#define PISREP_STORAGE_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "storage/wal.h"
#include "util/status.h"

namespace pisrep::storage {

/// A collection of named tables with optional write-ahead-log durability.
///
/// The reputation server (§3.2) keeps "registered user information, ratings
/// and comments" in a database; this embedded engine is that substrate. With
/// a WAL path, every mutation is journaled and Open() recovers the full
/// state by replay; with an empty path the database is purely in-memory
/// (used by most simulations for speed).
class Database {
 public:
  struct OpenOptions {
    /// When true, a corrupted WAL does not fail Open: replay stops at the
    /// first bad frame, the file is truncated to the intact prefix (so
    /// subsequent appends extend good data, not garbage), and
    /// recovered_with_loss() reports the amputation. Every frame before
    /// the corruption is applied — a crash-damaged server restarts with
    /// everything it had durably logged up to that point.
    bool salvage_corruption = false;
  };

  /// Opens a database. `wal_path` empty → in-memory only. When the file
  /// exists, its log is replayed before the call returns.
  static util::Result<std::unique_ptr<Database>> Open(
      const std::string& wal_path);
  static util::Result<std::unique_ptr<Database>> Open(
      const std::string& wal_path, const OpenOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; fails with kAlreadyExists on a name collision.
  util::Status CreateTable(const TableSchema& schema);

  bool HasTable(std::string_view name) const;

  /// Pointer remains valid for the database's lifetime.
  util::Result<Table*> GetTable(std::string_view name);

  std::vector<std::string> TableNames() const;

  /// Rewrites the WAL as a compact snapshot (schema + inserts) of current
  /// state. No-op for in-memory databases.
  util::Status Compact();

  /// Enables automatic compaction: whenever the number of frames appended
  /// since the last snapshot exceeds max(min_frames, factor * live rows),
  /// the log is rewritten. Pass factor 0 to disable. Typical: factor 10 —
  /// the log never exceeds ~10x the live data in churn-heavy workloads
  /// (e.g. daily score upserts).
  void SetAutoCompact(double factor, std::size_t min_frames = 1024);

  /// Frames appended since the last compaction (or open).
  std::size_t FramesSinceCompaction() const { return frames_since_compact_; }
  std::size_t compactions() const { return compactions_; }

  /// Total rows across all tables (for stats and tests).
  std::size_t TotalRows() const;

  /// True when salvage mode dropped a corrupted WAL tail during Open.
  bool recovered_with_loss() const { return recovered_with_loss_; }

  /// Observes every mutation frame (insert/upsert/delete) in WAL wire
  /// format, including on in-memory databases that write no log file.
  /// This is the replication export hook: a cluster primary ships these
  /// frames to its backup. Create-table frames are not exported — replicas
  /// bootstrap their schemas from ExportSnapshotFrames. One listener;
  /// setting replaces, an empty function clears.
  using FrameListener = std::function<void(const std::string& frame)>;
  void SetFrameListener(FrameListener listener);

  /// Applies one WAL frame produced by another database (the replication
  /// import hook). The frame is journaled to this database's own WAL when
  /// one is open, but is NOT re-announced to the frame listener — chains
  /// re-export explicitly after promotion, which keeps a primary⇄backup
  /// pair loop-free by construction.
  util::Status ApplyReplicatedFrame(const std::string& frame);

  /// Emits the database's full state as WAL frames (schemas first, then
  /// every row as an insert), in deterministic table-name order. Feeding
  /// the frames to an empty database's ApplyReplicatedFrame reproduces the
  /// state — the replica bootstrap / catch-up-resync path. Stops at the
  /// first emit error and returns it.
  util::Status ExportSnapshotFrames(
      const std::function<util::Status(const std::string&)>& emit);

 private:
  explicit Database(std::string wal_path);

  util::Status Replay(const OpenOptions& options);
  /// Applies one decoded WAL frame to the in-memory tables.
  util::Status ApplyFrame(const std::string& frame);
  /// Truncates the WAL to `prefix_len` bytes after hitting `cause`.
  util::Status SalvageTail(std::size_t prefix_len, const util::Status& cause);
  util::Status LogCreateTable(const TableSchema& schema);
  void LogMutation(const std::string& table_name, MutationOp op,
                   const Row& row, const Value& key);
  void AttachListener(const std::string& name, Table* table);

  void MaybeAutoCompact();

  std::string wal_path_;
  WalWriter wal_;
  FrameListener frame_listener_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  double auto_compact_factor_ = 0.0;
  std::size_t auto_compact_min_frames_ = 1024;
  std::size_t frames_since_compact_ = 0;
  std::size_t compactions_ = 0;
  bool compacting_ = false;
  bool recovered_with_loss_ = false;
};

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_DATABASE_H_
