#ifndef PISREP_STORAGE_DATABASE_H_
#define PISREP_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/cold_store.h"
#include "storage/table.h"
#include "storage/tiered_table.h"
#include "storage/wal.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::storage {

/// Aggregated tier counters across every tiered table (the input to the
/// server's pisrep_storage_* metric export).
struct DatabaseTierStats {
  std::size_t hot_rows = 0;
  std::size_t cold_rows = 0;
  std::size_t pinned_rows = 0;
  std::uint64_t hits = 0;
  std::uint64_t faults = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t cold_file_bytes = 0;
  std::uint64_t cold_dead_bytes = 0;
  std::uint64_t cold_reads = 0;
  std::uint64_t cold_appends = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_reclaimed_bytes = 0;
};

/// A collection of named tables with optional write-ahead-log durability.
///
/// The reputation server (§3.2) keeps "registered user information, ratings
/// and comments" in a database; this embedded engine is that substrate. With
/// a WAL path, every mutation is journaled and Open() recovers the full
/// state by replay; with an empty path the database is purely in-memory
/// (used by most simulations for speed).
///
/// Tables named in OpenOptions::tier are *tiered* (DESIGN.md §15): their
/// rows live durably in a ColdStore block file, an LRU subset stays
/// resident, and the TieredTable facade faults the rest in on demand. For
/// tiered tables the cold store replaces the WAL as the row journal — the
/// WAL carries only their schemas — so the log stays small at 1M+ rows.
class Database {
 public:
  struct TierConfig {
    /// Cold block-file path; empty disables tiering entirely.
    std::string path;
    /// GC thresholds; salvage_corruption is mirrored from OpenOptions.
    ColdStoreOptions cold;
    /// Residency policy per tiered table name. Tables not listed here are
    /// fully resident exactly as before.
    std::map<std::string, TierPolicy> tables;
  };

  struct OpenOptions {
    /// When true, a corrupted WAL does not fail Open: replay stops at the
    /// first bad frame, the file is truncated to the intact prefix (so
    /// subsequent appends extend good data, not garbage), and
    /// recovered_with_loss() reports the amputation. Every frame before
    /// the corruption is applied — a crash-damaged server restarts with
    /// everything it had durably logged up to that point. Applies to the
    /// cold block file too.
    bool salvage_corruption = false;
    /// Hot/cold tier configuration; requires a non-empty wal_path (the
    /// WAL still carries schemas and untiered tables).
    TierConfig tier;
  };

  /// Opens a database. `wal_path` empty → in-memory only. When the file
  /// exists, its log is replayed before the call returns.
  static util::Result<std::unique_ptr<Database>> Open(
      const std::string& wal_path);
  static util::Result<std::unique_ptr<Database>> Open(
      const std::string& wal_path, const OpenOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; fails with kAlreadyExists on a name collision.
  util::Status CreateTable(const TableSchema& schema);

  bool HasTable(std::string_view name) const;

  /// Pointer remains valid for the database's lifetime. For a tiered table
  /// this is the *resident subset only* — reads must go through
  /// GetTiered so cold rows are faulted in.
  util::Result<Table*> GetTable(std::string_view name);

  /// The tier-aware facade for any table (pass-through when untiered).
  /// Pointer remains valid for the database's lifetime.
  util::Result<TieredTable*> GetTiered(std::string_view name);

  std::vector<std::string> TableNames() const;

  /// Visits every live row of `name` across both tiers — the uniform
  /// iteration the anti-entropy digests and shard migration use.
  util::Status ForEachRow(std::string_view name,
                          const std::function<void(const Row&)>& visit);

  /// Rewrites the WAL as a compact snapshot (schema + inserts) of current
  /// state. No-op for in-memory databases. Tiered tables contribute only
  /// their schema frame: their rows already live in the cold store, which
  /// shares the same frame format.
  util::Status Compact();

  /// Enables automatic compaction: whenever the number of frames appended
  /// since the last snapshot exceeds max(min_frames, factor * live rows),
  /// the log is rewritten. Pass factor 0 to disable. Typical: factor 10 —
  /// the log never exceeds ~10x the live data in churn-heavy workloads
  /// (e.g. daily score upserts).
  void SetAutoCompact(double factor, std::size_t min_frames = 1024);

  /// Frames appended since the last compaction (or open).
  std::size_t FramesSinceCompaction() const { return frames_since_compact_; }
  std::size_t compactions() const { return compactions_; }

  /// Total live rows across all tables and tiers (for stats and tests).
  std::size_t TotalRows() const;

  /// True when salvage mode dropped a corrupted WAL or cold-store tail
  /// during Open.
  bool recovered_with_loss() const { return recovered_with_loss_; }

  // -- Tier control ---------------------------------------------------------

  bool tier_enabled() const { return cold_ != nullptr; }
  ColdStore* cold_store() { return cold_.get(); }

  /// The sim-clock eviction schedule: promotes queued read faults, demotes
  /// cold-eligible rows, and runs cold-store GC past its dead-bytes
  /// threshold (rebuilding cached offsets afterwards). The server calls
  /// this periodically on its event loop.
  util::Status TierTick(util::TimePoint now);

  DatabaseTierStats TierStats() const;

  // -- Replication ----------------------------------------------------------

  /// Observes every mutation frame (insert/upsert/delete) in WAL wire
  /// format, including on in-memory databases that write no log file.
  /// This is the replication export hook: a cluster primary ships these
  /// frames to its backup. Create-table frames are not exported — replicas
  /// bootstrap their schemas from ExportSnapshotFrames. One listener;
  /// setting replaces, an empty function clears.
  using FrameListener = std::function<void(const std::string& frame)>;
  void SetFrameListener(FrameListener listener);

  /// Applies one WAL frame produced by another database (the replication
  /// import hook). The frame is journaled to this database's own WAL when
  /// one is open — except rows of tiered tables, which land in the cold
  /// store instead (same bytes, different file) — but is NOT re-announced
  /// to the frame listener; chains re-export explicitly after promotion,
  /// which keeps a primary⇄backup pair loop-free by construction.
  util::Status ApplyReplicatedFrame(const std::string& frame);

  /// Emits the database's full state as WAL frames (schemas first, then
  /// every row as an insert), in deterministic table-name order. Feeding
  /// the frames to an empty database's ApplyReplicatedFrame reproduces the
  /// state — the replica bootstrap / catch-up-resync path. Tiered tables
  /// stream their cold blocks directly (the payloads are already in frame
  /// format), so a resync never materializes them as rows. Stops at the
  /// first emit error and returns it.
  util::Status ExportSnapshotFrames(
      const std::function<util::Status(const std::string&)>& emit);

 private:
  explicit Database(std::string wal_path);

  util::Status Replay(const OpenOptions& options);
  /// Applies one decoded WAL frame to the in-memory tables or, for tiered
  /// tables, the cold store. `replay_relaxed` applies inserts with upsert
  /// semantics (replaying a pre-tiering WAL over already-migrated cold
  /// rows must be idempotent); `tiered_row` reports whether the frame hit
  /// a tiered table (its caller then skips the WAL journal).
  util::Status ApplyFrame(const std::string& frame, bool replay_relaxed,
                          bool* tiered_row);
  /// Truncates the WAL to `prefix_len` bytes after hitting `cause`.
  util::Status SalvageTail(std::size_t prefix_len, const util::Status& cause);
  util::Status LogCreateTable(const TableSchema& schema);
  void LogMutation(const std::string& table_name, bool tiered, MutationOp op,
                   const Row& row, const Value& key);
  /// Creates the facade for a new table and wires the mutation listener.
  util::Status InstallTable(std::unique_ptr<Table> table);

  void MaybeAutoCompact();
  /// Live rows journaled in the WAL (excludes tiered tables) — the
  /// denominator of the auto-compaction ratio.
  std::size_t WalRows() const;

  std::string wal_path_;
  WalWriter wal_;
  FrameListener frame_listener_;
  TierConfig tier_config_;
  std::unique_ptr<ColdStore> cold_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<TieredTable>> facades_;
  double auto_compact_factor_ = 0.0;
  std::size_t auto_compact_min_frames_ = 1024;
  std::size_t frames_since_compact_ = 0;
  std::size_t compactions_ = 0;
  bool compacting_ = false;
  bool recovered_with_loss_ = false;
  /// Replay found row frames for tiered tables in the WAL (a pre-tiering
  /// log being migrated); Open compacts immediately so the overlap between
  /// the two journals lasts at most one recovery.
  bool replayed_tiered_rows_ = false;
};

}  // namespace pisrep::storage

#endif  // PISREP_STORAGE_DATABASE_H_
