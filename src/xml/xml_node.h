#ifndef PISREP_XML_XML_NODE_H_
#define PISREP_XML_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pisrep::xml {

/// An XML element: name, ordered attributes, child elements, and text
/// content. The paper (§3.2) uses XML as the protocol between client and
/// server; this tree is the in-memory form on both ends.
///
/// The model is deliberately simple: mixed content is collapsed, i.e. all
/// character data directly inside an element is concatenated into `text()`.
/// That is sufficient for a record-structured protocol.
class XmlNode {
 public:
  XmlNode() = default;
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_.append(text); }

  /// Attributes, in document order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  /// Sets (or overwrites) an attribute.
  void SetAttribute(std::string_view key, std::string_view value);
  /// Returns the attribute value, or failure when absent.
  util::Result<std::string> Attribute(std::string_view key) const;
  /// Returns the attribute value or `fallback`.
  std::string AttributeOr(std::string_view key,
                          std::string_view fallback) const;
  bool HasAttribute(std::string_view key) const;

  /// Child elements, in document order.
  const std::vector<XmlNode>& children() const { return children_; }
  std::vector<XmlNode>& children() { return children_; }

  /// Appends a child element and returns a reference to it.
  XmlNode& AddChild(std::string name);
  XmlNode& AddChild(XmlNode child);

  /// Appends `<name>text</name>` and returns the child.
  XmlNode& AddTextChild(std::string name, std::string_view text);
  XmlNode& AddIntChild(std::string name, std::int64_t value);
  XmlNode& AddDoubleChild(std::string name, double value);

  /// First child with the given name, or nullptr.
  const XmlNode* FindChild(std::string_view name) const;
  /// All children with the given name.
  std::vector<const XmlNode*> FindChildren(std::string_view name) const;

  /// Text of the first child with the given name; fails when absent.
  util::Result<std::string> ChildText(std::string_view name) const;
  /// Integer / double parses of ChildText.
  util::Result<std::int64_t> ChildInt(std::string_view name) const;
  util::Result<double> ChildDouble(std::string_view name) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<XmlNode> children_;
};

}  // namespace pisrep::xml

#endif  // PISREP_XML_XML_NODE_H_
