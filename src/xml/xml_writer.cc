#include "xml/xml_writer.h"

namespace pisrep::xml {

namespace {

void AppendEscaped(std::string_view text, bool attribute, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        if (attribute) {
          *out += "&quot;";
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void WriteNode(const XmlNode& node, const WriteOptions& options, int depth,
               std::string* out) {
  auto indent = [&](int d) {
    if (options.pretty) out->append(static_cast<std::size_t>(d) * 2, ' ');
  };
  auto newline = [&] {
    if (options.pretty) out->push_back('\n');
  };

  indent(depth);
  *out += "<";
  *out += node.name();
  for (const auto& [key, value] : node.attributes()) {
    *out += " ";
    *out += key;
    *out += "=\"";
    AppendEscaped(value, /*attribute=*/true, out);
    *out += "\"";
  }

  if (node.text().empty() && node.children().empty()) {
    *out += "/>";
    newline();
    return;
  }

  *out += ">";
  if (!node.text().empty()) {
    AppendEscaped(node.text(), /*attribute=*/false, out);
  }
  if (!node.children().empty()) {
    newline();
    for (const XmlNode& child : node.children()) {
      WriteNode(child, options, depth + 1, out);
    }
    indent(depth);
  }
  *out += "</";
  *out += node.name();
  *out += ">";
  newline();
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscaped(text, /*attribute=*/false, &out);
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscaped(text, /*attribute=*/true, &out);
  return out;
}

std::string WriteXml(const XmlNode& node, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += "\n";
  }
  WriteNode(node, options, 0, &out);
  return out;
}

}  // namespace pisrep::xml
