#ifndef PISREP_XML_XML_WRITER_H_
#define PISREP_XML_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/xml_node.h"

namespace pisrep::xml {

/// Serialization options.
struct WriteOptions {
  /// Pretty-print with two-space indentation and newlines; compact otherwise.
  bool pretty = false;
  /// Emit an `<?xml version="1.0"?>` declaration first.
  bool declaration = false;
};

/// Escapes character data for use inside element text.
std::string EscapeText(std::string_view text);

/// Escapes character data for use inside a double-quoted attribute value.
std::string EscapeAttribute(std::string_view text);

/// Serializes the tree rooted at `node`.
std::string WriteXml(const XmlNode& node, const WriteOptions& options = {});

}  // namespace pisrep::xml

#endif  // PISREP_XML_XML_WRITER_H_
