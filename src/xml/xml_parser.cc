#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "util/string_util.h"

namespace pisrep::xml {

namespace {

using util::Result;
using util::Status;

/// Nesting bound: the parser recurses per element, so unbounded depth from
/// a hostile peer would overflow the stack. The pisrep protocol nests 3
/// levels; 128 leaves ample headroom.
constexpr int kMaxDepth = 128;

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input), pos_(0) {}

  Result<XmlNode> ParseDocument() {
    SkipProlog();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    XmlNode root;
    PISREP_RETURN_IF_ERROR(ParseElement(&root, 0));
    SkipWhitespaceAndComments();
    if (!AtEnd()) return Error("trailing content after root element");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(std::size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }
  void Advance() { ++pos_; }
  bool Match(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        util::StrFormat("xml parse error at offset %zu: %s", pos_,
                        what.c_str()));
  }

  void SkipWhitespace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  bool SkipComment() {
    if (!Match("<!--")) return false;
    while (!AtEnd() && !Match("-->")) Advance();
    return true;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      SkipWhitespace();
      if (!SkipComment()) return;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Match("<?xml")) {
      while (!AtEnd() && !Match("?>")) Advance();
    }
    SkipWhitespaceAndComments();
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    std::size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes one entity starting at '&'; appends the decoded text.
  Status ParseEntity(std::string* out) {
    std::size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      return Error("unterminated entity");
    }
    std::string_view entity = input_.substr(pos_ + 1, semi - pos_ - 1);
    pos_ = semi + 1;
    if (entity == "lt") {
      *out += '<';
    } else if (entity == "gt") {
      *out += '>';
    } else if (entity == "amp") {
      *out += '&';
    } else if (entity == "quot") {
      *out += '"';
    } else if (entity == "apos") {
      *out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      long code;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code <= 0 || code > 0x10FFFF) {
        return Error("invalid character reference");
      }
      // Encode as UTF-8.
      unsigned long cp = static_cast<unsigned long>(code);
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return Error("unknown entity: &" + std::string(entity) + ";");
    }
    return Status::Ok();
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        PISREP_RETURN_IF_ERROR(ParseEntity(&value));
      } else if (Peek() == '<') {
        return Error("'<' in attribute value");
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Status ParseElement(XmlNode* node, int depth) {
    if (depth > kMaxDepth) return Error("element nesting too deep");
    if (!Match("<")) return Error("expected '<'");
    PISREP_ASSIGN_OR_RETURN(std::string name, ParseName());
    node->set_name(std::move(name));

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      PISREP_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (!Match("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      PISREP_ASSIGN_OR_RETURN(std::string value, ParseAttributeValue());
      if (node->HasAttribute(key)) {
        return Error("duplicate attribute: " + key);
      }
      node->SetAttribute(key, value);
    }

    if (Match("/>")) return Status::Ok();
    if (!Match(">")) return Error("expected '>'");

    // Content.
    for (;;) {
      if (AtEnd()) return Error("unterminated element: " + node->name());
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          pos_ += 2;
          PISREP_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          SkipWhitespace();
          if (!Match(">")) return Error("malformed end tag");
          if (close_name != node->name()) {
            return Error("mismatched end tag </" + close_name +
                         ">, expected </" + node->name() + ">");
          }
          // Whitespace-only text around child elements is formatting, not
          // content; dropping it lets pretty-printed documents round-trip.
          if (!node->children().empty() &&
              util::Trim(node->text()).empty()) {
            node->set_text("");
          }
          return Status::Ok();
        }
        if (Match("<![CDATA[")) {
          std::size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          node->append_text(input_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (SkipComment()) continue;
        if (PeekAt(1) == '!' || PeekAt(1) == '?') {
          return Error("unsupported markup in content");
        }
        XmlNode& child = node->AddChild("");
        PISREP_RETURN_IF_ERROR(ParseElement(&child, depth + 1));
        continue;
      }
      if (Peek() == '&') {
        std::string decoded;
        PISREP_RETURN_IF_ERROR(ParseEntity(&decoded));
        node->append_text(decoded);
        continue;
      }
      node->append_text(input_.substr(pos_, 1));
      Advance();
    }
  }

  std::string_view input_;
  std::size_t pos_;
};

}  // namespace

util::Result<XmlNode> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

}  // namespace pisrep::xml
