#include "xml/xml_node.h"

#include "util/string_util.h"

namespace pisrep::xml {

void XmlNode::SetAttribute(std::string_view key, std::string_view value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  attributes_.emplace_back(std::string(key), std::string(value));
}

util::Result<std::string> XmlNode::Attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return util::Status::NotFound("attribute not found: " + std::string(key));
}

std::string XmlNode::AttributeOr(std::string_view key,
                                 std::string_view fallback) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

bool XmlNode::HasAttribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return true;
  }
  return false;
}

XmlNode& XmlNode::AddChild(std::string name) {
  children_.emplace_back(std::move(name));
  return children_.back();
}

XmlNode& XmlNode::AddChild(XmlNode child) {
  children_.push_back(std::move(child));
  return children_.back();
}

XmlNode& XmlNode::AddTextChild(std::string name, std::string_view text) {
  XmlNode& child = AddChild(std::move(name));
  child.set_text(std::string(text));
  return child;
}

XmlNode& XmlNode::AddIntChild(std::string name, std::int64_t value) {
  return AddTextChild(std::move(name), std::to_string(value));
}

XmlNode& XmlNode::AddDoubleChild(std::string name, double value) {
  return AddTextChild(std::move(name), util::StrFormat("%.10g", value));
}

const XmlNode* XmlNode::FindChild(std::string_view name) const {
  for (const XmlNode& child : children_) {
    if (child.name() == name) return &child;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(
    std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& child : children_) {
    if (child.name() == name) out.push_back(&child);
  }
  return out;
}

util::Result<std::string> XmlNode::ChildText(std::string_view name) const {
  const XmlNode* child = FindChild(name);
  if (child == nullptr) {
    return util::Status::NotFound("child not found: " + std::string(name));
  }
  return child->text();
}

util::Result<std::int64_t> XmlNode::ChildInt(std::string_view name) const {
  PISREP_ASSIGN_OR_RETURN(std::string text, ChildText(name));
  return util::ParseInt64(text);
}

util::Result<double> XmlNode::ChildDouble(std::string_view name) const {
  PISREP_ASSIGN_OR_RETURN(std::string text, ChildText(name));
  return util::ParseDouble(text);
}

}  // namespace pisrep::xml
