#ifndef PISREP_XML_XML_PARSER_H_
#define PISREP_XML_XML_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xml/xml_node.h"

namespace pisrep::xml {

/// Parses an XML document into an element tree.
///
/// Supported subset (sufficient for the pisrep protocol, and round-trips
/// everything WriteXml produces): one root element, nested elements,
/// double- or single-quoted attributes, character data, XML declarations,
/// comments, CDATA sections, and the five predefined entities plus numeric
/// character references. DTDs and processing instructions other than the XML
/// declaration are rejected.
util::Result<XmlNode> ParseXml(std::string_view input);

}  // namespace pisrep::xml

#endif  // PISREP_XML_XML_PARSER_H_
