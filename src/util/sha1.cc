#include "util/sha1.h"

#include <cstring>

#include "util/hex.h"

namespace pisrep::util {

namespace {

inline std::uint32_t RotL(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

std::string Sha1Digest::ToHex() const {
  return HexEncode(bytes.data(), bytes.size());
}

Sha1::Sha1()
    : state_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u},
      total_bytes_(0),
      buffered_(0) {}

void Sha1::Update(std::string_view data) {
  Update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

void Sha1::Update(const std::uint8_t* data, std::size_t len) {
  total_bytes_ += len;
  while (len > 0) {
    std::size_t take = 64 - buffered_;
    if (take > len) take = len;
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
}

Sha1Digest Sha1::Finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the bit length big-endian.
  std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  Update(pad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Update() counts these bytes into total_bytes_, but the length has already
  // been captured, so the extra accounting is harmless.
  Update(len_bytes, 8);

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[i * 4 + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest.bytes[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha1Digest Sha1::Hash(std::string_view data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

void Sha1::ProcessBlock(const std::uint8_t block[64]) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t tmp = RotL(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

}  // namespace pisrep::util
