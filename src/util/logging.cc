#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pisrep::util {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_threshold.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

void DieCheckFailure(const char* file, int line, const char* expr,
                     const std::string& extra) {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s %s\n", file, line,
               expr, extra.c_str());
  std::abort();
}

}  // namespace internal_logging

}  // namespace pisrep::util
