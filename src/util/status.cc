#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace pisrep::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kUnauthenticated:
      return "unauthenticated";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
Status Status::Unauthenticated(std::string msg) {
  return Status(StatusCode::kUnauthenticated, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal_status {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "pisrep: value() called on failed Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace pisrep::util
