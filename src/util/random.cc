#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace pisrep::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  PISREP_CHECK(bound > 0) << "NextBelow requires a positive bound";
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  PISREP_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());  // full range
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double mean) {
  PISREP_CHECK(mean > 0.0) << "NextExponential requires a positive mean";
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::size_t Rng::NextZipf(std::size_t n, double s) {
  PISREP_CHECK(n > 0) << "NextZipf requires n > 0";
  PISREP_CHECK(s > 0.0) << "NextZipf requires s > 0";
  // Inverse-CDF over the (small) support. n is at most a few thousand in our
  // ecosystems, so a linear walk is fine and exact.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

std::string Rng::NextToken(std::size_t len) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

Rng Rng::Fork(std::uint64_t label) {
  // Mix the label with fresh draws so forked streams are decorrelated.
  std::uint64_t mixed = NextUint64() ^ (label * 0x9E3779B97f4A7C15ull);
  return Rng(mixed);
}

}  // namespace pisrep::util
