#ifndef PISREP_UTIL_SHA1_H_
#define PISREP_UTIL_SHA1_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pisrep::util {

/// A 160-bit SHA-1 digest. The paper (§3.3) identifies each software
/// executable by "a generated SHA-1 digest" over the file content; this is
/// that primitive, implemented from scratch (FIPS 180-1).
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  /// Lowercase hex rendering, 40 characters.
  std::string ToHex() const;

  friend bool operator==(const Sha1Digest&, const Sha1Digest&) = default;
  /// Lexicographic order, usable as a map key.
  friend auto operator<=>(const Sha1Digest&, const Sha1Digest&) = default;
};

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.Update(chunk1);
///   h.Update(chunk2);
///   Sha1Digest d = h.Finish();
class Sha1 {
 public:
  Sha1();

  /// Absorbs `data` into the hash state.
  void Update(std::string_view data);
  void Update(const std::uint8_t* data, std::size_t len);

  /// Completes the hash and returns the digest. The hasher must not be
  /// updated afterwards; construct a fresh one instead.
  Sha1Digest Finish();

  /// One-shot convenience.
  static Sha1Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::array<std::uint32_t, 5> state_;
  std::uint64_t total_bytes_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_;
};

/// Hash support for unordered containers keyed by digest.
struct Sha1DigestHash {
  std::size_t operator()(const Sha1Digest& d) const {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      h = (h << 8) | d.bytes[i];
    }
    return h;
  }
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_SHA1_H_
