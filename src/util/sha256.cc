#include "util/sha256.h"

#include <cstring>

#include "util/hex.h"

// Hardware compression (SHA-NI) is worth ~10x on the audit-chain hot paths
// (one hash per accepted vote; a full re-hash per entry in tools/audit and
// the anti-entropy sweep). Compiled only where the toolchain can emit the
// instructions, selected at runtime via CPUID so the same binary still runs
// on older cores through the scalar fallback.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PISREP_SHA256_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace pisrep::util {

namespace {

inline std::uint32_t RotR(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

#ifdef PISREP_SHA256_X86

bool CpuHasShaNi() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 29)) != 0;
}

/// FIPS 180-4 compression via the SHA-NI extension: two rounds per
/// sha256rnds2, message schedule via sha256msg1/msg2. The state is kept in
/// the (ABEF, CDGH) register split the instructions expect and folded back
/// to the portable A..H word order on exit, so scalar and hardware paths
/// are interchangeable mid-stream.
__attribute__((target("sha,sse4.1")))
void ProcessBlocksShaNi(std::uint32_t* state, const std::uint8_t* data,
                        std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);           // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);     // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);      // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);  // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3
    __m128i msg0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg0, kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // PISREP_SHA256_X86

}  // namespace

std::string Sha256Digest::ToHex() const {
  return HexEncode(bytes.data(), bytes.size());
}

Sha256::Sha256()
    : state_{0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au, 0x510e527fu,
             0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u},
      total_bytes_(0),
      buffered_(0) {}

void Sha256::Update(std::string_view data) {
  Update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

void Sha256::Update(const std::uint8_t* data, std::size_t len) {
  total_bytes_ += len;
  if (buffered_ > 0) {
    std::size_t take = 64 - buffered_;
    if (take > len) take = len;
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      ProcessBlocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Whole blocks compress straight from the caller's buffer — no staging
  // copy, and the hardware path amortizes its state setup across all of
  // them in one call.
  if (std::size_t blocks = len / 64; blocks > 0) {
    ProcessBlocks(data, blocks);
    data += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), data, len);
    buffered_ = len;
  }
}

void Sha256::ProcessBlocks(const std::uint8_t* data, std::size_t blocks) {
#ifdef PISREP_SHA256_X86
  static const bool kHasShaNi = CpuHasShaNi();
  if (kHasShaNi) {
    ProcessBlocksShaNi(state_.data(), data, blocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < blocks; ++i) ProcessBlock(data + i * 64);
}

Sha256Digest Sha256::Finish() {
  std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  Update(pad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest.bytes[i * 4 + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest.bytes[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha256Digest Sha256::Hash(std::string_view data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

void Sha256::ProcessBlock(const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 = RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^
                       (w[i - 15] >> 3);
    std::uint32_t s1 = RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^
                       (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    std::uint32_t ch = (e & f) ^ ((~e) & g);
    std::uint32_t tmp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    std::uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t tmp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + tmp1;
    d = c;
    c = b;
    b = a;
    a = tmp1 + tmp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

}  // namespace pisrep::util
