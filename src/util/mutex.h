#ifndef PISREP_UTIL_MUTEX_H_
#define PISREP_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace pisrep::util {

/// Annotated mutex wrapper (DESIGN.md §13). Functionally a std::mutex, but
/// carries the CAPABILITY attribute so clang's -Wthread-safety can check
/// that every GUARDED_BY field is only touched with this lock held. All
/// shared mutable state in the repo synchronizes through util::Mutex +
/// util::MutexLock; bare std::mutex and manual lock()/unlock() calls are
/// flagged by the pisrep-lint `unannotated-guarded-field` and
/// `raw-lock-unlock` rules.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Prefer util::MutexLock; manual Lock/Unlock is for the rare site where
  /// RAII scoping cannot express the hold (and is lint-suppressed there).
  void Lock() ACQUIRE() {
    // The one audited raw-lock site: this *is* the RAII holder's backend.
    mu_.lock();  // pisrep-lint: allow(raw-lock-unlock)
  }
  void Unlock() RELEASE() {
    mu_.unlock();  // pisrep-lint: allow(raw-lock-unlock)
  }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII holder: acquires in the constructor, releases in the destructor.
/// SCOPED_CAPABILITY lets the analysis track the hold across the scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  // The RAII holder is the blessed caller of Lock/Unlock.
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();  // pisrep-lint: allow(raw-lock-unlock)
  }
  ~MutexLock() RELEASE() {
    mu_->Unlock();  // pisrep-lint: allow(raw-lock-unlock)
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to util::Mutex. Wait() takes the mutex the
/// caller already holds (REQUIRES), so guarded fields read in the wait
/// loop's condition stay visible to the analysis:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);   // ready_ GUARDED_BY(mu_)
///
/// Predicate-less by design: a predicate lambda would be analyzed as a
/// separate unannotated function and spuriously flagged, so the condition
/// lives in the caller's annotated scope instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  /// The caller must hold `mu` (it still does on return).
  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then hand it
    // back: release() stops the unique_lock from unlocking on scope exit.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_MUTEX_H_
