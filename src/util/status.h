#ifndef PISREP_UTIL_STATUS_H_
#define PISREP_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pisrep::util {

/// Canonical error codes used across all pisrep libraries. Modeled after the
/// status vocabulary common to database engines: a small closed set so that
/// callers can dispatch on failure class without string matching.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kResourceExhausted,
  kDataLoss,
  kUnavailable,
  kInternal,
};

/// Returns the canonical lower_snake name of a code ("not_found", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. pisrep does not throw exceptions
/// across public API boundaries; every fallible call returns a Status (or a
/// Result<T>, below) that the caller must inspect. The class-level
/// [[nodiscard]] makes the compiler reject call sites that silently drop a
/// Status; `pisrep-lint` (tools/lint) enforces the same invariant plus a
/// justifying comment on any deliberate `(void)` discard.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status PermissionDenied(std::string msg);
  static Status Unauthenticated(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status DataLoss(std::string msg);
  static Status Unavailable(std::string msg);
  static Status Internal(std::string msg);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

bool operator==(const Status& a, const Status& b);
std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type T or a failure Status. Accessing the value of a
/// failed Result is a programming error and aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>, mirroring absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when this result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal_status::DieBadResultAccess(status_);
}

/// Evaluates `expr` (a Status expression); on failure returns it from the
/// enclosing function.
#define PISREP_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::pisrep::util::Status _pisrep_status = (expr);    \
    if (!_pisrep_status.ok()) return _pisrep_status;   \
  } while (0)

/// Evaluates `rexpr` (a Result<T> expression); on failure returns its status,
/// otherwise moves the value into `lhs`.
#define PISREP_ASSIGN_OR_RETURN(lhs, rexpr)         \
  PISREP_ASSIGN_OR_RETURN_IMPL_(                    \
      PISREP_STATUS_CONCAT_(_pisrep_result, __LINE__), lhs, rexpr)

#define PISREP_STATUS_CONCAT_INNER_(a, b) a##b
#define PISREP_STATUS_CONCAT_(a, b) PISREP_STATUS_CONCAT_INNER_(a, b)
#define PISREP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace pisrep::util

#endif  // PISREP_UTIL_STATUS_H_
