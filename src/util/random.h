#ifndef PISREP_UTIL_RANDOM_H_
#define PISREP_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pisrep::util {

/// Deterministic pseudo-random generator (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in pisrep — simulated users, software
/// ecosystems, network jitter, attacks — draws from an explicitly seeded Rng
/// so that simulations and tests are exactly reproducible.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  /// Standard normal variate (Box–Muller).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Exponentially distributed variate with the given mean (> 0).
  double NextExponential(double mean);

  /// Zipf-distributed rank in [0, n) with exponent `s` (> 0). Rank 0 is the
  /// most popular. Used for software popularity in the ecosystem generator.
  std::size_t NextZipf(std::size_t n, double s);

  /// Random lowercase alphanumeric string of length `len`.
  std::string NextToken(std::size_t len);

  /// Picks a uniformly random index into a non-empty container size.
  std::size_t NextIndex(std::size_t size) {
    return static_cast<std::size_t>(NextBelow(size));
  }

  /// Forks an independent deterministic child stream; children with distinct
  /// labels are decorrelated from the parent and from each other.
  Rng Fork(std::uint64_t label);

 private:
  std::uint64_t s_[4];
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_RANDOM_H_
