#ifndef PISREP_UTIL_ATOMIC_SHARED_PTR_H_
#define PISREP_UTIL_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <utility>

namespace pisrep::util {

/// Atomic publication cell for copy-on-write / RCU shared state: writers
/// Store() a freshly built immutable object, readers Load() a shared_ptr
/// copy that pins their version for the duration of the read.
///
/// This exists instead of std::atomic<std::shared_ptr<T>> because
/// libstdc++'s _Sp_atomic (GCC 12) releases its embedded spin bit with a
/// *relaxed* fetch_sub on the load path, so a reader's plain read of the
/// stored pointer is not happens-before-ordered against a later writer's
/// plain write — formally a data race, and ThreadSanitizer reports it as
/// one under the tsan-stress gate. The cell below is the same
/// spin-bit-over-a-shared_ptr design with the orders done right: both
/// sides take the bit with an acquire exchange and drop it with a release
/// store, so every critical section synchronizes with every later one.
///
/// Costs match std::atomic<std::shared_ptr> on this toolchain (that
/// implementation spins too — it was never lock-free): readers pay one
/// exchange, one control-block increment, and one release store; the
/// critical sections are a pointer copy / pointer swap, a few
/// nanoseconds, so contention is negligible next to any real read.
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// The most recently stored value (null until the first Store).
  std::shared_ptr<T> Load() const {
    // This class IS a lock primitive's implementation (like util::Mutex,
    // the rule's other audited exception) — there is no RAII holder
    // below it to use.
    Lock();    // pisrep-lint: allow(raw-lock-unlock)
    std::shared_ptr<T> copy = ptr_;
    Unlock();  // pisrep-lint: allow(raw-lock-unlock)
    return copy;
  }

  /// Publishes `next`; the previous value's reference is dropped outside
  /// the critical section so a last-reference destruction never runs
  /// while the bit is held.
  void Store(std::shared_ptr<T> next) {
    Lock();    // pisrep-lint: allow(raw-lock-unlock)
    ptr_.swap(next);
    Unlock();  // pisrep-lint: allow(raw-lock-unlock)
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Spin: holders only copy or swap a pointer.
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  /// Guarded by locked_ (spin bit, not a util::Mutex — the thread-safety
  /// analysis cannot see it, so keep every access inside Lock()/Unlock()).
  std::shared_ptr<T> ptr_;
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_ATOMIC_SHARED_PTR_H_
