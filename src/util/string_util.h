#ifndef PISREP_UTIL_STRING_UTIL_H_
#define PISREP_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pisrep::util {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view input);

/// True when `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a base-10 signed integer; the whole input must be consumed.
Result<std::int64_t> ParseInt64(std::string_view s);

/// Parses a floating-point number; the whole input must be consumed.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the elements with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace pisrep::util

#endif  // PISREP_UTIL_STRING_UTIL_H_
