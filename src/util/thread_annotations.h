#ifndef PISREP_UTIL_THREAD_ANNOTATIONS_H_
#define PISREP_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety ("capability") annotations, DESIGN.md §13.
///
/// These macros map onto Clang's `-Wthread-safety` attribute set so lock
/// discipline is checked at compile time: which fields a mutex guards
/// (GUARDED_BY), which locks a function needs held (REQUIRES) or must not
/// hold (EXCLUDES), and which functions acquire/release them
/// (ACQUIRE/RELEASE). On GCC — which has no thread-safety analysis — every
/// macro expands to nothing, so annotated code builds identically on both
/// toolchains; CI runs the clang configuration (`-DENABLE_THREAD_SAFETY=ON`)
/// to keep the annotations honest, and the pisrep-lint
/// `unannotated-guarded-field` rule enforces their *presence* on every
/// compiler.
///
/// The vocabulary and spelling follow the Clang documentation's canonical
/// mutex.h header, so the idioms transfer 1:1 from upstream examples.

#if defined(__clang__)
#define PISREP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PISREP_THREAD_ANNOTATION(x)  // no-op: GCC has no -Wthread-safety
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) PISREP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (util::MutexLock).
#define SCOPED_CAPABILITY PISREP_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reading it requires the lock held (shared or exclusive), writing it
/// requires it held exclusively.
#define GUARDED_BY(x) PISREP_THREAD_ANNOTATION(guarded_by(x))

/// Same, but for the data a pointer member points *to* (the pointer itself
/// stays unguarded).
#define PT_GUARDED_BY(x) PISREP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that the caller must hold the given capabilities (exclusively)
/// before calling, and that the function does not release them.
#define REQUIRES(...) \
  PISREP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) form of REQUIRES.
#define REQUIRES_SHARED(...) \
  PISREP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capability and holds it on
/// return; the caller must not already hold it.
#define ACQUIRE(...) \
  PISREP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that the function releases a capability the caller holds.
#define RELEASE(...) \
  PISREP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares a function that acquires the capability only when it returns
/// the given boolean value (TryLock-style APIs).
#define TRY_ACQUIRE(...) \
  PISREP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capabilities — the
/// anti-deadlock annotation for functions that acquire them internally.
#define EXCLUDES(...) PISREP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Run-time assertion that the capability is held (for code reached only
/// with the lock held through paths the analysis cannot follow).
#define ASSERT_CAPABILITY(x) PISREP_THREAD_ANNOTATION(assert_capability(x))

/// Declares that a function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) PISREP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use carries a
/// comment explaining why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  PISREP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PISREP_UTIL_THREAD_ANNOTATIONS_H_
