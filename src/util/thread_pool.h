#ifndef PISREP_UTIL_THREAD_POOL_H_
#define PISREP_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pisrep::util {

/// A fixed-size pool of worker threads with a FIFO task queue.
///
/// The pool exists for one purpose: fanning out *pure compute* — work that
/// only reads shared state — while a single coordinating thread keeps all
/// writes to itself (the aggregation job's single-writer rule over
/// storage::Database). The event loop stays single-threaded; nothing in the
/// pool touches util::SimClock, so determinism of simulated time is
/// unaffected by how many workers run.
///
/// Shutdown is clean and drains: the destructor lets every already-queued
/// task run to completion before joining the workers, so `Submit` followed
/// by destruction never silently drops work.
class ThreadPool {
 public:
  /// Spawns `workers` threads. At least one worker is always created.
  explicit ThreadPool(std::size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  std::size_t size() const { return threads_.size(); }

  /// Enqueues `task` and returns a future that becomes ready when it has
  /// run. An exception thrown by the task is captured and rethrown from
  /// `future.get()` on the caller's thread. Submitting to a pool whose
  /// destructor has started is a programming error.
  std::future<void> Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Splits [0, n) into at most size() contiguous chunks and runs
  /// `body(begin, end)` for each, one chunk on the calling thread and the
  /// rest on workers. Blocks until every chunk finished. The first
  /// exception thrown by any chunk is rethrown here after all chunks have
  /// completed (no partial abandonment: the range is always fully
  /// attempted). n == 0 is a no-op; a single chunk runs inline on the
  /// caller without touching the queue.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t begin,
                                            std::size_t end)>& body);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Written once in the constructor, then only read — no lock needed.
  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_THREAD_POOL_H_
