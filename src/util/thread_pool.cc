#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/logging.h"

namespace pisrep::util {

ThreadPool::ThreadPool(std::size_t workers) {
  std::size_t count = std::max<std::size_t>(1, workers);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    cv_.NotifyAll();
  }
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain-then-exit: queued work submitted before shutdown still runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches whatever the task throws and parks it in the
    // shared state; the exception resurfaces at future.get().
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(&mu_);
    PISREP_CHECK(!stopping_) << "Submit on a ThreadPool being destroyed";
    queue_.push_back(std::move(packaged));
    // Notify while still holding mu_: with the old unlocked notify, a
    // last Submit racing pool destruction could touch cv_ after the
    // destructor had already drained, joined, and freed it. Under the
    // lock, the destructor (which must take mu_ to set stopping_) cannot
    // start tearing down until this notify has finished.
    cv_.NotifyOne();
  }
  return future;
}

void ThreadPool::ParallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  std::size_t shards = std::min(n, threads_.size());
  if (shards <= 1) {
    body(0, n);
    return;
  }
  std::size_t chunk = (n + shards - 1) / shards;
  std::vector<std::future<void>> pending;
  pending.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) {
    std::size_t begin = s * chunk;
    std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pending.push_back(
        Submit([&body, begin, end] { body(begin, end); }));
  }
  // The calling thread takes the first chunk instead of idling.
  std::exception_ptr first;
  try {
    body(0, std::min(n, chunk));
  } catch (...) {
    first = std::current_exception();
  }
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace pisrep::util
