#ifndef PISREP_UTIL_SHA256_H_
#define PISREP_UTIL_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pisrep::util {

/// A 256-bit SHA-256 digest. Used for password hashing and the peppered
/// e-mail hash (§2.2): credentials deserve a stronger primitive than the
/// SHA-1 used for software fingerprints.
struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  /// Lowercase hex rendering, 64 characters.
  std::string ToHex() const;

  friend bool operator==(const Sha256Digest&, const Sha256Digest&) = default;
  friend auto operator<=>(const Sha256Digest&, const Sha256Digest&) = default;
};

/// Incremental SHA-256 hasher (FIPS 180-4), implemented from scratch.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `data` into the hash state.
  void Update(std::string_view data);
  void Update(const std::uint8_t* data, std::size_t len);

  /// Completes the hash; the hasher must not be reused afterwards.
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Hash(std::string_view data);

 private:
  /// Absorbs `blocks` consecutive 64-byte blocks, dispatching to the
  /// hardware (SHA-NI) compression when the CPU has it.
  void ProcessBlocks(const std::uint8_t* data, std::size_t blocks);
  void ProcessBlock(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_;
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_SHA256_H_
