#ifndef PISREP_UTIL_LOGGING_H_
#define PISREP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pisrep::util {

/// Log severities, in increasing order of importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  /// Suppresses all logging when used as the threshold.
  kOff = 4,
};

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so that library code is quiet in tests and benchmarks.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// Returns true when a message at `level` would be emitted.
bool LogEnabled(LogLevel level);

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void DieCheckFailure(const char* file, int line,
                                  const char* expr, const std::string& extra);

/// CHECK helper that collects an optional streamed message.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() {
    DieCheckFailure(file_, line_, expr_, stream_.str());
  }
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Usage: PISREP_LOG(kInfo) << "message" << value;
#define PISREP_LOG(severity)                                               \
  if (!::pisrep::util::LogEnabled(::pisrep::util::LogLevel::severity)) {   \
  } else                                                                   \
    ::pisrep::util::internal_logging::LogMessage(                          \
        ::pisrep::util::LogLevel::severity, __FILE__, __LINE__)            \
        .stream()

/// Fatal invariant check; active in all build modes. Usage:
///   PISREP_CHECK(ptr != nullptr) << "context";
#define PISREP_CHECK(cond)                                                \
  if (cond) {                                                             \
  } else                                                                  \
    ::pisrep::util::internal_logging::CheckMessage(__FILE__, __LINE__,    \
                                                   #cond)                 \
        .stream()

}  // namespace pisrep::util

#endif  // PISREP_UTIL_LOGGING_H_
