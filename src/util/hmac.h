#ifndef PISREP_UTIL_HMAC_H_
#define PISREP_UTIL_HMAC_H_

#include <string>
#include <string_view>

#include "util/sha256.h"

namespace pisrep::util {

/// HMAC-SHA256 (RFC 2104). The server uses this for the peppered e-mail hash
/// described in §2.2: hashing the e-mail address concatenated with a secret
/// string so that brute-force recovery is infeasible without the secret. The
/// toy code-signing scheme in crypto/ also builds on it.
Sha256Digest HmacSha256(std::string_view key, std::string_view message);

/// Convenience: hex of HmacSha256.
std::string HmacSha256Hex(std::string_view key, std::string_view message);

}  // namespace pisrep::util

#endif  // PISREP_UTIL_HMAC_H_
