#include "util/hex.h"

namespace pisrep::util {

namespace {

constexpr char kHexChars[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexChars[data[i] >> 4]);
    out.push_back(kHexChars[data[i] & 0x0F]);
  }
  return out;
}

std::string HexEncode(std::string_view data) {
  return HexEncode(reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size());
}

Result<std::vector<std::uint8_t>> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace pisrep::util
