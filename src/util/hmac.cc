#include "util/hmac.h"

#include <array>
#include <cstdint>

namespace pisrep::util {

Sha256Digest HmacSha256(std::string_view key, std::string_view message) {
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> key_block{};

  if (key.size() > kBlockSize) {
    Sha256Digest key_digest = Sha256::Hash(key);
    for (std::size_t i = 0; i < key_digest.bytes.size(); ++i) {
      key_block[i] = key_digest.bytes[i];
    }
  } else {
    for (std::size_t i = 0; i < key.size(); ++i) {
      key_block[i] = static_cast<std::uint8_t>(key[i]);
    }
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad.data(), ipad.size());
  inner.Update(message);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad.data(), opad.size());
  outer.Update(inner_digest.bytes.data(), inner_digest.bytes.size());
  return outer.Finish();
}

std::string HmacSha256Hex(std::string_view key, std::string_view message) {
  return HmacSha256(key, message).ToHex();
}

}  // namespace pisrep::util
