#ifndef PISREP_UTIL_HEX_H_
#define PISREP_UTIL_HEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pisrep::util {

/// Encodes `len` bytes as lowercase hex.
std::string HexEncode(const std::uint8_t* data, std::size_t len);
std::string HexEncode(std::string_view data);

/// Decodes a hex string (case-insensitive). Fails on odd length or non-hex
/// characters.
Result<std::vector<std::uint8_t>> HexDecode(std::string_view hex);

}  // namespace pisrep::util

#endif  // PISREP_UTIL_HEX_H_
