#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pisrep::util {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<std::int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::InvalidArgument("integer out of range");
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in integer: " + buf);
  }
  return static_cast<std::int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::InvalidArgument("number out of range");
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in number: " + buf);
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace pisrep::util
