#ifndef PISREP_UTIL_CLOCK_H_
#define PISREP_UTIL_CLOCK_H_

#include <cstdint>
#include <string>

namespace pisrep::util {

/// Simulated time, in whole milliseconds since the simulation epoch.
///
/// All pisrep components — the weekly trust-factor caps, the 24-hour
/// aggregation job, the two-ratings-per-week prompt limit, network latency —
/// measure time through this type rather than the wall clock, so that
/// simulations are deterministic and fast.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

constexpr Duration kMillisecond = 1;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;
constexpr Duration kWeek = 7 * kDay;

/// Index of the calendar day containing `t` (day 0 starts at the epoch).
constexpr std::int64_t DayIndex(TimePoint t) {
  return t >= 0 ? t / kDay : (t - (kDay - 1)) / kDay;
}

/// Index of the calendar week containing `t` (week 0 starts at the epoch).
constexpr std::int64_t WeekIndex(TimePoint t) {
  return t >= 0 ? t / kWeek : (t - (kWeek - 1)) / kWeek;
}

/// Renders a time point as "d<day>+hh:mm:ss" for logs and reports.
std::string FormatTime(TimePoint t);

/// A monotonic *wall-clock* reading in microseconds, for instrumentation
/// only (run-duration stats, benchmark timing). Simulation logic must keep
/// measuring time through SimClock; this lives in util precisely because
/// the `wall-clock` lint rule fences real time into this one layer.
std::int64_t MonotonicMicros();

/// A settable virtual clock. The simulation event loop owns one and advances
/// it; components hold a pointer and only ever read it.
class SimClock {
 public:
  SimClock() : now_(0) {}
  explicit SimClock(TimePoint start) : now_(start) {}

  TimePoint Now() const { return now_; }

  /// Moves the clock forward. Time never goes backwards; attempts to do so
  /// are programming errors.
  void AdvanceTo(TimePoint t);
  void Advance(Duration d) { AdvanceTo(now_ + d); }

 private:
  TimePoint now_;
};

}  // namespace pisrep::util

#endif  // PISREP_UTIL_CLOCK_H_
