#include "util/clock.h"

#include <chrono>
#include <cstdio>

#include "util/logging.h"

namespace pisrep::util {

std::int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatTime(TimePoint t) {
  std::int64_t day = DayIndex(t);
  std::int64_t rem = t - day * kDay;
  int hh = static_cast<int>(rem / kHour);
  int mm = static_cast<int>((rem % kHour) / kMinute);
  int ss = static_cast<int>((rem % kMinute) / kSecond);
  int ms = static_cast<int>(rem % kSecond);
  char buf[64];
  if (ms == 0) {
    std::snprintf(buf, sizeof(buf), "d%lld+%02d:%02d:%02d",
                  static_cast<long long>(day), hh, mm, ss);
  } else {
    std::snprintf(buf, sizeof(buf), "d%lld+%02d:%02d:%02d.%03d",
                  static_cast<long long>(day), hh, mm, ss, ms);
  }
  return buf;
}

void SimClock::AdvanceTo(TimePoint t) {
  PISREP_CHECK(t >= now_) << "clock moved backwards: " << now_ << " -> " << t;
  now_ = t;
}

}  // namespace pisrep::util
