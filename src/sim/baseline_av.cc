#include "sim/baseline_av.h"

#include "core/classification.h"

namespace pisrep::sim {

SignatureBaseline::SignatureBaseline(BaselineConfig config)
    : config_(config), rng_(config.seed) {}

void SignatureBaseline::ObserveSample(const SoftwareSpec& spec,
                                      util::TimePoint first_seen) {
  const core::SoftwareId& id = spec.image.Digest();
  if (entries_.contains(id)) return;

  Entry entry;
  if (core::IsLegitimate(spec.truth)) {
    entry.will_detect = false;
  } else if (core::IsMalware(spec.truth)) {
    entry.will_detect = rng_.NextBool(config_.malware_coverage);
  } else {
    // Grey zone. The legal filter (§1: classification "is legally
    // problematic ... could lead to law suits") bars listing software whose
    // EULA disclosed the behaviour — which is precisely the medium-consent
    // row of Table 1.
    bool would_list = rng_.NextBool(config_.spyware_coverage);
    if (would_list && config_.legal_constraint && spec.disclosure.disclosed) {
      ++legally_excluded_;
      would_list = false;
    }
    entry.will_detect = would_list;
  }
  // Analyst lag with some spread around the configured mean.
  util::Duration lag = config_.analysis_lag +
                       static_cast<util::Duration>(rng_.NextExponential(
                           static_cast<double>(config_.analysis_lag) / 2.0));
  entry.detect_at = first_seen + lag;
  entries_.emplace(id, entry);
}

bool SignatureBaseline::IsDetected(const core::SoftwareId& id,
                                   util::TimePoint now) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  return it->second.will_detect && now >= it->second.detect_at;
}

std::size_t SignatureBaseline::ListedCount(util::TimePoint now) const {
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.will_detect && now >= entry.detect_at) ++count;
  }
  return count;
}

}  // namespace pisrep::sim
