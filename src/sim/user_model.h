#ifndef PISREP_SIM_USER_MODEL_H_
#define PISREP_SIM_USER_MODEL_H_

#include <string>

#include "client/client_app.h"
#include "sim/software_ecosystem.h"
#include "util/random.h"

namespace pisrep::sim {

/// Skill archetypes from §2.1's discussion: experienced users whose votes
/// should carry weight, average users, "ignorant users voting and leaving
/// feedback on programs they know nothing or little about", and malicious
/// users who purposely abuse the system.
enum class UserProfile { kExpert = 0, kAverage = 1, kNovice = 2, kMalicious = 3 };

const char* UserProfileName(UserProfile profile);

/// Behavioural parameters of one simulated user.
struct UserBehavior {
  UserProfile profile = UserProfile::kAverage;
  /// Rating = true_quality + bias + N(0, noise), clamped to [1, 10].
  double rating_noise = 1.0;
  double rating_bias = 0.0;
  /// Probability a submitted comment is genuinely helpful (drives the
  /// remarks other users give its author, and thus trust factors).
  double comment_quality = 0.7;
  /// Probability the user reports the behaviours they actually observed.
  double reports_behaviors = 0.6;
  /// Probability of making the ground-truth-correct allow/deny choice when
  /// reputation information is available.
  double informed_skill = 0.85;
  /// Probability of (correctly) distrusting unknown software with no
  /// reputation information; low for novices — they click through.
  double uninformed_caution = 0.3;
  /// Probability the user answers a rating prompt instead of dismissing it.
  double prompt_patience = 0.7;
  /// Probability the user meta-moderates a comment shown in a prompt
  /// (§2.1's first mitigation relies on users "rating the feedback of other
  /// users").
  double remark_propensity = 0.15;
};

/// Canonical parameters per archetype.
UserBehavior MakeUserBehavior(UserProfile profile);

/// Decision + rating logic for one simulated user. Stateless apart from the
/// RNG reference: the same model drives both direct (native-API) and
/// RPC-client simulations.
class SimUserModel {
 public:
  SimUserModel(UserBehavior behavior, util::Rng rng)
      : behavior_(behavior), rng_(std::move(rng)) {}

  const UserBehavior& behavior() const { return behavior_; }

  /// The score this user submits for `spec` (§1: grading between 1 and 10).
  /// Malicious users invert the scale (praise PIS, trash legitimate).
  int RateSoftware(const SoftwareSpec& spec);

  /// Whether the user, shown `info` for a program whose ground truth is
  /// `spec`, chooses to allow it. This is the paper's central bet: with
  /// reputation information, medium-consent software gets an *informed*
  /// decision (Table 2).
  bool DecideAllow(const client::PromptInfo& info, const SoftwareSpec& spec);

  /// Whether the user answers a rating prompt.
  bool AnswersRatingPrompt() { return rng_.NextBool(behavior_.prompt_patience); }

  /// Behaviours the user includes in their report (observed, possibly
  /// under-reported).
  core::BehaviorSet ReportBehaviors(const SoftwareSpec& spec);

  /// Whether this user's comment text is helpful (decides the remarks it
  /// attracts).
  bool WritesHelpfulComment() {
    return rng_.NextBool(behavior_.comment_quality);
  }

  util::Rng& rng() { return rng_; }

 private:
  UserBehavior behavior_;
  util::Rng rng_;
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_USER_MODEL_H_
