#ifndef PISREP_SIM_BASELINE_AV_H_
#define PISREP_SIM_BASELINE_AV_H_

#include <cstdint>
#include <unordered_map>

#include "core/types.h"
#include "sim/software_ecosystem.h"
#include "util/clock.h"
#include "util/random.h"

namespace pisrep::sim {

/// Configuration of the conventional anti-virus / anti-spyware baseline
/// that §4.3 compares against.
struct BaselineConfig {
  /// Time between a sample first circulating and its signature shipping
  /// ("the organization behind the countermeasure must investigate every
  /// software before being able to offer a protection against it").
  util::Duration analysis_lag = 7 * util::kDay;
  /// Probability a malware sample is ever analyzed and listed.
  double malware_coverage = 0.95;
  /// Probability a grey-zone (spyware) sample would be listed, *before* the
  /// legal filter is applied.
  double spyware_coverage = 0.6;
  /// §1/§4.3: vendors sue over classifications the user "consented" to in
  /// the EULA; when true, the baseline must skip disclosed (medium/high
  /// consent) software entirely — "deliver an incomplete product".
  bool legal_constraint = true;
  std::uint64_t seed = 0xa7;
};

/// A signature-database scanner with analyst lag and the legal no-go zone.
/// Verdicts are binary (§4.3: "a black and white world where an executable
/// is branded as either a virus or not").
class SignatureBaseline {
 public:
  explicit SignatureBaseline(BaselineConfig config);

  /// Reports that `spec` was first seen in the wild at `first_seen`. The
  /// lab decides (deterministically per sample) whether and when a
  /// signature ships. Idempotent per software id.
  void ObserveSample(const SoftwareSpec& spec, util::TimePoint first_seen);

  /// True when a shipped signature flags this id at `now`.
  bool IsDetected(const core::SoftwareId& id, util::TimePoint now) const;

  /// How many samples are currently listed (signature shipped by `now`).
  std::size_t ListedCount(util::TimePoint now) const;

  /// How many observed samples can never be listed due to the legal
  /// constraint.
  std::size_t legally_excluded() const { return legally_excluded_; }

 private:
  struct Entry {
    bool will_detect = false;
    util::TimePoint detect_at = 0;
  };

  BaselineConfig config_;
  util::Rng rng_;
  std::unordered_map<core::SoftwareId, Entry, core::SoftwareIdHash> entries_;
  std::size_t legally_excluded_ = 0;
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_BASELINE_AV_H_
