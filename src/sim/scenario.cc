#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "server/bootstrap.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::sim {

namespace {
using util::StrFormat;

constexpr std::string_view kHelpfulPrefix = "helpful: ";
constexpr std::string_view kNoisePrefix = "noise: ";
}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      injector_(&loop_, config_.seed ^ 0xfa017),
      eco_(SoftwareEcosystem::Generate(config_.ecosystem)),
      baseline_(config_.baseline) {
  network_ = std::make_unique<net::SimNetwork>(&loop_, config_.network);
  network_->AttachFaultInjector(&injector_);
  // Scenario-level observability fans out to every component; the server
  // config carries the pointers so RestartServer re-wires automatically.
  if (config_.metrics != nullptr) {
    config_.server.metrics = config_.metrics;
    injector_.AttachMetrics(config_.metrics);
  }
  if (config_.tracer != nullptr) {
    config_.server.tracer = config_.tracer;
    config_.tracer->set_clock(&loop_.clock());
  }
  if (config_.num_shards > 1) {
    // Cluster mode: N shards behind a router at the same "server" address
    // the clients already use.
    PISREP_CHECK(config_.server_db_path.empty())
        << "cluster shards are in-memory; server_db_path is single-server";
    cluster::ClusterConfig cluster_config;
    cluster_config.num_shards = config_.num_shards;
    cluster_config.server = config_.server;
    cluster_config.replication = config_.replication;
    cluster_config.gossip = config_.cluster_gossip;
    cluster_config.anti_entropy = config_.cluster_anti_entropy;
    cluster_ = std::make_unique<cluster::ShardCluster>(network_.get(), &loop_,
                                                       cluster_config);
    util::Status cluster_status = cluster_->Start();
    PISREP_CHECK(cluster_status.ok()) << cluster_status.ToString();
    cluster::RouterConfig router_config;
    router_config.service_address = "server";
    router_ = std::make_unique<cluster::Router>(network_.get(), &loop_,
                                                router_config, config_.metrics,
                                                config_.tracer);
    util::Status router_status = router_->Start();
    PISREP_CHECK(router_status.ok()) << router_status.ToString();
    for (int i = 0; i < config_.num_shards; ++i) {
      router_->AddShard(cluster_->ShardName(i));
    }
  } else {
    // Salvage mode: a chaos run may crash the server mid-append; the
    // restarted server must come up on whatever prefix survived.
    storage::Database::OpenOptions db_options;
    db_options.salvage_corruption = true;
    db_ = storage::Database::Open(config_.server_db_path, db_options).value();
    server_ = std::make_unique<server::ReputationServer>(db_.get(), &loop_,
                                                         config_.server);
    util::Status rpc_status = server_->AttachRpc(network_.get(), "server");
    PISREP_CHECK(rpc_status.ok()) << rpc_status.ToString();
  }

  for (std::size_t i = 0; i < eco_.size(); ++i) {
    digest_index_.emplace(eco_.spec(i).image.Digest(), i);
  }
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    outcomes_[i].label = ProtectionKindName(static_cast<ProtectionKind>(i));
  }
}

ScenarioRunner::~ScenarioRunner() = default;

server::ReputationServer& ScenarioRunner::server() {
  PISREP_CHECK(server_ != nullptr)
      << "no single server in cluster mode; use cluster()";
  return *server_;
}

const SoftwareSpec* ScenarioRunner::FindSpec(
    const core::SoftwareId& id) const {
  auto it = digest_index_.find(id);
  return it == digest_index_.end() ? nullptr : &eco_.spec(it->second);
}

void ScenarioRunner::SetUpHosts() {
  int num_unprotected =
      static_cast<int>(std::round(config_.num_users * config_.frac_unprotected));
  int num_av = static_cast<int>(std::round(config_.num_users * config_.frac_av));

  for (int i = 0; i < config_.num_users; ++i) {
    ProtectionKind kind = ProtectionKind::kReputation;
    if (i < num_unprotected) {
      kind = ProtectionKind::kNone;
    } else if (i < num_unprotected + num_av) {
      kind = ProtectionKind::kSignatureAv;
    }

    // Skill profile by position within the population (deterministic mix).
    double u = rng_.NextDouble();
    UserProfile profile = UserProfile::kAverage;
    if (u < config_.frac_expert) {
      profile = UserProfile::kExpert;
    } else if (u < config_.frac_expert + config_.frac_novice) {
      profile = UserProfile::kNovice;
    } else if (u <
               config_.frac_expert + config_.frac_novice +
                   config_.frac_malicious) {
      profile = UserProfile::kMalicious;
    }

    // Installed mix: popularity-weighted, deduplicated.
    int installs = static_cast<int>(rng_.NextInt(config_.installs_min,
                                                 config_.installs_max));
    std::unordered_set<std::size_t> chosen;
    int guard = 0;
    while (static_cast<int>(chosen.size()) < installs &&
           guard++ < installs * 50) {
      std::size_t candidate = eco_.SamplePopular(rng_);
      if (SoftwareEcosystem::IsPis(eco_.spec(candidate).truth) &&
          rng_.NextBool(config_.install_pis_veto)) {
        continue;
      }
      chosen.insert(candidate);
    }
    std::vector<std::size_t> installed(chosen.begin(), chosen.end());
    std::sort(installed.begin(), installed.end());

    SimUserModel user(MakeUserBehavior(profile),
                      rng_.Fork(1000 + static_cast<std::uint64_t>(i)));
    auto host = std::make_unique<SimHost>(StrFormat("host-%03d", i), kind,
                                          std::move(user),
                                          std::move(installed));
    ++outcomes_[static_cast<std::size_t>(kind)].hosts;

    if (kind == ProtectionKind::kSignatureAv) {
      host->AttachBaseline(&baseline_);
    } else if (kind == ProtectionKind::kReputation) {
      WireClient(host.get(), i);
    }

    util::TimePoint join = 0;
    if (config_.late_join_fraction > 0.0 &&
        rng_.NextBool(config_.late_join_fraction)) {
      join = static_cast<util::TimePoint>(rng_.NextBelow(
          static_cast<std::uint64_t>(
              std::max<util::Duration>(config_.join_spread, 1))));
    }
    join_times_.push_back(join);
    hosts_.push_back(std::move(host));
  }
}

void ScenarioRunner::WireClient(SimHost* host, int index) {
  client::ClientApp::Config cfg;
  cfg.address = StrFormat("client-%03d", index);
  cfg.server_address = "server";
  cfg.username = StrFormat("user_%03d", index);
  cfg.password = StrFormat("pw-%03d!", index);
  cfg.email = StrFormat("user_%03d@example.com", index);
  cfg.policy = config_.policy;
  cfg.policy_rules = config_.policy_rules;
  cfg.prompts = config_.prompts;
  cfg.cache_ttl = config_.client_cache_ttl;
  cfg.metrics = config_.metrics;
  cfg.tracer = config_.tracer;

  auto client = std::make_unique<client::ClientApp>(network_.get(), &loop_,
                                                    std::move(cfg));
  util::Status started = client->Start();
  PISREP_CHECK(started.ok()) << started.ToString();

  // Certificates are public: every client knows every vendor's key. Trust
  // decisions are the local user's (§4.2).
  for (const VendorProfile& vendor : eco_.vendors()) {
    client->trust_store().AddCertificate(
        crypto::Certificate{vendor.name, vendor.keys.public_key, 0, false});
    if (config_.trust_legit_vendors && vendor.legitimate) {
      client->trust_store().TrustVendor(vendor.name);
    }
  }

  client::ClientApp* app = client.get();
  GroupOutcome* outcome =
      &outcomes_[static_cast<std::size_t>(ProtectionKind::kReputation)];

  app->SetPromptHandler([this, host, app, outcome](
                            const client::PromptInfo& info,
                            std::function<void(client::UserDecision)> done) {
    ++outcome->prompts;
    const SoftwareSpec* spec = FindSpec(info.meta.id);
    client::UserDecision decision;
    if (spec == nullptr) {
      // Unknown binary (e.g. polymorphic variant injected by an attack
      // driver): fall back to the uninformed path with no ground truth —
      // treat as a moderately risky unknown.
      decision.allow = host->user().rng().NextBool(0.5);
    } else {
      decision.allow = host->user().DecideAllow(info, *spec);
    }
    decision.remember = config_.remember_decisions;

    // Meta-moderation: the user may remark on the comments they were shown
    // (§2.1 first mitigation).
    for (const core::RatingRecord& comment : info.comments) {
      if (!host->user().rng().NextBool(
              host->user().behavior().remark_propensity)) {
        continue;
      }
      bool helpful = util::StartsWith(comment.comment, kHelpfulPrefix);
      app->SubmitRemark(comment.user, info.meta.id, helpful,
                        [](util::Status) {});
    }
    done(decision);
  });

  app->SetRatingHandler(
      [this, host](const client::PromptInfo& info,
                   std::function<void(std::optional<client::RatingSubmission>)>
                       done) {
        const SoftwareSpec* spec = FindSpec(info.meta.id);
        if (spec == nullptr || !host->user().AnswersRatingPrompt()) {
          done(std::nullopt);
          return;
        }
        client::RatingSubmission submission;
        submission.score = host->user().RateSoftware(*spec);
        bool helpful = host->user().WritesHelpfulComment();
        submission.comment =
            std::string(helpful ? kHelpfulPrefix : kNoisePrefix) +
            StrFormat("%s rated %d", host->name().c_str(), submission.score);
        submission.behaviors = host->user().ReportBehaviors(*spec);
        done(submission);
      });

  host->AttachClient(std::move(client));
}

void ScenarioRunner::SetUpAccounts() {
  // Register → fetch activation mail → activate → login, all through the
  // RPC path, staggered to avoid a thundering herd at t=0.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    SimHost* host = hosts_[i].get();
    if (host->protection() != ProtectionKind::kReputation) continue;
    client::ClientApp* app = host->client();
    loop_.ScheduleAfter(
        join_times_[i] +
            static_cast<util::Duration>(i) * 100 * util::kMillisecond,
        [this, app] { OnboardClient(app); });
  }
  loop_.RunUntil(loop_.Now() + util::kHour);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const auto& host = hosts_[i];
    // Late joiners onboard while the simulation runs; only day-zero users
    // must be logged in before executions start.
    if (host->protection() == ProtectionKind::kReputation &&
        join_times_[i] == 0) {
      PISREP_CHECK(host->client()->logged_in())
          << host->name() << " failed to log in";
    }
  }
}

void ScenarioRunner::OnboardClient(client::ClientApp* app) {
  app->Register([this, app](util::Status status) {
    if (status.code() == util::StatusCode::kAlreadyExists) {
      // A previous attempt's response was lost but the registration
      // landed; the activation mail was fetched then, so head straight
      // for login.
      LoginClient(app);
      return;
    }
    if (!status.ok()) {
      // Server unreachable (likely a fault window); the host simply comes
      // online later.
      loop_.ScheduleAfter(util::kHour, [this, app] { OnboardClient(app); });
      return;
    }
    auto mail = [&] {
      if (cluster_ != nullptr) return cluster_->FetchMail(app->config().email);
      return server_->FetchMail(app->config().email);
    }();
    if (!mail.ok() && cluster_ != nullptr) {
      // Shard 0 (the canonical mailbox) may be mid-failover; pending mail
      // is process state and dies with the old primary. Re-onboarding is
      // safe: registration replies AlreadyExists and we fall through to
      // login with the deterministic tokens.
      loop_.ScheduleAfter(util::kHour, [this, app] { OnboardClient(app); });
      return;
    }
    PISREP_CHECK(mail.ok()) << "no activation mail for "
                            << app->config().email;
    ActivateClient(app, mail->token);
  });
}

void ScenarioRunner::ActivateClient(client::ClientApp* app,
                                    const std::string& token) {
  app->Activate(token, [this, app, token](util::Status status) {
    if (status.code() == util::StatusCode::kUnavailable ||
        status.code() == util::StatusCode::kDataLoss) {
      loop_.ScheduleAfter(util::kHour,
                          [this, app, token] { ActivateClient(app, token); });
      return;
    }
    // Any other error means the token was already consumed by a retry
    // whose response we never saw — either way, try logging in.
    LoginClient(app);
  });
}

void ScenarioRunner::LoginClient(client::ClientApp* app) {
  app->Login([this, app](util::Status status) {
    if (!status.ok()) {
      loop_.ScheduleAfter(util::kHour, [this, app] { LoginClient(app); });
    }
  });
}

void ScenarioRunner::ApplyCommunityHistory() {
  if (config_.community_age <= 0) return;
  loop_.RunUntil(loop_.Now() + config_.community_age);
  std::int64_t weeks = config_.community_age / util::kWeek;
  util::TimePoint now = loop_.Now();

  // In cluster mode the remark history must land on every shard: each
  // shard weighs its own votes by the author's local trust factor, and
  // accounts exist everywhere (broadcast registration, identical ids).
  std::vector<server::ReputationServer*> account_servers;
  if (cluster_ != nullptr) {
    for (int s = 0; s < cluster_->num_shards(); ++s) {
      account_servers.push_back(cluster_->primary(s));
    }
  } else {
    account_servers.push_back(server_.get());
  }

  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    SimHost* host = hosts_[i].get();
    if (host->protection() != ProtectionKind::kReputation) continue;
    auto account = account_servers.front()->accounts().GetAccountByUsername(
        host->client()->config().username);
    if (!account.ok()) continue;
    // Remark history per week of age, by archetype: helpful commenters
    // accumulate praise, noise accumulates censure.
    double positives_per_week = 0.0;
    double negatives_per_week = 0.0;
    switch (host->user().behavior().profile) {
      case UserProfile::kExpert:
        positives_per_week = 6.0;
        break;
      case UserProfile::kAverage:
        positives_per_week = 1.5;
        negatives_per_week = 0.2;
        break;
      case UserProfile::kNovice:
        positives_per_week = 0.3;
        negatives_per_week = 0.5;
        break;
      case UserProfile::kMalicious:
        positives_per_week = 0.1;
        negatives_per_week = 1.0;
        break;
    }
    int positives = static_cast<int>(positives_per_week * weeks);
    int negatives = static_cast<int>(negatives_per_week * weeks);
    for (server::ReputationServer* target : account_servers) {
      for (int r = 0; r < positives; ++r) {
        // Seeding trust history for a known-valid account; the updated
        // factor is recomputed from scratch by the next aggregation run.
        (void)target->accounts().ApplyRemark(account->id, true, now);
      }
      for (int r = 0; r < negatives; ++r) {
        // Seeding trust history for a known-valid account (see above).
        (void)target->accounts().ApplyRemark(account->id, false, now);
      }
    }
  }
}

void ScenarioRunner::ApplyBootstrap() {
  if (!config_.bootstrap) return;
  // Seed the most popular fraction, as a real bootstrap would cover the
  // widely-known programs first.
  std::vector<std::size_t> order(eco_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return eco_.spec(a).popularity > eco_.spec(b).popularity;
  });
  std::size_t count = static_cast<std::size_t>(
      std::round(static_cast<double>(order.size()) *
                 config_.bootstrap_fraction));
  std::vector<server::BootstrapRecord> records;
  for (std::size_t i = 0; i < count; ++i) {
    const SoftwareSpec& spec = eco_.spec(order[i]);
    server::BootstrapRecord record;
    record.meta = spec.image.Meta();
    // The external database is "more or less reliable": close to truth.
    record.score = std::clamp(spec.true_quality + rng_.NextGaussian(0.0, 0.5),
                              1.0, 10.0);
    record.vote_count = config_.bootstrap_votes;
    records.push_back(std::move(record));
  }
  if (cluster_ != nullptr) {
    // Partition the bootstrap records by ring owner: priors live only
    // where the software's votes will live.
    for (int s = 0; s < cluster_->num_shards(); ++s) {
      std::vector<server::BootstrapRecord> shard_records;
      for (const server::BootstrapRecord& record : records) {
        if (cluster_->ring().OwnerOf(record.meta.id) ==
            cluster_->ShardName(s)) {
          shard_records.push_back(record);
        }
      }
      auto imported = cluster_->primary(s)->bootstrap().Import(shard_records);
      PISREP_CHECK(imported.ok()) << imported.status().ToString();
    }
    cluster_->RunAggregationAll(loop_.Now());
    return;
  }
  auto imported = server_->bootstrap().Import(records);
  PISREP_CHECK(imported.ok()) << imported.status().ToString();
  // Make the priors immediately visible.
  server_->aggregation().RunOnce(loop_.Now());
}

void ScenarioRunner::ScheduleExecutions() {
  double mean_gap_ms =
      static_cast<double>(util::kDay) / config_.executions_per_day;
  util::TimePoint end = loop_.Now() + config_.duration;

  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    SimHost* host = hosts_[i].get();
    GroupOutcome* outcome =
        &outcomes_[static_cast<std::size_t>(host->protection())];
    // Self-rescheduling execution process with exponential interarrival.
    // The lambda holds only a weak reference to itself; the strong
    // references live in the event queue, so the process frees itself
    // once it stops rescheduling (past `end`, or when the loop dies).
    auto step = std::make_shared<std::function<void()>>();
    util::Rng exec_rng = rng_.Fork(50'000 + i);
    auto rng_ptr = std::make_shared<util::Rng>(std::move(exec_rng));
    std::weak_ptr<std::function<void()>> weak_step = step;
    *step = [this, host, outcome, end, mean_gap_ms, weak_step, rng_ptr] {
      if (loop_.Now() >= end) return;
      std::size_t idx = host->SampleInstalled(*rng_ptr);
      // The AV lab sees samples as they circulate, regardless of who runs
      // them (telemetry, honeypots).
      baseline_.ObserveSample(eco_.spec(idx), loop_.Now());
      host->ExecuteOne(eco_, idx, loop_.Now(), outcome);
      util::Duration gap = std::max<util::Duration>(
          util::kSecond,
          static_cast<util::Duration>(rng_ptr->NextExponential(mean_gap_ms)));
      if (auto self = weak_step.lock()) {
        loop_.ScheduleAfter(gap, [self] { (*self)(); });
      }
    };
    // A machine only starts launching programs once its user has joined
    // (plus an hour for onboarding to finish).
    util::Duration first =
        join_times_[i] + (join_times_[i] > 0 ? util::kHour : 0) +
        static_cast<util::Duration>(
            rng_.NextBelow(static_cast<std::uint64_t>(mean_gap_ms) + 1));
    loop_.ScheduleAfter(first, [step] { (*step)(); });
  }
}

void ScenarioRunner::CrashServer() {
  PISREP_LOG(kInfo) << "chaos: server crash at t=" << loop_.Now();
  if (cluster_ != nullptr) {
    cluster_->KillPrimary(0);
    return;
  }
  server_->Stop();
}

void ScenarioRunner::RestartServer() {
  PISREP_LOG(kInfo) << "chaos: server restart at t=" << loop_.Now();
  if (cluster_ != nullptr) {
    // The replicated equivalent of restart-with-recovery: promote shard
    // 0's backup (which holds every acked write) to a fresh primary.
    util::Status promoted = cluster_->TriggerFailover(0);
    if (!promoted.ok()) {
      PISREP_LOG(kWarning) << "chaos: shard 0 promotion refused: "
                           << promoted.ToString();
    }
    return;
  }
  // A fresh process over the same database: durable state (accounts,
  // votes, registry) comes back; sessions and pending mail do not.
  server_ = std::make_unique<server::ReputationServer>(db_.get(), &loop_,
                                                       config_.server);
  util::Status rpc_status = server_->AttachRpc(network_.get(), "server");
  PISREP_CHECK(rpc_status.ok()) << rpc_status.ToString();
}

void ScenarioRunner::ScheduleChaos(util::TimePoint start) {
  const ScenarioConfig::ChaosConfig& chaos = config_.chaos;
  if (!chaos.enabled) return;
  injector_.IsolateWindow(start + chaos.partition_start,
                          start + chaos.partition_end, "server");
  injector_.ScheduleWindow(
      start + chaos.crash_start, start + chaos.crash_end,
      [this] { CrashServer(); }, [this] { RestartServer(); });
  injector_.DegradeWindow(start + chaos.degrade_start,
                          start + chaos.degrade_end, chaos.degrade_loss,
                          chaos.degrade_duplication,
                          chaos.degrade_corruption);
}

ScenarioResult ScenarioRunner::Collect() {
  // Final aggregation so scores reflect every vote.
  if (cluster_ != nullptr) {
    cluster_->RunAggregationAll(loop_.Now());
  } else {
    server_->aggregation().RunOnce(loop_.Now());
  }

  ScenarioResult result;
  result.groups = outcomes_;

  // Fold client-side prompt counters into the reputation group.
  GroupOutcome& rep =
      result.groups[static_cast<std::size_t>(ProtectionKind::kReputation)];
  rep.prompts = 0;
  for (const auto& host : hosts_) {
    if (host->protection() == ProtectionKind::kReputation) {
      rep.prompts += host->client()->stats().prompts_shown;
    }
  }

  double abs_error = 0.0;
  int scored = 0;
  double visible_error = 0.0;
  int visible = 0;
  for (std::size_t i = 0; i < eco_.size(); ++i) {
    core::SoftwareId digest = eco_.spec(i).image.Digest();
    auto score = [&] {
      if (cluster_ != nullptr) return cluster_->GetScore(digest);
      return server_->registry().GetScore(digest);
    }();
    if (!score.ok()) continue;
    ++visible;
    visible_error += std::abs(score->score - eco_.spec(i).true_quality);
    if (score->vote_count == 0) continue;
    abs_error += std::abs(score->score - eco_.spec(i).true_quality);
    ++scored;
  }
  result.score_mae = scored > 0 ? abs_error / scored : 0.0;
  result.scored_software = scored;
  result.visible_software = visible;
  result.visible_score_mae = visible > 0 ? visible_error / visible : 0.0;
  if (cluster_ != nullptr) {
    // Vote and remark rows live only on their owning shard, so the sums
    // are exact. Stats are summed too — note registrations count once per
    // shard (account operations are broadcast).
    for (int s = 0; s < cluster_->num_shards(); ++s) {
      server::ReputationServer* shard = cluster_->primary(s);
      if (shard == nullptr) continue;
      result.total_votes += shard->votes().TotalVotes();
      result.total_remarks += shard->votes().TotalRemarks();
      const server::ServerStats& stats = shard->stats();
      result.server_stats.registrations += stats.registrations;
      result.server_stats.registrations_rejected +=
          stats.registrations_rejected;
      result.server_stats.logins += stats.logins;
      result.server_stats.queries += stats.queries;
      result.server_stats.votes_accepted += stats.votes_accepted;
      result.server_stats.votes_rejected_duplicate +=
          stats.votes_rejected_duplicate;
      result.server_stats.votes_rejected_flood += stats.votes_rejected_flood;
      result.server_stats.remarks_accepted += stats.remarks_accepted;
    }
    return result;
  }
  result.total_votes = server_->votes().TotalVotes();
  result.total_remarks = server_->votes().TotalRemarks();
  result.server_stats = server_->stats();
  return result;
}

ScenarioResult ScenarioRunner::Run() {
  PISREP_CHECK(!ran_) << "ScenarioRunner::Run is single-shot";
  ran_ = true;

  SetUpHosts();
  SetUpAccounts();
  ApplyCommunityHistory();
  ApplyBootstrap();
  util::TimePoint start = loop_.Now();
  ScheduleChaos(start);
  ScheduleExecutions();
  // Grace period so in-flight RPCs at the deadline still resolve.
  loop_.RunUntil(start + config_.duration + util::kMinute);
  return Collect();
}

}  // namespace pisrep::sim
