#ifndef PISREP_SIM_HOST_H_
#define PISREP_SIM_HOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/client_app.h"
#include "sim/baseline_av.h"
#include "sim/metrics.h"
#include "sim/software_ecosystem.h"
#include "sim/user_model.h"

namespace pisrep::sim {

/// What protects a simulated machine.
enum class ProtectionKind : std::uint8_t {
  kNone = 0,        ///< unprotected (the paper's 80%-infected population)
  kSignatureAv = 1, ///< conventional signature scanner (§4.3 baseline)
  kReputation = 2,  ///< the pisrep client behind the execution hook
};

const char* ProtectionKindName(ProtectionKind kind);

/// One simulated machine + its user: the installed program mix, the
/// protection mechanism, and per-host outcome accounting.
class SimHost {
 public:
  SimHost(std::string name, ProtectionKind protection, SimUserModel user,
          std::vector<std::size_t> installed);

  SimHost(const SimHost&) = delete;
  SimHost& operator=(const SimHost&) = delete;
  SimHost(SimHost&&) = default;
  SimHost& operator=(SimHost&&) = default;

  const std::string& name() const { return name_; }
  ProtectionKind protection() const { return protection_; }
  SimUserModel& user() { return user_; }
  const std::vector<std::size_t>& installed() const { return installed_; }

  /// Wires up a reputation client (protection == kReputation).
  void AttachClient(std::unique_ptr<client::ClientApp> client);
  client::ClientApp* client() { return client_.get(); }

  /// Wires up the shared signature scanner (protection == kSignatureAv).
  void AttachBaseline(const SignatureBaseline* baseline);

  /// Picks one of the installed programs uniformly at random.
  std::size_t SampleInstalled(util::Rng& rng) const;

  /// Runs one execution of ecosystem program `spec_index` at `now`,
  /// recording the outcome into `outcome` (and this host's infection
  /// state). For reputation hosts the decision may resolve asynchronously
  /// on the event loop; accounting happens when it resolves.
  void ExecuteOne(const SoftwareEcosystem& eco, std::size_t spec_index,
                  util::TimePoint now, GroupOutcome* outcome);

  bool infected() const { return infected_; }
  std::uint64_t executions() const { return executions_; }

 private:
  void RecordDecision(const SoftwareSpec& spec, bool allowed,
                      GroupOutcome* outcome);

  std::string name_;
  ProtectionKind protection_;
  SimUserModel user_;
  std::vector<std::size_t> installed_;
  std::unique_ptr<client::ClientApp> client_;
  const SignatureBaseline* baseline_ = nullptr;
  bool infected_ = false;
  std::uint64_t executions_ = 0;
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_HOST_H_
