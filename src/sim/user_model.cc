#include "sim/user_model.h"

#include <algorithm>
#include <cmath>

namespace pisrep::sim {

const char* UserProfileName(UserProfile profile) {
  switch (profile) {
    case UserProfile::kExpert:
      return "expert";
    case UserProfile::kAverage:
      return "average";
    case UserProfile::kNovice:
      return "novice";
    case UserProfile::kMalicious:
      return "malicious";
  }
  return "?";
}

UserBehavior MakeUserBehavior(UserProfile profile) {
  UserBehavior b;
  b.profile = profile;
  switch (profile) {
    case UserProfile::kExpert:
      b.rating_noise = 0.5;
      b.rating_bias = 0.0;
      b.comment_quality = 0.95;
      b.reports_behaviors = 0.9;
      b.informed_skill = 0.97;
      b.uninformed_caution = 0.7;
      b.prompt_patience = 0.85;
      b.remark_propensity = 0.4;
      break;
    case UserProfile::kAverage:
      b.rating_noise = 1.2;
      b.rating_bias = 0.2;
      b.comment_quality = 0.7;
      b.reports_behaviors = 0.5;
      b.informed_skill = 0.85;
      b.uninformed_caution = 0.35;
      b.prompt_patience = 0.6;
      b.remark_propensity = 0.15;
      break;
    case UserProfile::kNovice:
      // §2.1: novices "may give the installer of a program bundled with
      // many different PIS a high rating, commenting that it is a great
      // free and highly recommended program".
      b.rating_noise = 2.2;
      b.rating_bias = 1.8;
      b.comment_quality = 0.3;
      b.reports_behaviors = 0.15;
      b.informed_skill = 0.6;
      b.uninformed_caution = 0.1;
      b.prompt_patience = 0.4;
      b.remark_propensity = 0.05;
      break;
    case UserProfile::kMalicious:
      b.rating_noise = 0.5;
      b.rating_bias = 0.0;
      b.comment_quality = 0.05;
      b.reports_behaviors = 0.0;
      b.informed_skill = 0.0;
      b.uninformed_caution = 0.0;
      b.prompt_patience = 1.0;  // attackers never miss a chance to vote
      b.remark_propensity = 0.0;
      break;
  }
  return b;
}

int SimUserModel::RateSoftware(const SoftwareSpec& spec) {
  double quality = spec.true_quality;
  if (behavior_.profile == UserProfile::kMalicious) {
    // Invert: praise PIS, bury legitimate software.
    quality = 11.0 - quality;
    return static_cast<int>(std::clamp(
        std::round(quality), static_cast<double>(core::kMinRating),
        static_cast<double>(core::kMaxRating)));
  }
  double noisy = quality + behavior_.rating_bias +
                 rng_.NextGaussian(0.0, behavior_.rating_noise);
  return static_cast<int>(std::clamp(
      std::round(noisy), static_cast<double>(core::kMinRating),
      static_cast<double>(core::kMaxRating)));
}

bool SimUserModel::DecideAllow(const client::PromptInfo& info,
                               const SoftwareSpec& spec) {
  bool is_pis = SoftwareEcosystem::IsPis(spec.truth);

  bool has_information =
      (info.score.has_value() && info.score->vote_count > 0) ||
      info.reported_behaviors != core::kNoBehaviors;
  if (has_information) {
    // What would the information itself suggest? A displayed score below 5
    // or any reported severe/moderate behaviour reads as "questionable".
    bool info_says_bad =
        (info.score.has_value() && info.score->vote_count > 0 &&
         info.score->score < 5.0) ||
        core::AssessConsequence(info.reported_behaviors) !=
            core::ConsequenceLevel::kTolerable;
    // A skilled user follows correct information; an unskilled one
    // sometimes ignores it.
    bool follow = rng_.NextBool(behavior_.informed_skill);
    if (follow) return !info_says_bad;
    return !rng_.NextBool(0.5);
  }

  // No information: the uninformed default. This branch is what the
  // reputation system exists to eliminate.
  if (rng_.NextBool(behavior_.uninformed_caution)) {
    // Cautious: deny unknown unsigned software, allow signed-and-valid.
    return info.signature.valid;
  }
  // Click-through: allow (the behaviour behind the paper's 80% infection
  // figure).
  (void)is_pis;
  return true;
}

core::BehaviorSet SimUserModel::ReportBehaviors(const SoftwareSpec& spec) {
  core::BehaviorSet reported = core::kNoBehaviors;
  for (core::Behavior b : core::AllBehaviors()) {
    if (core::HasBehavior(spec.behaviors, b) &&
        rng_.NextBool(behavior_.reports_behaviors)) {
      reported = core::WithBehavior(reported, b);
    }
  }
  return reported;
}

}  // namespace pisrep::sim
