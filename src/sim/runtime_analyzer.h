#ifndef PISREP_SIM_RUNTIME_ANALYZER_H_
#define PISREP_SIM_RUNTIME_ANALYZER_H_

#include <cstdint>
#include <unordered_set>

#include "core/behavior.h"
#include "server/feeds.h"
#include "server/software_registry.h"
#include "sim/software_ecosystem.h"
#include "util/random.h"

namespace pisrep::sim {

/// §5 future work: "using runtime software analysis to automatically collect
/// information about whether software has some unwanted behaviour, for
/// instance if it shows advertisements or includes an incomplete
/// uninstallation function. The results from such investigations could then
/// be inserted into the reputation system as hard evidence."
///
/// The analyzer sandboxes a sample (simulated: per-behaviour detection with
/// configurable sensitivity and a small false-positive rate), then publishes
/// its findings twice:
///   - as weighted behaviour reports in the registry (hard evidence counts
///     as several independent user reports), and
///   - as an entry in an expert feed, so subscribing clients can consume the
///     lab's verdict directly (§4.2 subscriptions).
class RuntimeAnalyzer {
 public:
  struct Config {
    /// Probability a genuinely-present behaviour is detected in the sandbox.
    double sensitivity = 0.9;
    /// Probability an absent behaviour is falsely flagged.
    double false_positive_rate = 0.01;
    /// How many user reports one analysis counts as in the registry.
    int evidence_weight = 5;
    /// Feed the analyzer publishes into ("" disables feed publication).
    std::string feed_name = "runtime-analysis";
    std::uint64_t seed = 0x1ab;
  };

  struct AnalysisResult {
    core::BehaviorSet detected = core::kNoBehaviors;
    int true_positives = 0;
    int false_positives = 0;
    int missed = 0;
  };

  RuntimeAnalyzer(Config config, server::SoftwareRegistry* registry,
                  server::FeedStore* feeds);

  /// Ensures the analyzer's feed exists (owned by the pseudo-account id -1
  /// conventionally reserved for infrastructure publishers).
  util::Status SetUpFeed(core::UserId publisher);

  /// Sandboxes `spec`. Idempotent per software id: re-analysis of a known
  /// sample returns the cached result without inflating the registry counts.
  util::Result<AnalysisResult> Analyze(const SoftwareSpec& spec,
                                       core::UserId publisher,
                                       util::TimePoint now);

  std::size_t analyzed_count() const { return analyzed_.size(); }

 private:
  Config config_;
  server::SoftwareRegistry* registry_;
  server::FeedStore* feeds_;
  util::Rng rng_;
  std::unordered_set<core::SoftwareId, core::SoftwareIdHash> analyzed_;
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_RUNTIME_ANALYZER_H_
