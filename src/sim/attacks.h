#ifndef PISREP_SIM_ATTACKS_H_
#define PISREP_SIM_ATTACKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "client/file_image.h"
#include "server/reputation_server.h"
#include "sim/software_ecosystem.h"
#include "util/clock.h"

namespace pisrep::sim {

/// Outcome counters shared by the attack drivers.
struct AttackStats {
  int accounts_attempted = 0;
  int accounts_created = 0;
  int accounts_rejected = 0;
  std::uint64_t puzzle_hashes = 0;  ///< attacker compute spent on puzzles
  int votes_accepted = 0;
  int votes_rejected = 0;
  int remarks_accepted = 0;
  int remarks_rejected = 0;
};

/// §2.1's abuse scenarios, exercised against the real server stack. All
/// drivers go through the public native API — the attacker has no powers an
/// actual network client would lack.
class Attacks {
 public:
  /// Registers, activates and logs in `count` attacker accounts spread over
  /// `num_sources` client addresses, solving the registration puzzles
  /// honestly. Fills `sessions_out` with the sessions of the accounts that
  /// made it through. This is the Sybil attack (§2.1/ref [10]): the cost of
  /// each identity is exactly what the flood guard makes it.
  /// `start_index` numbers the generated identities, so successive waves
  /// (e.g. one per simulated day) do not collide on usernames.
  static AttackStats CreateSybilAccounts(
      server::ReputationServer& server, int count, int num_sources,
      util::TimePoint now, std::vector<std::string>* sessions_out,
      int start_index = 0);

  /// Every session votes `score` on `target` (registering it if needed).
  /// With score 9-10 this is ballot stuffing / positive discrimination;
  /// with 1-2 it is a discredit attack against a competitor (§2.1:
  /// "intentionally enter misleading information to discredit a software
  /// vendor they dislike").
  static AttackStats FloodVotes(server::ReputationServer& server,
                                const std::vector<std::string>& sessions,
                                const core::SoftwareMeta& target, int score,
                                util::TimePoint now);

  /// Colluding accounts leave positive remarks on each other's comments on
  /// `target`, trying to inflate their trust factors. Stopped by the
  /// one-remark-per-comment rule and the §3.2 weekly growth cap.
  static AttackStats CollusiveTrustInflation(
      server::ReputationServer& server,
      const std::vector<std::string>& sessions,
      const std::vector<core::UserId>& members,
      const core::SoftwareId& target, util::TimePoint now);

  /// The §3.3 evasion: produces the `instance`-th repacked variant of a
  /// base program, with a fresh digest but identical behaviour.
  static client::FileImage PolymorphicVariant(const SoftwareSpec& base,
                                              int instance);
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_ATTACKS_H_
