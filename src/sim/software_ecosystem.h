#ifndef PISREP_SIM_SOFTWARE_ECOSYSTEM_H_
#define PISREP_SIM_SOFTWARE_ECOSYSTEM_H_

#include <array>
#include <string>
#include <vector>

#include "client/file_image.h"
#include "core/behavior.h"
#include "core/classification.h"
#include "crypto/signing.h"
#include "util/random.h"

namespace pisrep::sim {

/// A simulated software vendor: name, signing keys, and whether it is an
/// honest company (honest vendors sign their binaries and embed their
/// company name; PIS vendors often do neither, §3.3).
struct VendorProfile {
  std::string name;
  crypto::KeyPair keys;
  bool legitimate = true;
};

/// One program in the synthetic ecosystem, with full ground truth that a
/// real deployment would lack — this is what lets the simulation *measure*
/// what the paper could only argue.
struct SoftwareSpec {
  client::FileImage image;
  int vendor_index = -1;               ///< into SoftwareEcosystem::vendors()
  core::PisCategory truth = core::PisCategory::kLegitimate;
  core::BehaviorSet behaviors = core::kNoBehaviors;
  core::DisclosureProfile disclosure;
  /// Latent quality on the 1..10 rating scale that an omniscient honest
  /// rater would converge to; derived from the category.
  double true_quality = 5.0;
  /// Zipf popularity weight (higher = more commonly installed).
  double popularity = 1.0;
};

/// Ecosystem generation parameters.
struct EcosystemConfig {
  int num_software = 200;
  int num_vendors = 30;
  /// Fraction of vendors that are PIS shops.
  double pis_vendor_fraction = 0.3;
  /// Weights over the nine Table-1 categories (index = category number - 1).
  /// The default mix skews legitimate with a realistic grey-zone tail.
  std::array<double, 9> category_weights = {
      0.45,   // 1 legitimate
      0.08,   // 2 adverse
      0.02,   // 3 double agents
      0.10,   // 4 semi-transparent
      0.12,   // 5 unsolicited
      0.04,   // 6 semi-parasites
      0.07,   // 7 covert
      0.08,   // 8 trojans
      0.04,   // 9 parasites
  };
  /// Probability that an honest vendor signs a given binary.
  double signed_fraction_legit = 0.8;
  /// Probability that a PIS vendor signs (rare; certificates burn).
  double signed_fraction_pis = 0.05;
  /// Probability that a PIS vendor strips its company name (§3.3 signal).
  double anonymous_pis_fraction = 0.4;
  /// Zipf exponent for popularity.
  double zipf_exponent = 1.0;
  std::uint64_t seed = 42;
};

/// Generator and container for the synthetic software corpus.
class SoftwareEcosystem {
 public:
  /// Builds a deterministic ecosystem from the config.
  static SoftwareEcosystem Generate(const EcosystemConfig& config);

  const std::vector<VendorProfile>& vendors() const { return vendors_; }
  const std::vector<SoftwareSpec>& specs() const { return specs_; }
  const SoftwareSpec& spec(std::size_t i) const { return specs_[i]; }
  std::size_t size() const { return specs_.size(); }

  /// Samples a software index with probability proportional to popularity.
  std::size_t SamplePopular(util::Rng& rng) const;

  /// The latent quality an honest rater converges to for `category`
  /// (midpoint of the category's plausible range).
  static double TrueQualityFor(core::PisCategory category);

  /// True when running this program harms the user (spyware or malware in
  /// the Table-1 sense): everything except legitimate software.
  static bool IsPis(core::PisCategory category) {
    return !core::IsLegitimate(category);
  }

 private:
  std::vector<VendorProfile> vendors_;
  std::vector<SoftwareSpec> specs_;
  std::vector<double> popularity_cdf_;
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_SOFTWARE_ECOSYSTEM_H_
