#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pisrep::sim {

SummaryStats Summarize(std::vector<double> values) {
  SummaryStats stats;
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  stats.count = values.size();
  stats.min = values.front();
  stats.max = values.back();

  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());

  double sq = 0.0;
  for (double v : values) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = values.size() > 1
                     ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                     : 0.0;

  auto percentile = [&](double p) {
    double rank = p * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  stats.p50 = percentile(0.50);
  stats.p95 = percentile(0.95);
  return stats;
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  PISREP_CHECK(a.size() == b.size()) << "MAE needs equal-length samples";
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(a[i] - b[i]);
  }
  return sum / static_cast<double>(a.size());
}

}  // namespace pisrep::sim
