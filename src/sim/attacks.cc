#include "sim/attacks.h"

#include "server/flood_guard.h"
#include "util/string_util.h"

namespace pisrep::sim {

namespace {
using util::StrFormat;
}  // namespace

AttackStats Attacks::CreateSybilAccounts(
    server::ReputationServer& server, int count, int num_sources,
    util::TimePoint now, std::vector<std::string>* sessions_out,
    int start_index) {
  AttackStats stats;
  for (int n = 0; n < count; ++n) {
    int i = start_index + n;
    ++stats.accounts_attempted;
    std::string source =
        StrFormat("attacker-src-%d", num_sources > 0 ? i % num_sources : 0);
    std::string username = StrFormat("sybil_%05d", i);
    std::string email = StrFormat("sybil_%05d@attacker.example", i);

    // The attacker must burn CPU on the puzzle like anyone else.
    server::Puzzle puzzle = server.RequestPuzzle();
    std::uint64_t attempts = 0;
    std::string solution =
        server::FloodGuard::SolvePuzzle(puzzle, &attempts);
    stats.puzzle_hashes += attempts;

    util::Status registered = server.Register(
        source, username, "sybilpass", email, puzzle.nonce, solution, now);
    if (!registered.ok()) {
      ++stats.accounts_rejected;
      continue;
    }
    // Activation mail: attacker-controlled domain, so always readable.
    auto mail = server.FetchMail(email);
    if (mail.ok()) {
      if (!server.Activate(mail->username, mail->token).ok()) {
        ++stats.accounts_rejected;
        continue;
      }
    }
    auto session = server.Login(username, "sybilpass", now);
    if (!session.ok()) {
      ++stats.accounts_rejected;
      continue;
    }
    ++stats.accounts_created;
    if (sessions_out != nullptr) sessions_out->push_back(*session);
  }
  return stats;
}

AttackStats Attacks::FloodVotes(server::ReputationServer& server,
                                const std::vector<std::string>& sessions,
                                const core::SoftwareMeta& target, int score,
                                util::TimePoint now) {
  AttackStats stats;
  for (const std::string& session : sessions) {
    util::Status status = server.SubmitRating(
        session, target, score, "great program, highly recommended",
        core::kNoBehaviors, now);
    if (status.ok()) {
      ++stats.votes_accepted;
    } else {
      ++stats.votes_rejected;
    }
  }
  return stats;
}

AttackStats Attacks::CollusiveTrustInflation(
    server::ReputationServer& server,
    const std::vector<std::string>& sessions,
    const std::vector<core::UserId>& members,
    const core::SoftwareId& target, util::TimePoint now) {
  AttackStats stats;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    for (std::size_t j = 0; j < members.size(); ++j) {
      if (i == j) continue;
      util::Status status =
          server.SubmitRemark(sessions[i], members[j], target,
                              /*positive=*/true, now);
      if (status.ok()) {
        ++stats.remarks_accepted;
      } else {
        ++stats.remarks_rejected;
      }
    }
  }
  return stats;
}

client::FileImage Attacks::PolymorphicVariant(const SoftwareSpec& base,
                                              int instance) {
  return base.image.Repack(StrFormat(":variant:%08d", instance));
}

}  // namespace pisrep::sim
