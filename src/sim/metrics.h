#ifndef PISREP_SIM_METRICS_H_
#define PISREP_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pisrep::sim {

/// Summary statistics over a sample.
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes summary statistics; an empty sample yields all zeros.
SummaryStats Summarize(std::vector<double> values);

/// Mean absolute error between paired samples; the samples must be equal
/// length.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Execution outcomes for one protection group in a scenario.
struct GroupOutcome {
  std::string label;
  int hosts = 0;

  std::uint64_t executions = 0;

  /// PIS = spyware + malware categories (everything but legitimate, in the
  /// Table-1 sense of "privacy-invasive").
  std::uint64_t pis_allowed = 0;
  std::uint64_t pis_blocked = 0;
  std::uint64_t malware_allowed = 0;  ///< subset of pis_allowed
  std::uint64_t malware_blocked = 0;

  std::uint64_t legit_allowed = 0;
  std::uint64_t legit_blocked = 0;  ///< false positives

  std::uint64_t prompts = 0;        ///< user interruptions (allow/deny asks)
  int infected_hosts = 0;           ///< hosts that ran >= 1 PIS binary

  /// Decisions whose callback actually fired. Equal to `executions` when
  /// every execution hook resolved exactly once — the liveness invariant
  /// chaos runs assert: no decision may be dropped (deadlock) or counted
  /// twice (duplicate callback), no matter what the network did.
  std::uint64_t DecisionsResolved() const {
    return pis_allowed + pis_blocked + legit_allowed + legit_blocked;
  }

  /// Fraction of hosts that ran at least one PIS binary.
  double InfectionRate() const {
    return hosts == 0 ? 0.0 : static_cast<double>(infected_hosts) / hosts;
  }
  /// Fraction of PIS execution attempts that were blocked.
  double PisBlockRate() const {
    std::uint64_t total = pis_allowed + pis_blocked;
    return total == 0 ? 0.0 : static_cast<double>(pis_blocked) / total;
  }
  /// Fraction of legitimate execution attempts wrongly blocked.
  double FalseBlockRate() const {
    std::uint64_t total = legit_allowed + legit_blocked;
    return total == 0 ? 0.0 : static_cast<double>(legit_blocked) / total;
  }
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_METRICS_H_
