#ifndef PISREP_SIM_SCENARIO_H_
#define PISREP_SIM_SCENARIO_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/router.h"
#include "core/policy.h"
#include "core/prompt_policy.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/reputation_server.h"
#include "sim/baseline_av.h"
#include "sim/host.h"
#include "sim/metrics.h"
#include "sim/software_ecosystem.h"
#include "storage/database.h"
#include "util/random.h"

namespace pisrep::sim {

/// End-to-end simulation parameters: a population of hosts running a
/// software mix, optionally protected by the reputation client (full RPC
/// path through the simulated network) or by the signature baseline.
struct ScenarioConfig {
  EcosystemConfig ecosystem;

  int num_users = 60;
  /// Protection mix; the remainder runs the reputation client.
  double frac_unprotected = 0.0;
  double frac_av = 0.0;
  /// Skill mix; the remainder is kAverage.
  double frac_expert = 0.15;
  double frac_novice = 0.25;
  double frac_malicious = 0.0;

  /// Installed programs per host (uniform in [min, max]).
  int installs_min = 8;
  int installs_max = 15;
  /// Probability that a sampled PIS program is vetoed at install time —
  /// models curated (IT-approved) software acquisition on corporate
  /// machines; 0 reproduces a home user's indiscriminate downloads.
  double install_pis_veto = 0.0;
  /// Mean program launches per host per day (exponential interarrival).
  double executions_per_day = 6.0;
  util::Duration duration = 30 * util::kDay;

  /// Community churn: this fraction of users joins late, uniformly spread
  /// over `join_spread` from the start — a growing deployment instead of a
  /// fully-formed one. Hosts run nothing before their user arrives.
  double late_join_fraction = 0.0;
  util::Duration join_spread = 10 * util::kDay;

  /// Established-community warm-up: after onboarding, the clock advances by
  /// this much and members accrue remark history proportional to their
  /// skill (experts earn praise, malicious accounts collect negative
  /// remarks), so trust factors reflect a deployment with a past rather
  /// than a week-one community. 0 starts cold.
  util::Duration community_age = 0;

  /// Client-side policy for reputation hosts.
  core::Policy policy = core::Policy::ListsOnly();
  /// Declarative policy rules (PR 10): when non-empty, each client parses
  /// this text with trust::ParsePolicyRules and it replaces `policy`.
  std::string policy_rules;
  /// Prompt thresholds; defaults are lowered from the paper's 50/2 so a
  /// 30-day simulation generates enough votes (the paper's deployment ran
  /// for months).
  core::PromptScheduler::Config prompts{/*executions_before_prompt=*/5,
                                        /*max_prompts_per_week=*/20};
  /// §4.2 vendor white-listing: trust every honest vendor's certificate in
  /// every client's store.
  bool trust_legit_vendors = false;
  /// TTL of the clients' server-response cache.
  util::Duration client_cache_ttl = util::kHour;
  /// Whether simulated users pin their allow/deny answers on the
  /// white/black lists (§3.1 default). When false, every launch re-decides
  /// from fresh reputation data — the regime where the cache matters.
  bool remember_decisions = true;

  server::ReputationServer::Config server;
  BaselineConfig baseline;
  net::NetworkConfig network;

  /// Cluster mode: when > 1, the scenario runs this many shard servers
  /// (each with a replicated backup) behind a cluster::Router bound at
  /// "server" — clients are untouched and talk to the same address as in
  /// single-server mode. 1 keeps the historical single-server path
  /// bit-identical. Cluster shards are in-memory (`server_db_path` must
  /// stay empty); durability comes from replication, not a WAL file.
  int num_shards = 1;
  cluster::ReplicationConfig replication;
  /// Gossip failure detection for the cluster. Disabled by default so
  /// benches and chaos tests drive failures explicitly and the event loop
  /// can drain; enable for decentralized auto-failover.
  cluster::GossipConfig cluster_gossip{.enabled = false};
  /// Background replica digest comparison; disabled by default for the
  /// same drain reason.
  cluster::AntiEntropyConfig cluster_anti_entropy{.enabled = false};

  /// Observability for the whole scenario (optional, not owned; must
  /// outlive the runner). When set, the server, every client, the event
  /// loop and the fault injector all report into the same registry/tracer
  /// — one scrapeable surface per simulated deployment. Survives the
  /// chaos server restart: the restarted server re-fetches the same
  /// metric handles by name.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  /// When non-empty, the server runs on a WAL-backed database at this path
  /// (durability integration testing); empty keeps it in-memory.
  std::string server_db_path;

  /// Scripted fault schedule (chaos engineering): drives the FaultInjector
  /// and the server lifecycle through three windows, exercising every
  /// degradation path at once — stale-cache prompts and offline outboxes
  /// during the partition, session recovery after the crash, retry/breaker
  /// behaviour under loss and corruption. Offsets are relative to the
  /// start of the execution phase. Keep the windows clear of onboarding
  /// (first hour, plus `join_spread` when late joiners are on): onboarding
  /// retries hourly, so hosts that happen to join mid-fault simply come up
  /// late.
  struct ChaosConfig {
    bool enabled = false;
    /// Server isolated from the whole client population.
    util::Duration partition_start = 5 * util::kDay;
    util::Duration partition_end = 6 * util::kDay;
    /// Server process down: Stop() at start, then a new server over the
    /// same database (WAL replay is the recovery path). Sessions are lost;
    /// clients re-login automatically when replaying queued ratings.
    util::Duration crash_start = 12 * util::kDay;
    util::Duration crash_end = 12 * util::kDay + 6 * util::kHour;
    /// Degraded-network window: extra loss, duplication and corruption.
    util::Duration degrade_start = 20 * util::kDay;
    util::Duration degrade_end = 22 * util::kDay;
    double degrade_loss = 0.10;
    double degrade_duplication = 0.02;
    double degrade_corruption = 0.05;
  };
  ChaosConfig chaos;

  /// §2.1 bootstrapping: pre-seed the most popular fraction of the corpus
  /// with reliable external scores before the run.
  bool bootstrap = false;
  double bootstrap_fraction = 0.5;
  int bootstrap_votes = 25;

  std::uint64_t seed = 1234;
};

/// Aggregated results of a scenario run.
struct ScenarioResult {
  /// Outcomes indexed by ProtectionKind value; groups with zero hosts are
  /// present but empty.
  std::array<GroupOutcome, 3> groups;

  /// Mean absolute error between final aggregated scores and ground-truth
  /// quality, over software with at least one community vote.
  double score_mae = 0.0;
  int scored_software = 0;
  /// Software with *any* visible score (community votes or bootstrap
  /// prior) — the coverage a querying user experiences — and the MAE over
  /// those entries.
  int visible_software = 0;
  double visible_score_mae = 0.0;
  std::size_t total_votes = 0;
  std::size_t total_remarks = 0;
  server::ServerStats server_stats;

  const GroupOutcome& group(ProtectionKind kind) const {
    return groups[static_cast<std::size_t>(kind)];
  }
};

/// Builds and drives a full simulation: server + RPC + clients + hosts +
/// users + (optional) baseline scanner, on one deterministic event loop.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioConfig config);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Runs the whole scenario and returns the aggregated results. Call once.
  ScenarioResult Run();

  // Component access for benches that need to intervene mid-run or inspect
  // internals afterwards (attack drivers, score dumps, ...).
  net::EventLoop& loop() { return loop_; }
  net::SimNetwork& network() { return *network_; }
  net::FaultInjector& faults() { return injector_; }
  /// The single server (single-server mode only; aborts in cluster mode —
  /// use cluster() there).
  server::ReputationServer& server();
  /// The shard cluster and router in cluster mode; null otherwise.
  cluster::ShardCluster* cluster() { return cluster_.get(); }
  cluster::Router* router() { return router_.get(); }
  SoftwareEcosystem& ecosystem() { return eco_; }
  SignatureBaseline& baseline() { return baseline_; }
  std::vector<std::unique_ptr<SimHost>>& hosts() { return hosts_; }
  util::Rng& rng() { return rng_; }

  /// Ground-truth lookup by digest (includes polymorphic variants only if
  /// registered by the caller).
  const SoftwareSpec* FindSpec(const core::SoftwareId& id) const;

  /// Simulated server crash: the RPC endpoint vanishes, the periodic
  /// aggregation stops, every session dies. Exposed so benches can script
  /// their own fault timelines beyond ChaosConfig's. In cluster mode this
  /// fences shard 0's primary instead.
  void CrashServer();
  /// Brings a fresh server process up over the same database (recovering
  /// durable state from its WAL when one is configured). In cluster mode
  /// this promotes shard 0's backup — the replicated equivalent of a
  /// restart-with-recovery.
  void RestartServer();

 private:
  void SetUpHosts();
  void WireClient(SimHost* host, int index);
  void SetUpAccounts();
  /// Register → activate → login over RPC; steps that fail while a fault
  /// window is open retry hourly instead of aborting the run.
  void OnboardClient(client::ClientApp* app);
  void ActivateClient(client::ClientApp* app, const std::string& token);
  void LoginClient(client::ClientApp* app);
  void ScheduleChaos(util::TimePoint start);
  void ApplyCommunityHistory();
  void ApplyBootstrap();
  void ScheduleExecutions();
  ScenarioResult Collect();

  ScenarioConfig config_;
  util::Rng rng_;
  net::EventLoop loop_;
  /// Declared before network_ so it outlives the network that consults it.
  net::FaultInjector injector_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<server::ReputationServer> server_;
  std::unique_ptr<cluster::ShardCluster> cluster_;
  std::unique_ptr<cluster::Router> router_;
  SoftwareEcosystem eco_;
  SignatureBaseline baseline_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<util::TimePoint> join_times_;  ///< parallel to hosts_
  std::array<GroupOutcome, 3> outcomes_;
  std::unordered_map<core::SoftwareId, std::size_t, core::SoftwareIdHash>
      digest_index_;
  bool ran_ = false;
};

}  // namespace pisrep::sim

#endif  // PISREP_SIM_SCENARIO_H_
