#include "sim/software_ecosystem.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::sim {

namespace {

using core::Behavior;
using core::BehaviorSet;
using core::ConsentLevel;
using core::ConsequenceLevel;
using core::PisCategory;

/// Candidate behaviours per consequence column, used so generated behaviour
/// sets are consistent with the ground-truth category.
const std::vector<Behavior>& SevereBehaviors() {
  // Leaky singleton, safe during static teardown.
  // pisrep-lint: allow(raw-new-delete)
  static const auto& v = *new std::vector<Behavior>{
      Behavior::kSendsPersonalData, Behavior::kDialsPremium,
      Behavior::kKeylogging};
  return v;
}
const std::vector<Behavior>& ModerateBehaviors() {
  // Leaky singleton, safe during static teardown.
  // pisrep-lint: allow(raw-new-delete)
  static const auto& v = *new std::vector<Behavior>{
      Behavior::kPopupAds,        Behavior::kTracksUsage,
      Behavior::kNoUninstall,     Behavior::kChangesSettings,
      Behavior::kBundlesSoftware, Behavior::kDegradesPerformance};
  return v;
}
const std::vector<Behavior>& TolerableBehaviors() {
  // Leaky singleton, safe during static teardown.
  // pisrep-lint: allow(raw-new-delete)
  static const auto& v = *new std::vector<Behavior>{
      Behavior::kShowsAds, Behavior::kStartupRegistration};
  return v;
}

BehaviorSet GenerateBehaviors(ConsequenceLevel level, util::Rng& rng) {
  BehaviorSet set = core::kNoBehaviors;
  auto add_some = [&](const std::vector<Behavior>& pool, int min_count) {
    int count = min_count + static_cast<int>(rng.NextBelow(2));
    for (int i = 0; i < count; ++i) {
      set = core::WithBehavior(set, pool[rng.NextIndex(pool.size())]);
    }
  };
  switch (level) {
    case ConsequenceLevel::kSevere:
      add_some(SevereBehaviors(), 1);
      add_some(ModerateBehaviors(), 1);
      break;
    case ConsequenceLevel::kModerate:
      add_some(ModerateBehaviors(), 1);
      if (rng.NextBool(0.5)) add_some(TolerableBehaviors(), 1);
      break;
    case ConsequenceLevel::kTolerable:
      if (rng.NextBool(0.4)) add_some(TolerableBehaviors(), 1);
      break;
  }
  // Defensive: the generated set must map back to the intended column.
  PISREP_CHECK(core::AssessConsequence(set) == level ||
               (level == ConsequenceLevel::kTolerable &&
                set == core::kNoBehaviors))
      << "behaviour generation inconsistent with category";
  return set;
}

core::DisclosureProfile GenerateDisclosure(ConsentLevel level,
                                           util::Rng& rng) {
  core::DisclosureProfile profile;
  switch (level) {
    case ConsentLevel::kHigh:
      profile.disclosed = true;
      profile.plain_language = true;
      profile.eula_word_count = 300 + static_cast<int>(rng.NextBelow(1500));
      break;
    case ConsentLevel::kMedium:
      // §1: the behaviour is "stated in the license agreement that the user
      // already has accepted" — disclosed, but buried.
      profile.disclosed = true;
      profile.plain_language = rng.NextBool(0.2);
      profile.eula_word_count = 4000 + static_cast<int>(rng.NextBelow(6000));
      break;
    case ConsentLevel::kLow:
      profile.disclosed = false;
      profile.plain_language = false;
      profile.eula_word_count = 0;
      break;
  }
  return profile;
}

}  // namespace

double SoftwareEcosystem::TrueQualityFor(PisCategory category) {
  switch (category) {
    case PisCategory::kLegitimate:
      return 8.5;
    case PisCategory::kAdverse:
      return 6.0;
    case PisCategory::kDoubleAgent:
      return 3.0;
    case PisCategory::kSemiTransparent:
      return 7.0;
    case PisCategory::kUnsolicited:
      return 4.5;
    case PisCategory::kSemiParasite:
      return 2.5;
    case PisCategory::kCovert:
      return 3.5;
    case PisCategory::kTrojan:
      return 2.0;
    case PisCategory::kParasite:
      return 1.2;
  }
  return 5.0;
}

SoftwareEcosystem SoftwareEcosystem::Generate(const EcosystemConfig& config) {
  PISREP_CHECK(config.num_software > 0 && config.num_vendors > 0)
      << "ecosystem needs software and vendors";
  SoftwareEcosystem eco;
  util::Rng rng(config.seed);

  // Vendors.
  int num_pis_vendors = static_cast<int>(
      std::round(config.num_vendors * config.pis_vendor_fraction));
  for (int i = 0; i < config.num_vendors; ++i) {
    VendorProfile vendor;
    vendor.legitimate = i >= num_pis_vendors;
    vendor.name = util::StrFormat("%s-%02d",
                                  vendor.legitimate ? "TrustSoft" : "AdCorp",
                                  i);
    vendor.keys = crypto::GenerateKeyPair(rng);
    eco.vendors_.push_back(std::move(vendor));
  }

  // Normalized category CDF.
  double weight_total = 0.0;
  for (double w : config.category_weights) weight_total += w;
  PISREP_CHECK(weight_total > 0.0) << "category weights must not all be zero";

  for (int i = 0; i < config.num_software; ++i) {
    // Pick the ground-truth category.
    double u = rng.NextDouble() * weight_total;
    int cell = 0;
    double acc = 0.0;
    for (int c = 0; c < 9; ++c) {
      acc += config.category_weights[c];
      if (u <= acc) {
        cell = c;
        break;
      }
      cell = c;
    }
    PisCategory category = static_cast<PisCategory>(cell + 1);

    SoftwareSpec spec;
    spec.truth = category;
    spec.behaviors = GenerateBehaviors(core::CategoryConsequence(category),
                                       rng);
    spec.disclosure = GenerateDisclosure(core::CategoryConsent(category),
                                         rng);
    spec.true_quality = std::clamp(
        TrueQualityFor(category) + rng.NextGaussian(0.0, 0.4),
        static_cast<double>(core::kMinRating),
        static_cast<double>(core::kMaxRating));

    // Assign a vendor consistent with the category: PIS mostly comes from
    // PIS vendors, legitimate software from honest ones.
    bool is_pis = IsPis(category);
    std::vector<std::size_t> candidates;
    for (std::size_t v = 0; v < eco.vendors_.size(); ++v) {
      if (eco.vendors_[v].legitimate != is_pis) candidates.push_back(v);
    }
    if (candidates.empty()) {
      for (std::size_t v = 0; v < eco.vendors_.size(); ++v) {
        candidates.push_back(v);
      }
    }
    spec.vendor_index =
        static_cast<int>(candidates[rng.NextIndex(candidates.size())]);
    const VendorProfile& vendor = eco.vendors_[spec.vendor_index];

    // §3.3: some PIS vendors strip the company name from the binary.
    std::string company = vendor.name;
    if (is_pis && rng.NextBool(config.anonymous_pis_fraction)) {
      company.clear();
    }

    std::string file_name = util::StrFormat("app_%04d.exe", i);
    std::string version = util::StrFormat("%d.%d",
                                          1 + static_cast<int>(rng.NextBelow(5)),
                                          static_cast<int>(rng.NextBelow(10)));
    // Random content makes every digest unique.
    std::string content =
        util::StrFormat("binary:%04d:", i) + rng.NextToken(64);
    spec.image =
        client::FileImage(file_name, content, company, version);

    double sign_prob = vendor.legitimate ? config.signed_fraction_legit
                                         : config.signed_fraction_pis;
    if (!company.empty() && rng.NextBool(sign_prob)) {
      spec.image.Sign(vendor.name, vendor.keys.private_key);
    }

    eco.specs_.push_back(std::move(spec));
  }

  // Zipf popularity over a random permutation of the corpus (so rank is
  // independent of category).
  std::vector<std::size_t> ranks(eco.specs_.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
  for (std::size_t i = ranks.size(); i > 1; --i) {
    std::swap(ranks[i - 1], ranks[rng.NextIndex(i)]);
  }
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    double rank = static_cast<double>(i) + 1.0;
    eco.specs_[ranks[i]].popularity =
        1.0 / std::pow(rank, config.zipf_exponent);
  }

  double total = 0.0;
  eco.popularity_cdf_.reserve(eco.specs_.size());
  for (const SoftwareSpec& spec : eco.specs_) {
    total += spec.popularity;
    eco.popularity_cdf_.push_back(total);
  }
  return eco;
}

std::size_t SoftwareEcosystem::SamplePopular(util::Rng& rng) const {
  double u = rng.NextDouble() * popularity_cdf_.back();
  auto it = std::lower_bound(popularity_cdf_.begin(), popularity_cdf_.end(),
                             u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - popularity_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(specs_.size()) - 1));
}

}  // namespace pisrep::sim
