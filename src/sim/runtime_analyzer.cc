#include "sim/runtime_analyzer.h"

#include <algorithm>

namespace pisrep::sim {

namespace {
using util::Result;
using util::Status;
}  // namespace

RuntimeAnalyzer::RuntimeAnalyzer(Config config,
                                 server::SoftwareRegistry* registry,
                                 server::FeedStore* feeds)
    : config_(std::move(config)),
      registry_(registry),
      feeds_(feeds),
      rng_(config_.seed) {}

Status RuntimeAnalyzer::SetUpFeed(core::UserId publisher) {
  if (config_.feed_name.empty() || feeds_ == nullptr) return Status::Ok();
  if (feeds_->HasFeed(config_.feed_name)) return Status::Ok();
  return feeds_->CreateFeed(config_.feed_name, publisher,
                            "automated runtime (sandbox) analysis results");
}

Result<RuntimeAnalyzer::AnalysisResult> RuntimeAnalyzer::Analyze(
    const SoftwareSpec& spec, core::UserId publisher, util::TimePoint now) {
  const core::SoftwareId& id = spec.image.Digest();
  if (analyzed_.contains(id)) {
    // Cached: the behaviours already stand in the registry as evidence.
    AnalysisResult cached;
    cached.detected = registry_->ReportedBehaviors(id, 1);
    return cached;
  }

  AnalysisResult result;
  for (core::Behavior b : core::AllBehaviors()) {
    bool present = core::HasBehavior(spec.behaviors, b);
    if (present && rng_.NextBool(config_.sensitivity)) {
      result.detected = core::WithBehavior(result.detected, b);
      ++result.true_positives;
    } else if (present) {
      ++result.missed;
    } else if (rng_.NextBool(config_.false_positive_rate)) {
      result.detected = core::WithBehavior(result.detected, b);
      ++result.false_positives;
    }
  }

  PISREP_RETURN_IF_ERROR(registry_->RegisterSoftware(spec.image.Meta()));
  if (result.detected != core::kNoBehaviors) {
    PISREP_RETURN_IF_ERROR(registry_->ReportBehaviors(
        id, result.detected, config_.evidence_weight));
  }

  if (!config_.feed_name.empty() && feeds_ != nullptr) {
    // Score heuristic: start from a clean 8 and dock per consequence class.
    double score = 8.0;
    switch (core::AssessConsequence(result.detected)) {
      case core::ConsequenceLevel::kSevere:
        score = 1.5;
        break;
      case core::ConsequenceLevel::kModerate:
        score = 4.0;
        break;
      case core::ConsequenceLevel::kTolerable:
        score = result.detected == core::kNoBehaviors ? 8.0 : 6.5;
        break;
    }
    server::FeedEntry entry;
    entry.feed = config_.feed_name;
    entry.software = id;
    entry.score = std::clamp(score, 1.0, 10.0);
    entry.behaviors = result.detected;
    entry.note = "automated sandbox analysis";
    entry.published_at = now;
    PISREP_RETURN_IF_ERROR(feeds_->Publish(entry, publisher));
  }

  analyzed_.insert(id);
  return result;
}

}  // namespace pisrep::sim
