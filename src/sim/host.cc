#include "sim/host.h"

#include <utility>

#include "util/logging.h"

namespace pisrep::sim {

const char* ProtectionKindName(ProtectionKind kind) {
  switch (kind) {
    case ProtectionKind::kNone:
      return "unprotected";
    case ProtectionKind::kSignatureAv:
      return "signature-av";
    case ProtectionKind::kReputation:
      return "reputation";
  }
  return "?";
}

SimHost::SimHost(std::string name, ProtectionKind protection,
                 SimUserModel user, std::vector<std::size_t> installed)
    : name_(std::move(name)),
      protection_(protection),
      user_(std::move(user)),
      installed_(std::move(installed)) {}

void SimHost::AttachClient(std::unique_ptr<client::ClientApp> client) {
  PISREP_CHECK(protection_ == ProtectionKind::kReputation)
      << "client attached to non-reputation host";
  client_ = std::move(client);
}

void SimHost::AttachBaseline(const SignatureBaseline* baseline) {
  PISREP_CHECK(protection_ == ProtectionKind::kSignatureAv)
      << "baseline attached to non-AV host";
  baseline_ = baseline;
}

std::size_t SimHost::SampleInstalled(util::Rng& rng) const {
  PISREP_CHECK(!installed_.empty()) << "host has no installed software";
  return installed_[rng.NextIndex(installed_.size())];
}

void SimHost::ExecuteOne(const SoftwareEcosystem& eco,
                         std::size_t spec_index, util::TimePoint now,
                         GroupOutcome* outcome) {
  const SoftwareSpec& spec = eco.spec(spec_index);
  ++executions_;
  ++outcome->executions;

  switch (protection_) {
    case ProtectionKind::kNone:
      RecordDecision(spec, /*allowed=*/true, outcome);
      return;
    case ProtectionKind::kSignatureAv: {
      bool detected =
          baseline_ != nullptr && baseline_->IsDetected(spec.image.Digest(),
                                                        now);
      RecordDecision(spec, /*allowed=*/!detected, outcome);
      return;
    }
    case ProtectionKind::kReputation: {
      PISREP_CHECK(client_ != nullptr) << "reputation host without client";
      // The hook parks the execution; accounting happens when the decision
      // callback fires (possibly after server round-trips).
      client_->interceptor().OnExecutionRequest(
          spec.image, [this, &spec, outcome](client::ExecDecision decision) {
            RecordDecision(spec,
                           decision == client::ExecDecision::kAllow,
                           outcome);
          });
      return;
    }
  }
}

void SimHost::RecordDecision(const SoftwareSpec& spec, bool allowed,
                             GroupOutcome* outcome) {
  bool is_pis = SoftwareEcosystem::IsPis(spec.truth);
  bool is_malware = core::IsMalware(spec.truth);
  if (is_pis) {
    if (allowed) {
      ++outcome->pis_allowed;
      if (is_malware) ++outcome->malware_allowed;
      if (!infected_) {
        infected_ = true;
        ++outcome->infected_hosts;
      }
    } else {
      ++outcome->pis_blocked;
      if (is_malware) ++outcome->malware_blocked;
    }
  } else {
    if (allowed) {
      ++outcome->legit_allowed;
    } else {
      ++outcome->legit_blocked;
    }
  }
}

}  // namespace pisrep::sim
