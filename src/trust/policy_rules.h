#ifndef PISREP_TRUST_POLICY_RULES_H_
#define PISREP_TRUST_POLICY_RULES_H_

#include <string>
#include <string_view>

#include "core/policy.h"
#include "util/status.h"

namespace pisrep::trust {

/// Parses a declarative rule text into a core::Policy (§4.2 "software
/// policy manager": administrators write what may run instead of patching
/// client code). One rule per line, first match wins:
///
///   # §4.2 worked example
///   deny if blacklisted
///   allow if whitelisted
///   deny if vendor-blocked
///   allow if signed-by trusted vendor
///   deny if expert-flagged
///   allow if rating > 7.5 and votes >= 3 and no ads
///   deny if rating < 3 and votes >= 3
///   default ask
///
/// Grammar (case-insensitive, '#' starts a comment):
///   line      := "default" action | action "if" cond ("and" cond)*
///   action    := "allow" | "deny" | "ask"
///   cond      := ["not"] flag
///              | ("rating" | "feed-rating") op number
///              | "votes" ">=" integer
///              | "no" behaviors | "shows" behaviors
///   flag      := "whitelisted" | "blacklisted" | "signed"
///              | "signed-by trusted vendor" | "vendor-trusted"
///              | "vendor-blocked" | "expert-flagged" | "company-name"
///   op        := ">" | ">=" | "<" | "<="
///   behaviors := "ads" | behavior token (core::BehaviorFromName)
///
/// Rating bounds are inclusive windows (the engine's semantics), so
/// `rating > 7.5` and `rating >= 7.5` both become min_rating = 7.5.
/// "no ads" is sugar for shows_ads + popup_ads. The rule's name is its
/// trimmed source line, which is what per-rule decision metrics report.
util::Result<core::Policy> ParsePolicyRules(std::string_view text,
                                            std::string_view name);

/// The rule text reproducing core::Policy::PaperDefault() plus the PR 10
/// expert-flag deny — the worked §4.2 example the README quickstart and
/// the simulator scenario use.
std::string_view PaperExampleRules();

}  // namespace pisrep::trust

#endif  // PISREP_TRUST_POLICY_RULES_H_
