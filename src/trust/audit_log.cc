#include "trust/audit_log.h"

#include <charconv>
#include <cstdlib>
#include <string>
#include <utility>

#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"
#include "util/logging.h"
#include "util/sha256.h"

namespace pisrep::trust {

namespace {

using storage::Row;
using storage::SchemaBuilder;
using storage::Value;
using util::Result;
using util::Status;

constexpr char kFieldSep = '\x1f';

storage::TieredTable* TieredOrNull(storage::Database* db,
                                   std::string_view name) {
  if (!db->HasTable(name)) return nullptr;
  auto table = db->GetTiered(name);
  return table.ok() ? *table : nullptr;
}

}  // namespace

std::string GenesisHashHex() {
  return util::Sha256::Hash("pisrep-audit-genesis").ToHex();
}

std::string ChainHashHex(std::string_view prev_hash_hex, std::uint64_t index,
                         std::string_view kind, std::string_view payload,
                         util::TimePoint at) {
  // The canonical entry rendering is length-safe by construction: index and
  // at are decimal integers, kind never contains the separator, and payload
  // is the last field — no two distinct entries share a rendering. The
  // fields stream into the hasher directly (one hash per accepted vote on
  // the ingest hot path — no materialized concatenation).
  util::Sha256 hasher;
  char number[24];
  hasher.Update(prev_hash_hex);
  hasher.Update(std::string_view(&kFieldSep, 1));
  auto [index_end, index_ec] =
      std::to_chars(number, number + sizeof(number), index);
  hasher.Update(std::string_view(number, index_end - number));
  hasher.Update(std::string_view(&kFieldSep, 1));
  hasher.Update(kind);
  hasher.Update(std::string_view(&kFieldSep, 1));
  auto [at_end, at_ec] = std::to_chars(number, number + sizeof(number), at);
  hasher.Update(std::string_view(number, at_end - number));
  hasher.Update(std::string_view(&kFieldSep, 1));
  hasher.Update(payload);
  return hasher.Finish().ToHex();
}

std::string CheckpointMessage(std::uint64_t index, std::string_view hash_hex,
                              util::TimePoint at) {
  std::string message("pisrep-audit-checkpoint");
  message += kFieldSep;
  message += std::to_string(index);
  message += kFieldSep;
  message += hash_hex;
  message += kFieldSep;
  message += std::to_string(at);
  return message;
}

AuditLog::AuditLog(storage::Database* db) : db_(db) {
  if (!db_->HasTable(kAuditTable)) {
    Status status = db_->CreateTable(SchemaBuilder(std::string(kAuditTable))
                                         .Int("idx")
                                         .Str("kind")
                                         .Str("payload")
                                         .Int("at")
                                         .Str("hash")
                                         .PrimaryKey("idx")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  if (!db_->HasTable(kCheckpointTable)) {
    Status status =
        db_->CreateTable(SchemaBuilder(std::string(kCheckpointTable))
                             .Int("idx")
                             .Str("hash")
                             .Int("at")
                             .Str("sig")
                             .PrimaryKey("idx")
                             .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  log_table_ = TieredOrNull(db_, kAuditTable);
  checkpoint_table_ = TieredOrNull(db_, kCheckpointTable);
  // Recover the head from persisted rows (WAL replay / replica promotion):
  // the row with the highest index carries the chain head.
  head_hash_ = GenesisHashHex();
  if (storage::TieredTable* log = log_table_) {
    log->ForEach([this](const Row& row) {
      auto idx = static_cast<std::uint64_t>(row[0].AsInt());
      if (idx > head_index_) {
        head_index_ = idx;
        head_hash_ = row[4].AsStr();
      }
    });
  }
  if (storage::TieredTable* cps = checkpoint_table_) {
    cps->ForEach([this](const Row& row) {
      ++checkpoint_count_;
      auto idx = static_cast<std::uint64_t>(row[0].AsInt());
      if (idx >= last_checkpoint_index_) {
        last_checkpoint_index_ = idx;
        last_checkpoint_at_ = row[2].AsInt();
      }
    });
  }
}

Result<AuditEntry> AuditLog::Append(std::string_view kind,
                                    std::string_view payload,
                                    util::TimePoint at) {
  AuditEntry entry;
  entry.index = head_index_ + 1;
  entry.kind = std::string(kind);
  entry.payload = std::string(payload);
  entry.at = at;
  entry.hash_hex = ChainHashHex(head_hash_, entry.index, kind, payload, at);

  storage::TieredTable* log = log_table_;
  if (log == nullptr) {
    return Status::FailedPrecondition("audit table was not created");
  }
  PISREP_RETURN_IF_ERROR(log->Insert(Row{
      Value::Int(static_cast<std::int64_t>(entry.index)),
      Value::Str(entry.kind),
      Value::Str(entry.payload),
      Value::Int(entry.at),
      Value::Str(entry.hash_hex),
  }));
  head_index_ = entry.index;
  head_hash_ = entry.hash_hex;
  return entry;
}

Status AuditLog::WriteCheckpoint(const crypto::PrivateKey& key,
                                 util::TimePoint at) {
  if (head_index_ == 0) {
    return Status::FailedPrecondition("audit chain is empty");
  }
  crypto::Signature sig =
      crypto::Sign(key, CheckpointMessage(head_index_, head_hash_, at));
  storage::TieredTable* cps = checkpoint_table_;
  if (cps == nullptr) {
    return Status::FailedPrecondition("checkpoint table was not created");
  }
  PISREP_RETURN_IF_ERROR(cps->Upsert(Row{
      Value::Int(static_cast<std::int64_t>(head_index_)),
      Value::Str(head_hash_),
      Value::Int(at),
      Value::Str(std::to_string(sig)),
  }));
  if (last_checkpoint_index_ != head_index_) ++checkpoint_count_;
  last_checkpoint_index_ = head_index_;
  last_checkpoint_at_ = at;
  return Status::Ok();
}

ChainVerifyResult VerifyAuditChain(storage::Database* db) {
  ChainVerifyResult result;
  result.head_hash = GenesisHashHex();
  storage::TieredTable* log = TieredOrNull(db, kAuditTable);
  if (log == nullptr) {
    result.ok = true;  // no chain is a valid (empty) chain
    return result;
  }
  std::uint64_t rows = log->size();
  std::string prev = GenesisHashHex();
  // Walk indexes 1..N in order, recomputing each link from the *recomputed*
  // predecessor. Any single-byte mutation of a persisted field — kind,
  // payload, timestamp, or the stored hash itself — makes the stored hash
  // disagree with the recomputation at exactly that index; a mutated or
  // deleted primary key surfaces as the first missing index. (A rewrite of
  // an entire suffix that re-hashes consistently is beyond what the bare
  // chain can see — that is what the signed checkpoints and the
  // cross-replica head comparison pin down.)
  for (std::uint64_t i = 1; i <= rows; ++i) {
    auto row = log->Get(Value::Int(static_cast<std::int64_t>(i)));
    if (!row.ok()) {
      result.first_bad_index = i;
      result.error = "missing audit index " + std::to_string(i);
      return result;
    }
    const std::string kind = (*row)[1].AsStr();
    const std::string payload = (*row)[2].AsStr();
    const util::TimePoint at = (*row)[3].AsInt();
    const std::string stored = (*row)[4].AsStr();
    std::string expect = ChainHashHex(prev, i, kind, payload, at);
    if (stored != expect) {
      result.first_bad_index = i;
      result.error = "hash mismatch at index " + std::to_string(i);
      return result;
    }
    prev = expect;
    ++result.entries;
  }
  result.ok = true;
  result.head_hash = prev;
  return result;
}

CheckpointVerifyResult VerifyCheckpoints(storage::Database* db,
                                         const crypto::PublicKey& key) {
  CheckpointVerifyResult result;
  storage::TieredTable* cps = TieredOrNull(db, kCheckpointTable);
  if (cps == nullptr) {
    result.ok = true;
    return result;
  }
  // Recompute the chain once; each checkpoint must name the recomputed hash
  // at its index and carry a valid signature under the server's audit key.
  ChainVerifyResult chain = VerifyAuditChain(db);
  storage::TieredTable* log = TieredOrNull(db, kAuditTable);
  bool failed = false;
  cps->ForEach([&](const Row& row) {
    if (failed) return;
    auto idx = static_cast<std::uint64_t>(row[0].AsInt());
    const std::string hash = row[1].AsStr();
    const util::TimePoint at = row[2].AsInt();
    crypto::Signature sig = 0;
    {
      const std::string sig_str = row[3].AsStr();
      char* end = nullptr;
      sig = std::strtoull(sig_str.c_str(), &end, 10);
    }
    if (!crypto::Verify(key, CheckpointMessage(idx, hash, at), sig)) {
      failed = true;
      result.first_bad_index = idx;
      result.error = "bad checkpoint signature at index " +
                     std::to_string(idx);
      return;
    }
    // Replay the chain prefix up to idx to compare hashes. The chain was
    // already verified above; if it is broken before idx the checkpoint is
    // reported bad too (the history under it cannot be trusted).
    if (!chain.ok && idx >= chain.first_bad_index) {
      failed = true;
      result.first_bad_index = idx;
      result.error = "checkpoint covers corrupted chain prefix";
      return;
    }
    if (log != nullptr) {
      auto entry = log->Get(Value::Int(static_cast<std::int64_t>(idx)));
      if (!entry.ok() || (*entry)[4].AsStr() != hash) {
        failed = true;
        result.first_bad_index = idx;
        result.error =
            "checkpoint hash does not match chain at index " +
            std::to_string(idx);
        return;
      }
    }
    ++result.checked;
  });
  result.ok = !failed;
  return result;
}

AuditChainStatus AuditChainStatusOf(storage::Database* db) {
  AuditChainStatus status;
  status.present = db->HasTable(kAuditTable);
  ChainVerifyResult chain = VerifyAuditChain(db);
  status.ok = chain.ok;
  status.length = chain.entries;
  status.first_bad_index = chain.first_bad_index;
  status.head_hash = chain.head_hash;
  return status;
}

}  // namespace pisrep::trust
