#ifndef PISREP_TRUST_MANIFEST_STORE_H_
#define PISREP_TRUST_MANIFEST_STORE_H_

#include <memory>
#include <unordered_map>

#include "core/types.h"
#include "storage/database.h"
#include "trust/signed_statement.h"
#include "util/atomic_shared_ptr.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::trust {

/// Persisted, verified software manifests, keyed by software id. Only
/// manifests whose vendor signature already verified are ever stored — the
/// store records *facts*, so readers never re-verify.
///
/// Reads go through an RCU'd immutable index (rebuilt on each Put) so both
/// the locked QuerySoftware path and the lock-free snapshot path can
/// annotate answers without taking the server mutex.
class ManifestStore {
 public:
  using Index = std::unordered_map<core::SoftwareId, SoftwareManifest,
                                   core::SoftwareIdHash>;

  inline static constexpr std::string_view kTable = "manifests";

  /// Creates the table when absent and loads persisted manifests.
  explicit ManifestStore(storage::Database* db);

  /// Persists a verified manifest (last write per software wins) and
  /// republishes the read index.
  util::Status Put(const SoftwareManifest& manifest, util::TimePoint at);

  /// The current immutable index; safe to read from any thread.
  std::shared_ptr<const Index> Snapshot() const { return index_.Load(); }

  std::size_t size() const;

 private:
  void Republish(Index next);

  storage::Database* db_;
  util::AtomicSharedPtr<const Index> index_;
};

}  // namespace pisrep::trust

#endif  // PISREP_TRUST_MANIFEST_STORE_H_
