#include "trust/signed_statement.h"

#include <utility>

#include "util/hex.h"
#include "util/string_util.h"

namespace pisrep::trust {

namespace {

using util::Result;
using util::Status;
using xml::XmlNode;

constexpr char kFieldSep = '\x1f';

}  // namespace

std::string RenderScore(double score) {
  return util::StrFormat("%.2f", score);
}

util::Result<core::SoftwareId> SoftwareIdFromHex(std::string_view hex) {
  core::SoftwareId id;
  PISREP_ASSIGN_OR_RETURN(auto bytes, util::HexDecode(hex));
  if (bytes.size() != id.bytes.size()) {
    return Status::InvalidArgument("software id must be 40 hex characters");
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) id.bytes[i] = bytes[i];
  return id;
}

std::string ManifestMessage(const SoftwareManifest& manifest) {
  std::string message("pisrep-manifest");
  message += kFieldSep;
  message += manifest.vendor;
  message += kFieldSep;
  message += manifest.file_name;
  message += kFieldSep;
  message += manifest.version;
  message += kFieldSep;
  message += manifest.software.ToHex();
  return message;
}

void SignManifest(const crypto::PrivateKey& key, SoftwareManifest* manifest) {
  manifest->signature = crypto::Sign(key, ManifestMessage(*manifest));
}

bool VerifyManifest(const crypto::TrustStore& store,
                    const SoftwareManifest& manifest) {
  return store.VerifySignatureAs(crypto::KeyRole::kVendor, manifest.vendor,
                                 ManifestMessage(manifest),
                                 manifest.signature);
}

XmlNode ManifestToXml(const SoftwareManifest& manifest) {
  XmlNode node("manifest");
  node.SetAttribute("vendor", manifest.vendor);
  node.SetAttribute("file_name", manifest.file_name);
  node.SetAttribute("version", manifest.version);
  node.SetAttribute("software", manifest.software.ToHex());
  node.SetAttribute("sig", std::to_string(manifest.signature));
  return node;
}

Result<SoftwareManifest> ManifestFromXml(const XmlNode& node) {
  SoftwareManifest manifest;
  PISREP_ASSIGN_OR_RETURN(manifest.vendor, node.Attribute("vendor"));
  manifest.file_name = node.AttributeOr("file_name", "");
  manifest.version = node.AttributeOr("version", "");
  PISREP_ASSIGN_OR_RETURN(std::string hex, node.Attribute("software"));
  PISREP_ASSIGN_OR_RETURN(manifest.software, SoftwareIdFromHex(hex));
  PISREP_ASSIGN_OR_RETURN(std::string sig, node.Attribute("sig"));
  PISREP_ASSIGN_OR_RETURN(std::int64_t parsed, util::ParseInt64(sig));
  manifest.signature = static_cast<crypto::Signature>(parsed);
  return manifest;
}

std::string AdvisoryMessage(const ExpertAdvisory& advisory) {
  std::string message("pisrep-advisory");
  message += kFieldSep;
  message += advisory.expert;
  message += kFieldSep;
  message += advisory.software.ToHex();
  message += kFieldSep;
  message += advisory.flagged ? '1' : '0';
  message += kFieldSep;
  message += RenderScore(advisory.score);
  message += kFieldSep;
  message += core::BehaviorSetToString(advisory.behaviors);
  message += kFieldSep;
  message += std::to_string(advisory.issued_at);
  message += kFieldSep;
  message += advisory.note;
  return message;
}

void SignAdvisory(const crypto::PrivateKey& key, ExpertAdvisory* advisory) {
  advisory->signature = crypto::Sign(key, AdvisoryMessage(*advisory));
}

bool VerifyAdvisory(const crypto::TrustStore& store,
                    const ExpertAdvisory& advisory) {
  return store.VerifySignatureAs(crypto::KeyRole::kExpert, advisory.expert,
                                 AdvisoryMessage(advisory),
                                 advisory.signature);
}

XmlNode AdvisoryToXml(const ExpertAdvisory& advisory) {
  XmlNode node("advisory");
  node.SetAttribute("expert", advisory.expert);
  node.SetAttribute("software", advisory.software.ToHex());
  node.SetAttribute("flagged", advisory.flagged ? "1" : "0");
  node.SetAttribute("score", RenderScore(advisory.score));
  node.SetAttribute("behaviors", core::BehaviorSetToString(advisory.behaviors));
  node.SetAttribute("issued_at", std::to_string(advisory.issued_at));
  node.SetAttribute("sig", std::to_string(advisory.signature));
  if (!advisory.note.empty()) node.set_text(advisory.note);
  return node;
}

Result<ExpertAdvisory> AdvisoryFromXml(const XmlNode& node) {
  ExpertAdvisory advisory;
  PISREP_ASSIGN_OR_RETURN(advisory.expert, node.Attribute("expert"));
  PISREP_ASSIGN_OR_RETURN(std::string hex, node.Attribute("software"));
  PISREP_ASSIGN_OR_RETURN(advisory.software, SoftwareIdFromHex(hex));
  advisory.flagged = node.AttributeOr("flagged", "0") == "1";
  // Re-parsing then re-rendering the score must reproduce the signed
  // string, which RenderScore's fixed "%.2f" form guarantees.
  PISREP_ASSIGN_OR_RETURN(advisory.score,
                          util::ParseDouble(node.AttributeOr("score", "0")));
  PISREP_ASSIGN_OR_RETURN(
      advisory.behaviors,
      core::BehaviorSetFromString(node.AttributeOr("behaviors", "")));
  PISREP_ASSIGN_OR_RETURN(
      advisory.issued_at,
      util::ParseInt64(node.AttributeOr("issued_at", "0")));
  PISREP_ASSIGN_OR_RETURN(std::string sig, node.Attribute("sig"));
  PISREP_ASSIGN_OR_RETURN(std::int64_t parsed, util::ParseInt64(sig));
  advisory.signature = static_cast<crypto::Signature>(parsed);
  advisory.note = node.text();
  return advisory;
}

}  // namespace pisrep::trust
