#ifndef PISREP_TRUST_SIGNED_STATEMENT_H_
#define PISREP_TRUST_SIGNED_STATEMENT_H_

#include <string>
#include <string_view>

#include "core/behavior.h"
#include "core/types.h"
#include "crypto/signing.h"
#include "crypto/trust_store.h"
#include "util/clock.h"
#include "util/status.h"
#include "xml/xml_node.h"

namespace pisrep::trust {

/// A vendor's signed claim that a binary is theirs (§4.2: white-list
/// software "digitally signed by a trusted vendor"). The vendor signs the
/// tuple (name, file name, version, sha1) with its pinned key; the server
/// verifies against its TrustStore before the claim may influence any
/// client decision.
struct SoftwareManifest {
  std::string vendor;       ///< pinned-certificate name (kVendor role)
  std::string file_name;
  std::string version;
  core::SoftwareId software;  ///< SHA-1 of the binary the claim covers
  crypto::Signature signature = 0;
};

/// Canonical byte string the manifest signature covers.
std::string ManifestMessage(const SoftwareManifest& manifest);

/// Signs `manifest` in place with the vendor's private key.
void SignManifest(const crypto::PrivateKey& key, SoftwareManifest* manifest);

/// True when the signature verifies under the *vendor-role* certificate
/// pinned for `manifest.vendor` (revoked or expert-role keys never pass).
bool VerifyManifest(const crypto::TrustStore& store,
                    const SoftwareManifest& manifest);

/// Wire form: `<manifest vendor=.. file_name=.. version=.. software=..
/// sig=../>` — carried identically by the XML and binary codecs.
xml::XmlNode ManifestToXml(const SoftwareManifest& manifest);
util::Result<SoftwareManifest> ManifestFromXml(const xml::XmlNode& node);

/// An expert's signed advisory about a binary: a flag, a score, and the
/// behaviors observed. Accepted advisories are republished through the
/// ordinary feed plumbing (feed name == expert name) so clients pick them
/// up over the existing QueryFeed path.
struct ExpertAdvisory {
  std::string expert;       ///< pinned-certificate name (kExpert role)
  core::SoftwareId software;
  bool flagged = false;     ///< true: expert marks the binary as PIS
  double score = 0.0;       ///< expert's rating in [1, 10]
  core::BehaviorSet behaviors = core::kNoBehaviors;
  std::string note;
  util::TimePoint issued_at = 0;
  crypto::Signature signature = 0;
};

/// Canonical byte string the advisory signature covers. Built from the
/// same renderings the XML form carries, so a re-serialised advisory
/// verifies bit-identically on the server.
std::string AdvisoryMessage(const ExpertAdvisory& advisory);

void SignAdvisory(const crypto::PrivateKey& key, ExpertAdvisory* advisory);

/// True when the signature verifies under the *expert-role* certificate
/// pinned for `advisory.expert`.
bool VerifyAdvisory(const crypto::TrustStore& store,
                    const ExpertAdvisory& advisory);

xml::XmlNode AdvisoryToXml(const ExpertAdvisory& advisory);
util::Result<ExpertAdvisory> AdvisoryFromXml(const xml::XmlNode& node);

/// Canonical rendering of an advisory score (shared by message and XML so
/// float formatting can never make a signature fail to round-trip).
std::string RenderScore(double score);

/// Parses a 40-hex-character SHA-1 into a SoftwareId.
util::Result<core::SoftwareId> SoftwareIdFromHex(std::string_view hex);

}  // namespace pisrep::trust

#endif  // PISREP_TRUST_SIGNED_STATEMENT_H_
