#ifndef PISREP_TRUST_AUDIT_LOG_H_
#define PISREP_TRUST_AUDIT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/signing.h"
#include "storage/database.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::trust {

/// Table names, shared with tools/audit and the anti-entropy fencing path.
inline constexpr std::string_view kAuditTable = "audit_log";
inline constexpr std::string_view kCheckpointTable = "audit_checkpoints";

/// One hash-chained audit record. The chain invariant is
///   h_i = SHA-256(h_{i-1} || index | kind | payload | at)
/// with h_0 a fixed genesis constant, so mutating (or deleting) any
/// historical entry breaks every later link — a replica cannot rewrite a
/// vote without either changing its chain head or leaving a detectable
/// inconsistency at the exact mutated index.
struct AuditEntry {
  std::uint64_t index = 0;  ///< 1-based chain position (the primary key)
  std::string kind;         ///< "vote", "remark", "moderation", ...
  std::string payload;      ///< canonical rendering of the accepted mutation
  util::TimePoint at = 0;
  std::string hash_hex;     ///< h_index, hex encoded
};

/// h_0: the chain anchor every verifier starts from.
std::string GenesisHashHex();

/// Computes h_i from h_{i-1} and the entry fields (the single definition of
/// the chain function — AuditLog, the verifier and tools/audit all call it).
std::string ChainHashHex(std::string_view prev_hash_hex, std::uint64_t index,
                         std::string_view kind, std::string_view payload,
                         util::TimePoint at);

/// The message a signed checkpoint covers.
std::string CheckpointMessage(std::uint64_t index, std::string_view hash_hex,
                              util::TimePoint at);

/// The tamper-evident audit log of one server (§PR10 trust plane): every
/// accepted vote/moderation/trust-change appends one entry; periodically
/// the server signs (index, head hash) into a checkpoint row so an offline
/// verifier can pin the history to the server's audit key. Both tables are
/// ordinary database tables — they ride the WAL (or the cold store when the
/// caller tiers them), replicate frame-by-frame to replicas, and survive
/// crash recovery like every other row.
class AuditLog {
 public:
  /// Creates the tables when absent and recovers the chain head by replay
  /// (a full scan — construction-time only; appends are O(1) after).
  explicit AuditLog(storage::Database* db);

  /// Appends one entry, extending the chain.
  util::Result<AuditEntry> Append(std::string_view kind,
                                  std::string_view payload,
                                  util::TimePoint at);

  /// Signs the current head into the checkpoint table.
  util::Status WriteCheckpoint(const crypto::PrivateKey& key,
                               util::TimePoint at);

  std::uint64_t head_index() const { return head_index_; }
  const std::string& head_hash() const { return head_hash_; }
  std::uint64_t checkpoint_count() const { return checkpoint_count_; }
  /// Head index at the last checkpoint (0 when none yet).
  std::uint64_t last_checkpoint_index() const {
    return last_checkpoint_index_;
  }
  util::TimePoint last_checkpoint_at() const { return last_checkpoint_at_; }

 private:
  storage::Database* db_;
  /// Resolved once at construction: Append runs per accepted mutation on
  /// the ingest hot path, so it must not pay a table lookup each time.
  storage::TieredTable* log_table_ = nullptr;
  storage::TieredTable* checkpoint_table_ = nullptr;
  std::uint64_t head_index_ = 0;
  std::string head_hash_;
  std::uint64_t checkpoint_count_ = 0;
  std::uint64_t last_checkpoint_index_ = 0;
  util::TimePoint last_checkpoint_at_ = 0;
};

/// Result of recomputing the whole chain from genesis.
struct ChainVerifyResult {
  bool ok = false;
  std::uint64_t entries = 0;
  /// First index whose stored row contradicts the recomputed chain (a
  /// mutated field, a broken hash link, or a gap); 0 when the chain is
  /// intact. This is the number tools/audit prints — "detects any
  /// historical mutation and names the first corrupted index".
  std::uint64_t first_bad_index = 0;
  std::string head_hash;  ///< recomputed head (genesis when empty)
  std::string error;      ///< human-readable diagnosis when !ok
};

/// Recomputes h_1..h_N from the persisted rows and reports the first
/// divergence. Works on any database holding the audit tables (a live
/// primary, a replica, or a WAL opened offline by tools/audit).
ChainVerifyResult VerifyAuditChain(storage::Database* db);

/// Result of checking every signed checkpoint against the recomputed chain.
struct CheckpointVerifyResult {
  bool ok = false;
  std::uint64_t checked = 0;
  std::uint64_t first_bad_index = 0;  ///< audit index of the first bad one
  std::string error;
};

/// Verifies each checkpoint's signature under `key` and that its recorded
/// hash equals the recomputed chain hash at its index.
CheckpointVerifyResult VerifyCheckpoints(storage::Database* db,
                                         const crypto::PublicKey& key);

/// What a replica reports (and anti-entropy compares) about its chain:
/// presence, length, head, and whether the persisted rows still recompute
/// cleanly. `ok == false` on a caught-up replica is the fencing signal — a
/// historical row was rewritten underneath the chain.
struct AuditChainStatus {
  bool present = false;
  bool ok = true;
  std::uint64_t length = 0;
  std::uint64_t first_bad_index = 0;
  std::string head_hash;
};

AuditChainStatus AuditChainStatusOf(storage::Database* db);

}  // namespace pisrep::trust

#endif  // PISREP_TRUST_AUDIT_LOG_H_
