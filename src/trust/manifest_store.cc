#include "trust/manifest_store.h"

#include <string>
#include <utility>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::trust {

namespace {

using storage::Row;
using storage::SchemaBuilder;
using storage::Value;
using util::Status;

}  // namespace

ManifestStore::ManifestStore(storage::Database* db) : db_(db) {
  if (!db_->HasTable(kTable)) {
    Status status = db_->CreateTable(SchemaBuilder(std::string(kTable))
                                         .Str("software")
                                         .Str("vendor")
                                         .Str("file_name")
                                         .Str("version")
                                         .Str("sig")
                                         .Int("verified_at")
                                         .PrimaryKey("software")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  Index loaded;
  auto scan = db_->ForEachRow(kTable, [&loaded](const Row& row) {
    SoftwareManifest manifest;
    auto id = SoftwareIdFromHex(row[0].AsStr());
    if (!id.ok()) return;
    manifest.software = *id;
    manifest.vendor = row[1].AsStr();
    manifest.file_name = row[2].AsStr();
    manifest.version = row[3].AsStr();
    auto sig = util::ParseInt64(row[4].AsStr());
    manifest.signature =
        sig.ok() ? static_cast<crypto::Signature>(*sig) : 0;
    loaded[manifest.software] = std::move(manifest);
  });
  PISREP_CHECK(scan.ok()) << scan.ToString();
  Republish(std::move(loaded));
}

Status ManifestStore::Put(const SoftwareManifest& manifest,
                          util::TimePoint at) {
  PISREP_ASSIGN_OR_RETURN(storage::TieredTable * table,
                          db_->GetTiered(kTable));
  PISREP_RETURN_IF_ERROR(table->Upsert(Row{
      Value::Str(manifest.software.ToHex()),
      Value::Str(manifest.vendor),
      Value::Str(manifest.file_name),
      Value::Str(manifest.version),
      Value::Str(std::to_string(manifest.signature)),
      Value::Int(at),
  }));
  Index next = *index_.Load();
  next[manifest.software] = manifest;
  Republish(std::move(next));
  return Status::Ok();
}

std::size_t ManifestStore::size() const { return index_.Load()->size(); }

void ManifestStore::Republish(Index next) {
  index_.Store(std::make_shared<const Index>(std::move(next)));
}

}  // namespace pisrep::trust
