#include "trust/policy_rules.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/behavior.h"
#include "util/string_util.h"

namespace pisrep::trust {

namespace {

using core::Behavior;
using core::BehaviorSet;
using core::PolicyAction;
using core::PolicyRule;
using util::Result;
using util::Status;

Status ParseError(std::size_t line_no, std::string_view detail) {
  return Status::InvalidArgument(
      util::StrFormat("policy rules line %zu: %s", line_no,
                      std::string(detail).c_str()));
}

Result<PolicyAction> ActionFromWord(std::string_view word) {
  if (word == "allow") return PolicyAction::kAllow;
  if (word == "deny") return PolicyAction::kDeny;
  if (word == "ask") return PolicyAction::kAsk;
  return Status::InvalidArgument("unknown action: " + std::string(word));
}

Result<BehaviorSet> BehaviorsFromWord(std::string_view word) {
  // "ads" is sugar for both advertisement behaviours, matching the paper's
  // "shows no advertisements" phrasing.
  if (word == "ads") {
    return static_cast<BehaviorSet>(Behavior::kShowsAds) |
           static_cast<BehaviorSet>(Behavior::kPopupAds);
  }
  PISREP_ASSIGN_OR_RETURN(Behavior behavior, core::BehaviorFromName(word));
  return static_cast<BehaviorSet>(behavior);
}

/// Applies one condition (already split on "and") to the rule under
/// construction. `words` are the lowercased tokens of the condition.
Status ApplyCondition(const std::vector<std::string>& words,
                      std::size_t line_no, PolicyRule* rule) {
  if (words.empty()) return ParseError(line_no, "empty condition");

  std::size_t i = 0;
  bool negate = false;
  if (words[i] == "not") {
    negate = true;
    ++i;
    if (i == words.size()) {
      return ParseError(line_no, "dangling 'not'");
    }
  }
  const std::string& head = words[i];

  auto set_flag = [&](std::optional<bool>* flag) -> Status {
    if (i + 1 != words.size()) {
      return ParseError(line_no, "unexpected tokens after '" + head + "'");
    }
    *flag = !negate;
    return Status::Ok();
  };

  if (head == "whitelisted") return set_flag(&rule->require_whitelist);
  if (head == "blacklisted") return set_flag(&rule->require_blacklist);
  if (head == "signed") return set_flag(&rule->require_valid_signature);
  if (head == "vendor-trusted") return set_flag(&rule->require_vendor_trusted);
  if (head == "vendor-blocked") return set_flag(&rule->require_vendor_blocked);
  if (head == "expert-flagged") return set_flag(&rule->require_expert_flag);
  if (head == "company-name") return set_flag(&rule->require_company_name);

  if (head == "signed-by") {
    // "signed-by trusted vendor": a valid signature from an explicitly
    // trusted signer — the §4.2 white-list-by-vendor condition.
    if (negate) {
      return ParseError(line_no, "'not signed-by' is not supported");
    }
    if (i + 3 != words.size() || words[i + 1] != "trusted" ||
        words[i + 2] != "vendor") {
      return ParseError(line_no, "expected 'signed-by trusted vendor'");
    }
    rule->require_valid_signature = true;
    rule->require_vendor_trusted = true;
    return Status::Ok();
  }

  if (head == "rating" || head == "feed-rating") {
    if (negate) return ParseError(line_no, "'not' before a comparison");
    if (i + 3 != words.size()) {
      return ParseError(line_no, "expected '" + head + " <op> <number>'");
    }
    const std::string& op = words[i + 1];
    PISREP_ASSIGN_OR_RETURN(double bound, util::ParseDouble(words[i + 2]));
    std::optional<double>* min =
        head == "rating" ? &rule->min_rating : &rule->min_feed_rating;
    std::optional<double>* max =
        head == "rating" ? &rule->max_rating : &rule->max_feed_rating;
    if (op == ">" || op == ">=") {
      *min = bound;
    } else if (op == "<" || op == "<=") {
      *max = bound;
    } else {
      return ParseError(line_no, "unknown comparison: " + op);
    }
    return Status::Ok();
  }

  if (head == "votes") {
    if (negate) return ParseError(line_no, "'not' before a comparison");
    if (i + 3 != words.size() || words[i + 1] != ">=") {
      return ParseError(line_no, "expected 'votes >= <count>'");
    }
    PISREP_ASSIGN_OR_RETURN(std::int64_t count,
                            util::ParseInt64(words[i + 2]));
    rule->min_votes = static_cast<int>(count);
    return Status::Ok();
  }

  if (head == "no" || head == "shows") {
    if (negate) return ParseError(line_no, "'not' before a behaviour list");
    if (i + 1 == words.size()) {
      return ParseError(line_no, "expected a behaviour after '" + head + "'");
    }
    BehaviorSet set = core::kNoBehaviors;
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      PISREP_ASSIGN_OR_RETURN(BehaviorSet one, BehaviorsFromWord(words[j]));
      set |= one;
    }
    if (head == "no") {
      rule->forbidden_behaviors |= set;
    } else {
      rule->required_behaviors |= set;
    }
    return Status::Ok();
  }

  return ParseError(line_no, "unknown condition: " + head);
}

}  // namespace

Result<core::Policy> ParsePolicyRules(std::string_view text,
                                      std::string_view name) {
  core::Policy policy((std::string(name)));
  bool saw_default = false;

  std::vector<std::string> lines = util::Split(text, '\n');
  for (std::size_t line_no = 1; line_no <= lines.size(); ++line_no) {
    std::string_view raw = lines[line_no - 1];
    if (auto hash = raw.find('#'); hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    std::string_view trimmed = util::Trim(raw);
    if (trimmed.empty()) continue;

    std::string lowered = util::ToLower(trimmed);
    std::vector<std::string> words;
    for (const std::string& w : util::Split(lowered, ' ')) {
      if (!w.empty()) words.push_back(w);
    }

    if (words[0] == "default") {
      if (words.size() != 2) {
        return ParseError(line_no, "expected 'default <action>'");
      }
      PISREP_ASSIGN_OR_RETURN(PolicyAction action, ActionFromWord(words[1]));
      policy.set_default_action(action);
      saw_default = true;
      continue;
    }

    PISREP_ASSIGN_OR_RETURN(PolicyAction action, ActionFromWord(words[0]));
    if (words.size() < 3 || words[1] != "if") {
      return ParseError(line_no, "expected '<action> if <condition>'");
    }

    PolicyRule rule;
    rule.name = std::string(trimmed);
    rule.action = action;

    // Split the condition tokens on the "and" keyword.
    std::vector<std::string> current;
    for (std::size_t w = 2; w < words.size(); ++w) {
      if (words[w] == "and") {
        PISREP_RETURN_IF_ERROR(ApplyCondition(current, line_no, &rule));
        current.clear();
      } else {
        current.push_back(words[w]);
      }
    }
    PISREP_RETURN_IF_ERROR(ApplyCondition(current, line_no, &rule));
    policy.AddRule(std::move(rule));
  }

  if (policy.rules().empty() && !saw_default) {
    return Status::InvalidArgument("policy rules text contains no rules");
  }
  return policy;
}

std::string_view PaperExampleRules() {
  // Mirrors core::Policy::PaperDefault() rule for rule, plus the expert
  // advisory deny the signed trust plane adds. ListsOnly ordering puts the
  // blacklist check first, so the text does too.
  return R"(# pisrep policy — the paper's §4.2 worked example
deny if blacklisted
allow if whitelisted
deny if vendor-blocked
deny if expert-flagged
allow if signed-by trusted vendor
allow if rating > 7.5 and votes >= 3 and no ads
deny if rating < 3 and votes >= 3
default ask
)";
}

}  // namespace pisrep::trust
