#ifndef PISREP_CLUSTER_HASH_RING_H_
#define PISREP_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/sha1.h"

namespace pisrep::cluster {

/// Consistent-hash ring over the SHA-1 digest space.
///
/// The paper identifies every software by its SHA-1 digest (§3.3); the
/// cluster partitions reputation state by treating the first 8 digest
/// bytes as a position on a 64-bit ring. Each shard contributes
/// `vnodes_per_shard` virtual points (SHA-1 of "name#i"), which evens out
/// the per-shard key share, and a digest is owned by the shard whose
/// point is the first at or clockwise after the digest's position.
///
/// Determinism is the contract everything else leans on:
///  - ownership is a pure function of the member-name set — insertion
///    order never matters (the point map is rebuilt from the sorted
///    member set on every change, with lexicographic-min tie-breaking on
///    the astronomically unlikely point collision);
///  - adding a shard moves keys only *to* the new shard; removing one
///    moves only the removed shard's keys, redistributing them among the
///    survivors. Both properties are asserted over synthetic digest
///    populations in cluster_test.
class HashRing {
 public:
  explicit HashRing(int vnodes_per_shard = 64);

  /// Adds a member; no-op when already present.
  void AddShard(const std::string& name);
  /// Removes a member; no-op when absent.
  void RemoveShard(const std::string& name);

  bool empty() const { return members_.empty(); }
  std::size_t size() const { return members_.size(); }
  bool Contains(const std::string& name) const {
    return members_.contains(name);
  }

  /// Owning shard of a digest. The ring must not be empty.
  const std::string& OwnerOf(const util::Sha1Digest& digest) const;

  /// The first `n` distinct shards at or clockwise after the digest's
  /// position — the replica preference list. Entry 0 is OwnerOf(digest);
  /// the list is shorter than `n` when the ring has fewer members. Like
  /// ownership, it is a pure function of the member set.
  std::vector<std::string> PreferenceListOf(const util::Sha1Digest& digest,
                                            std::size_t n) const;

  /// The first `n` distinct members clockwise after `name`'s first virtual
  /// point, excluding `name` itself — the deterministic successor order
  /// every member computes identically (gossip uses it to designate which
  /// survivor executes a dead shard's failover). Empty when `name` is not
  /// a member or is the only one.
  std::vector<std::string> SuccessorsOf(const std::string& name,
                                        std::size_t n) const;

  /// Members in sorted order (the canonical shard enumeration used for
  /// deterministic scatter-gather merges).
  std::vector<std::string> Members() const;

  /// Ring position of a digest: its first 8 bytes, big-endian.
  static std::uint64_t PointOf(const util::Sha1Digest& digest);

 private:
  void Rebuild();

  int vnodes_;
  std::set<std::string> members_;
  std::map<std::uint64_t, std::string> ring_;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_HASH_RING_H_
