#ifndef PISREP_CLUSTER_REPLICATION_H_
#define PISREP_CLUSTER_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::cluster {

// Replication-plane RPC method names (registered on ReplicaNodes, except
// the last two which live on the primary and are called by the Router's
// read-repair path).
inline constexpr std::string_view kReplicateMethod = "ShardReplicate";
inline constexpr std::string_view kReplicaStatusMethod = "ShardReplicaStatus";
inline constexpr std::string_view kReplicaDigestMethod = "ShardReplicaDigest";
inline constexpr std::string_view kReplicaScoreMethod = "ShardReplicaScore";
inline constexpr std::string_view kScoreFingerprintMethod =
    "ShardScoreFingerprint";
inline constexpr std::string_view kRepairReplicaMethod = "ShardRepairReplica";

/// Network address of replica k (1-based, k < replication_factor) of shard
/// `shard`. Replica addresses are a pure function of the shard name, so
/// the router's read fan-out and the shipper agree without coordination.
std::string ReplicaAddress(const std::string& shard, int k);

/// Tuning for one shard's primary→replicas replication fan-out.
struct ReplicationConfig {
  /// Bounded catch-up: the primary retains at most this many unacked WAL
  /// records. A replica that falls further behind cannot be caught up from
  /// the log any more and is re-seeded with a full snapshot instead.
  std::size_t max_log_records = 8192;
  /// Records shipped per RPC batch.
  std::size_t max_batch_records = 128;
  /// Per-batch RPC timeout.
  util::Duration ship_timeout = 2 * util::kSecond;
  /// Delay before re-probing an unreachable replica.
  util::Duration retry_delay = 2 * util::kSecond;
  /// Consecutive shipping failures before a replica's channel is marked
  /// degraded and stops counting toward (or blocking) the write quorum.
  int degraded_after_failures = 3;
  /// When true (the default), a client response whose handler advanced the
  /// primary's WAL is held until `write_quorum` copies hold those records —
  /// synchronous replication, the "zero lost acked votes" guarantee.
  bool synchronous_acks = true;
  /// Total copies of the shard's data including the primary (R). The shard
  /// stands up replication_factor - 1 ReplicaNodes behind its primary.
  int replication_factor = 2;
  /// Copies — counting the primary's own WAL — that must hold a record
  /// before its gated response is released (W of R). Clamped to
  /// [1, replication_factor]; degraded channels shrink the *effective*
  /// quorum so a dead replica cannot wedge the shard, with every such
  /// under-quorum release counted as a degraded ack.
  int write_quorum = 2;
};

/// The primary's in-memory, sequence-numbered record of WAL frames not yet
/// known to be applied by every replica. Appending past `max_records` drops
/// the oldest entries (lagging channels then fall back to snapshot resync).
class ReplicationLog {
 public:
  explicit ReplicationLog(std::size_t max_records)
      : max_records_(max_records) {}

  /// Appends a frame and returns its sequence number (1-based).
  std::uint64_t Append(std::string frame);

  /// Seq of the newest record, 0 when none was ever appended.
  std::uint64_t head_seq() const { return head_seq_; }
  /// Seq of the oldest *retained* record minus one: the log can replay
  /// (base_seq, head_seq]. base_seq == head_seq means empty.
  std::uint64_t base_seq() const { return base_seq_; }
  std::size_t size() const { return frames_.size(); }

  /// Collects up to `max_batch` frames with seq > after, in order. Returns
  /// false when `after` < base_seq (the span was already dropped).
  bool CollectAfter(std::uint64_t after, std::size_t max_batch,
                    std::vector<std::pair<std::uint64_t, std::string>>* out)
      const;

  /// Drops records with seq <= upto (every channel has them).
  void PruneThrough(std::uint64_t upto);

  /// Drops every retained record but keeps the sequence counter running.
  void Clear();

 private:
  std::size_t max_records_;
  std::uint64_t head_seq_ = 0;
  std::uint64_t base_seq_ = 0;
  std::deque<std::string> frames_;  ///< frames_ [i] has seq base_seq_+1+i
};

/// One standby copy of a shard: a raw replicated Database behind an RPC
/// endpoint. It is deliberately *not* a ReputationServer — in-memory server
/// state (sessions, caches) cannot be log-shipped; on promotion a fresh
/// ReputationServer is constructed over the replicated database and rebuilds
/// those from tables, exactly like a process restart would.
class ReplicaNode {
 public:
  /// Produces the node's backing database — at construction and on every
  /// snapshot reset. Must yield an *empty* database: a tiered factory
  /// (backup at flat memory, DESIGN.md §15) has to clear its WAL and cold
  /// block file before opening, or the reset would replay stale rows
  /// under the incoming snapshot.
  using DatabaseFactory =
      std::function<util::Result<std::unique_ptr<storage::Database>>()>;

  /// The network must outlive the node. The default factory opens a plain
  /// in-memory database.
  ReplicaNode(net::SimNetwork* network, std::string address);
  ReplicaNode(net::SimNetwork* network, std::string address,
              DatabaseFactory factory);

  /// Binds the replication endpoints.
  util::Status Start();

  const std::string& address() const { return address_; }

  /// Highest WAL sequence applied (acked to the primary).
  std::uint64_t applied_seq() const { return applied_seq_; }

  /// True when the node knows it is missing records (it observed a gap or
  /// failed an apply) and has not yet been re-seeded by a snapshot. A
  /// stale replica refuses promotion.
  bool stale() const { return stale_; }

  std::uint64_t resets() const { return resets_; }

  storage::Database* db() { return db_.get(); }

  /// Unbinds the endpoint and releases the database — the promotion
  /// handoff. The node is inert afterwards.
  std::unique_ptr<storage::Database> Detach();

 private:
  util::Result<xml::XmlNode> HandleReplicate(const xml::XmlNode& request);

  net::SimNetwork* network_;
  std::string address_;
  DatabaseFactory factory_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<net::RpcServer> rpc_;
  std::uint64_t applied_seq_ = 0;
  bool stale_ = false;
  std::uint64_t resets_ = 0;
};

/// The primary half of the replication plane: exports the primary
/// database's WAL frames into one shared ReplicationLog, ships them to
/// every replica over an independent per-replica channel with its own
/// acked sequence number, gates client responses on a configurable write
/// quorum (W of R), and re-seeds any channel that fell behind the bounded
/// log — or was force-resynced by anti-entropy / read repair — with an
/// out-of-band full snapshot.
class ReplicationShipper {
 public:
  /// `primary_db` must outlive the shipper; the shipper owns the database's
  /// frame listener while alive. One RPC client per channel is bound at
  /// `client_address` + "#k". `shard_label` tags the metrics.
  ReplicationShipper(net::SimNetwork* network, net::EventLoop* loop,
                     std::string client_address,
                     std::vector<std::string> replica_addresses,
                     storage::Database* primary_db, ReplicationConfig config,
                     obs::MetricsRegistry* metrics, std::string shard_label);
  ~ReplicationShipper();

  ReplicationShipper(const ReplicationShipper&) = delete;
  ReplicationShipper& operator=(const ReplicationShipper&) = delete;

  /// Binds the shipping clients and installs the frame listener. Every
  /// channel starts reset-pending: its first shipment is a full snapshot,
  /// which bootstraps brand-new empty replicas and re-seeds fresh ones
  /// after a promotion alike.
  util::Status Start();

  /// The RpcServer response gate: a response whose handler advanced the
  /// WAL is held until `write_quorum` copies (primary included) hold those
  /// records. Degraded channels neither count nor block — a release below
  /// the configured quorum is a degraded ack. Reads pass through untouched.
  void GateResponse(const std::string& method, std::function<void()> send);

  std::uint64_t head_seq() const { return log_.head_seq(); }
  /// Lowest acked seq across channels (head_seq when there are none) —
  /// everything at or below this is on every replica.
  std::uint64_t acked_seq() const;
  /// Records the slowest replica has not confirmed yet.
  std::uint64_t lag_records() const { return head_seq() - acked_seq(); }
  /// True while any channel is degraded.
  bool degraded() const;
  /// Client responses released below the configured write quorum.
  std::uint64_t degraded_acks() const { return degraded_acks_; }
  std::uint64_t resyncs() const { return resyncs_; }

  int replica_count() const { return static_cast<int>(channels_.size()); }
  const std::string& replica_address(int k) const;
  std::uint64_t channel_acked(int k) const;
  bool channel_degraded(int k) const;
  /// True when channel k holds everything the primary logged (and no
  /// snapshot is pending) — the precondition for digest comparison.
  bool channel_caught_up(int k) const;

  /// Schedules a full snapshot re-seed of channel k (anti-entropy and
  /// read-repair call this on detected divergence). No-op on a fenced
  /// channel: a replica with a diverged audit chain is evidence, not a
  /// sync bug, and must never be quietly repaired back into the quorum.
  void ForceResync(int k);

  /// Fences channel k: the replica's tamper-evident audit chain diverged
  /// from the primary's, so its copy can no longer be trusted. A fenced
  /// channel ships nothing, counts toward no quorum, and stays fenced
  /// until the replica is replaced (ReviveChannel). Idempotent.
  void FenceChannel(int k);
  bool channel_fenced(int k) const;
  std::uint64_t fences() const { return fences_; }
  /// Invoked (once per fence) with the channel ordinal; the shard node
  /// uses this to remember fenced replicas across a primary crash, when
  /// the shipper itself is torn down.
  void set_fence_listener(std::function<void(int)> listener) {
    fence_listener_ = std::move(listener);
  }

  /// Re-arms channel k after its replica was replaced by a fresh, empty
  /// node: forgets the old ack position, clears degradation, snapshots.
  void ReviveChannel(int k);

  /// Kicks every channel's shipping loop (idempotent).
  void Pump();

 private:
  struct Channel {
    std::string address;
    std::unique_ptr<net::RpcClient> rpc;
    std::uint64_t acked = 0;
    bool in_flight = false;
    bool retry_scheduled = false;
    int failures = 0;
    bool degraded = false;
    /// The replica's audit chain diverged: quarantined, never resynced.
    bool fenced = false;
    /// The next shipment is a full snapshot (initially true: the replica
    /// starts empty, whatever the primary's history says).
    bool reset_pending = true;
    /// head_seq at the last snapshot export: the pending snapshot covers
    /// everything through this seq, so the log only needs to retain
    /// records after it for this channel.
    std::uint64_t reset_floor = 0;
  };

  void OnFrame(const std::string& frame);
  void PumpChannel(std::size_t k);
  void SendSnapshot(std::size_t k);
  void HandleShipResult(std::size_t k, bool was_reset,
                        util::Result<xml::XmlNode> result);
  /// Copies (primary + healthy channels) holding records through `seq`.
  int CopiesHolding(std::uint64_t seq) const;
  int ConfiguredQuorum() const;
  /// Configured quorum shrunk to the healthy copy count.
  int EffectiveQuorum() const;
  void CheckGates();
  void EnterDegraded(Channel& channel);
  void LeaveDegraded(Channel& channel);
  void PruneLog();
  void MarkResyncPending(Channel& channel);
  void UpdateGauges();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  storage::Database* db_;
  ReplicationConfig config_;
  std::vector<Channel> channels_;
  ReplicationLog log_;
  std::uint64_t degraded_acks_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t fences_ = 0;
  std::function<void(int)> fence_listener_;
  /// (required seq, send closure), FIFO per seq.
  std::deque<std::pair<std::uint64_t, std::function<void()>>> gates_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  obs::Gauge* lag_gauge_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  obs::Counter* shipped_metric_ = nullptr;
  obs::Counter* resyncs_metric_ = nullptr;
  obs::Counter* degraded_acks_metric_ = nullptr;
  obs::Counter* fences_metric_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_REPLICATION_H_
