#ifndef PISREP_CLUSTER_REPLICATION_H_
#define PISREP_CLUSTER_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::cluster {

/// Tuning for one shard's primary→backup replication channel.
struct ReplicationConfig {
  /// Bounded catch-up: the primary retains at most this many unacked WAL
  /// records. A backup that falls further behind cannot be caught up from
  /// the log any more and is re-seeded with a full snapshot instead.
  std::size_t max_log_records = 8192;
  /// Records shipped per RPC batch.
  std::size_t max_batch_records = 128;
  /// Per-batch RPC timeout.
  util::Duration ship_timeout = 2 * util::kSecond;
  /// Delay before re-probing an unreachable backup.
  util::Duration retry_delay = 2 * util::kSecond;
  /// Consecutive shipping failures before the primary stops gating client
  /// responses on replication (graceful degradation: answers flow again,
  /// durability of *new* acks is reduced and counted).
  int degraded_after_failures = 3;
  /// When true (the default), a client response whose handler advanced the
  /// primary's WAL is held until the backup has acked those records —
  /// synchronous replication, the "zero lost acked votes" guarantee.
  bool synchronous_acks = true;
};

/// The primary's in-memory, sequence-numbered record of WAL frames not yet
/// known to be applied by the backup. Appending past `max_records` drops
/// the oldest entries (the shipper then falls back to snapshot resync).
class ReplicationLog {
 public:
  explicit ReplicationLog(std::size_t max_records)
      : max_records_(max_records) {}

  /// Appends a frame and returns its sequence number (1-based).
  std::uint64_t Append(std::string frame);

  /// Seq of the newest record, 0 when none was ever appended.
  std::uint64_t head_seq() const { return head_seq_; }
  /// Seq of the oldest *retained* record minus one: the log can replay
  /// (base_seq, head_seq]. base_seq == head_seq means empty.
  std::uint64_t base_seq() const { return base_seq_; }
  std::size_t size() const { return frames_.size(); }

  /// Collects up to `max_batch` frames with seq > after, in order. Returns
  /// false when `after` < base_seq (the span was already dropped).
  bool CollectAfter(std::uint64_t after, std::size_t max_batch,
                    std::vector<std::pair<std::uint64_t, std::string>>* out)
      const;

  /// Drops records with seq <= upto (they are safely on the backup).
  void PruneThrough(std::uint64_t upto);

  /// Drops every retained record but keeps the sequence counter running —
  /// the resync path replaces history with a snapshot.
  void Clear();

 private:
  std::size_t max_records_;
  std::uint64_t head_seq_ = 0;
  std::uint64_t base_seq_ = 0;
  std::deque<std::string> frames_;  ///< frames_ [i] has seq base_seq_+1+i
};

/// The standby half of a shard: a raw replicated Database behind an RPC
/// endpoint. It is deliberately *not* a ReputationServer — in-memory server
/// state (sessions, caches) cannot be log-shipped; on promotion a fresh
/// ReputationServer is constructed over the replicated database and rebuilds
/// those from tables, exactly like a process restart would.
class ReplicaNode {
 public:
  /// The network must outlive the node.
  ReplicaNode(net::SimNetwork* network, std::string address);

  /// Binds the replication endpoint.
  util::Status Start();

  /// Highest WAL sequence applied (acked to the primary).
  std::uint64_t applied_seq() const { return applied_seq_; }

  /// True when the node knows it is missing records (it observed a gap or
  /// failed an apply) and has not yet been re-seeded by a snapshot. A
  /// stale replica refuses promotion.
  bool stale() const { return stale_; }

  std::uint64_t resets() const { return resets_; }

  storage::Database* db() { return db_.get(); }

  /// Unbinds the endpoint and releases the database — the promotion
  /// handoff. The node is inert afterwards.
  std::unique_ptr<storage::Database> Detach();

 private:
  util::Result<xml::XmlNode> HandleReplicate(const xml::XmlNode& request);

  net::SimNetwork* network_;
  std::string address_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<net::RpcServer> rpc_;
  std::uint64_t applied_seq_ = 0;
  bool stale_ = false;
  std::uint64_t resets_ = 0;
};

/// The primary half of the channel: exports the primary database's WAL
/// frames into a ReplicationLog, ships them to the backup in acked batches,
/// gates client responses on replication progress, and falls back to
/// snapshot resync when the backup is too far behind (or brand new after a
/// failover).
class ReplicationShipper {
 public:
  /// `primary_db` must outlive the shipper; the shipper owns the database's
  /// frame listener while alive. `shard_label` tags the metrics.
  ReplicationShipper(net::SimNetwork* network, net::EventLoop* loop,
                     std::string client_address, std::string replica_address,
                     storage::Database* primary_db, ReplicationConfig config,
                     obs::MetricsRegistry* metrics, std::string shard_label);
  ~ReplicationShipper();

  ReplicationShipper(const ReplicationShipper&) = delete;
  ReplicationShipper& operator=(const ReplicationShipper&) = delete;

  /// Binds the shipping client, seeds the log with a snapshot of the
  /// primary database (so a brand-new empty backup can replay from seq 1)
  /// and installs the frame listener for everything after.
  util::Status Start();

  /// The RpcServer response gate: a response whose handler advanced the
  /// WAL is held until the backup acks those records (or until the channel
  /// degrades). Reads pass through untouched.
  void GateResponse(const std::string& method, std::function<void()> send);

  std::uint64_t head_seq() const { return log_.head_seq(); }
  std::uint64_t acked_seq() const { return acked_seq_; }
  /// Records the backup has not confirmed yet.
  std::uint64_t lag_records() const { return log_.head_seq() - acked_seq_; }
  /// True while the backup is unreachable and responses flow unreplicated.
  bool degraded() const { return degraded_; }
  /// Client responses released without replication coverage.
  std::uint64_t degraded_acks() const { return degraded_acks_; }
  std::uint64_t resyncs() const { return resyncs_; }

  /// Kicks the shipping loop (idempotent; called internally on new frames
  /// and acks, externally after attaching a fresh backup).
  void Pump();

 private:
  void OnFrame(const std::string& frame);
  void StartResync();
  void HandleShipResult(util::Result<xml::XmlNode> result);
  void FlushGatesThrough(std::uint64_t seq);
  void EnterDegraded();
  void UpdateLagGauge();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  storage::Database* db_;
  ReplicationConfig config_;
  std::string replica_address_;
  net::RpcClient rpc_;
  ReplicationLog log_;
  std::uint64_t acked_seq_ = 0;
  bool in_flight_ = false;
  bool retry_scheduled_ = false;
  int consecutive_failures_ = 0;
  bool degraded_ = false;
  /// Set while a snapshot resync is pending: the batch starting at this
  /// seq carries the reset marker telling the backup to discard its state.
  std::uint64_t reset_at_seq_ = 0;
  std::uint64_t degraded_acks_ = 0;
  std::uint64_t resyncs_ = 0;
  /// (required seq, send closure), FIFO per seq.
  std::deque<std::pair<std::uint64_t, std::function<void()>>> gates_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  obs::Gauge* lag_gauge_ = nullptr;
  obs::Counter* shipped_metric_ = nullptr;
  obs::Counter* resyncs_metric_ = nullptr;
  obs::Counter* degraded_acks_metric_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_REPLICATION_H_
