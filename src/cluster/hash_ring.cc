#include "cluster/hash_ring.h"

#include <algorithm>

#include "util/logging.h"

namespace pisrep::cluster {

HashRing::HashRing(int vnodes_per_shard) : vnodes_(vnodes_per_shard) {
  PISREP_CHECK(vnodes_ > 0) << "a shard needs at least one virtual node";
}

std::uint64_t HashRing::PointOf(const util::Sha1Digest& digest) {
  std::uint64_t point = 0;
  for (int i = 0; i < 8; ++i) {
    point = (point << 8) | digest.bytes[static_cast<std::size_t>(i)];
  }
  return point;
}

void HashRing::AddShard(const std::string& name) {
  if (!members_.insert(name).second) return;
  Rebuild();
}

void HashRing::RemoveShard(const std::string& name) {
  if (members_.erase(name) == 0) return;
  Rebuild();
}

void HashRing::Rebuild() {
  ring_.clear();
  // Iterating the sorted member set with min-name collision tie-breaking
  // makes the map a pure function of the membership, independent of the
  // order in which shards were added or removed.
  for (const std::string& name : members_) {
    for (int v = 0; v < vnodes_; ++v) {
      util::Sha1Digest point_digest =
          util::Sha1::Hash(name + "#" + std::to_string(v));
      std::uint64_t point = PointOf(point_digest);
      auto [it, inserted] = ring_.emplace(point, name);
      if (!inserted && name < it->second) it->second = name;
    }
  }
}

const std::string& HashRing::OwnerOf(const util::Sha1Digest& digest) const {
  PISREP_CHECK(!ring_.empty()) << "OwnerOf on an empty ring";
  auto it = ring_.lower_bound(PointOf(digest));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

std::vector<std::string> HashRing::PreferenceListOf(
    const util::Sha1Digest& digest, std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  std::size_t want = std::min(n, members_.size());
  auto it = ring_.lower_bound(PointOf(digest));
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < want;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();  // wrap past the top
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::vector<std::string> HashRing::SuccessorsOf(const std::string& name,
                                                std::size_t n) const {
  std::vector<std::string> out;
  if (!members_.contains(name) || members_.size() < 2 || n == 0) return out;
  std::size_t want = std::min(n, members_.size() - 1);
  std::uint64_t start = PointOf(util::Sha1::Hash(name + "#0"));
  auto it = ring_.upper_bound(start);
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < want;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (it->second != name &&
        std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::vector<std::string> HashRing::Members() const {
  return std::vector<std::string>(members_.begin(), members_.end());
}

}  // namespace pisrep::cluster
