#ifndef PISREP_CLUSTER_CLUSTER_H_
#define PISREP_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/anti_entropy.h"
#include "cluster/gossip.h"
#include "cluster/hash_ring.h"
#include "cluster/replication.h"
#include "core/types.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "server/reputation_server.h"
#include "storage/database.h"
#include "util/status.h"

namespace pisrep::cluster {

/// Method name of the cluster-internal trust-propagation call (the router
/// fans a validated remark's trust effect to the non-owning shards).
inline constexpr std::string_view kApplyRemarkMethod = "ClusterApplyRemark";
/// Method name of the liveness probe (tests and operators; the failure
/// detector proper is the gossip plane).
inline constexpr std::string_view kPingMethod = "ClusterPing";

/// Per-shard overrides of the aggregation cadence (the per-shard config
/// knobs of ReputationServer::Config): a small shard can afford to sweep
/// fully every run, a big one cannot.
struct ShardTuning {
  std::uint64_t full_sweep_every =
      server::AggregationJob::kDefaultFullSweepEvery;
  bool force_full_sweep = false;
};

struct ClusterConfig {
  int num_shards = 2;
  /// Shard i's service address is "<name_prefix><i>" — stable across
  /// failovers, which is what makes promotion transparent to the router.
  /// Shards added later continue the ordinal sequence.
  std::string name_prefix = "shard";
  int vnodes_per_shard = 64;
  /// Template for every shard's server; per-shard ShardTuning overrides
  /// layer on top. `accounts.deterministic_tokens` is forced on — cluster
  /// sessions and activation tokens must validate on every shard and
  /// survive a failover.
  server::ReputationServer::Config server;
  /// R/W tuning: each shard keeps replication.replication_factor - 1
  /// ReplicaNodes behind its primary and acks writes at
  /// replication.write_quorum copies.
  ReplicationConfig replication;
  /// Per-shard aggregation overrides, indexed by shard; shorter-than-
  /// num_shards vectors leave the remaining shards on the template.
  std::vector<ShardTuning> tuning;
  /// Decentralized failure detection: every primary gossips heartbeats;
  /// the designated survivor fences a silent peer and promotes its best
  /// replica. Disable for tests that drive TriggerFailover manually (the
  /// event loop can then drain).
  GossipConfig gossip;
  /// Background digest comparison between primary and caught-up replicas,
  /// repairing silent divergence with a forced snapshot resync.
  AntiEntropyConfig anti_entropy;
};

/// One shard: a primary ReputationServer over an in-memory database and
/// R-1 warm replicas (ReplicaNode) fed by quorum-acknowledged WAL
/// shipping, plus the promote-on-failure lifecycle. The service address
/// never changes; which process answers it does.
class ShardNode {
 public:
  /// `ring` is the cluster's authoritative ownership map (used by the
  /// ownership guard and the gossip executor election); it must outlive
  /// the node, as must `network` and `loop`. `on_dead` is invoked when
  /// this shard's gossip agent is the designated executor for a
  /// suspected-dead peer.
  ShardNode(net::SimNetwork* network, net::EventLoop* loop, std::string name,
            server::ReputationServer::Config server_config,
            ReplicationConfig replication, const HashRing* ring,
            GossipConfig gossip, AntiEntropyConfig anti_entropy,
            GossipAgent::DeadCallback on_dead);
  ~ShardNode();

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// Starts the primary, the replicas, and the replication fan-out.
  util::Status Start();

  const std::string& name() const { return name_; }
  /// The live primary, or null between KillPrimary and Promote.
  server::ReputationServer* server() { return server_.get(); }
  bool primary_alive() const { return server_ != nullptr; }
  storage::Database* db() { return db_.get(); }
  /// Replica k (0-based, k < replica_count()); null while crashed.
  ReplicaNode* replica(int k) {
    return replicas_[static_cast<std::size_t>(k)].get();
  }
  /// The first replica (legacy single-backup accessor).
  ReplicaNode* replica() { return replicas_.empty() ? nullptr : replica(0); }
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  ReplicationShipper* shipper() { return shipper_.get(); }
  GossipAgent* gossip() { return gossip_.get(); }
  AntiEntropyAgent* anti_entropy() { return anti_entropy_.get(); }

  /// Fences the primary: unbinds its RPC endpoint, stops the gossip and
  /// anti-entropy agents and tears down the replication fan-out. The
  /// replicas stay up — they hold the shard's surviving copies. Simulates
  /// a crash; idempotent.
  void KillPrimary();

  /// Simulated crash of replica k: endpoint and in-memory database die.
  void KillReplica(int k);

  /// Promotes the most-caught-up non-stale replica into a fresh primary
  /// at the same address, then rebuilds the full replica set behind it
  /// (snapshot resync). Refuses when no replica is promotable — a replica
  /// that knows it is missing acked records must never serve.
  util::Status Promote();

  /// (Re)creates any missing replicas and the shipper — the bootstrap on
  /// Start, the rebuild after Promote, and the revive path after
  /// KillReplica alike.
  util::Status StartReplicas();

  /// Bounces the primary *process* while keeping the database and the
  /// replication fan-out: sessions and caches are rebuilt from tables,
  /// exactly like a process restart. Resharding uses this after bulk row
  /// migration so derived in-memory state (id sequences, score caches)
  /// reflects the moved rows.
  util::Status RestartPrimary();

  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t promotions_refused() const { return promotions_refused_; }
  /// True when replica k was fenced for audit-chain divergence. Remembered
  /// on the node (not just the shipper) so a fenced replica still cannot
  /// be promoted after the primary — and with it the shipper — crashed.
  bool replica_fenced(int k) const {
    return static_cast<std::size_t>(k) < replica_fenced_.size() &&
           replica_fenced_[static_cast<std::size_t>(k)];
  }

 private:
  util::Status StartPrimary();
  /// Registers ClusterPing, ClusterApplyRemark, the read-repair endpoints
  /// and wraps every digest-routed method in the ownership guard.
  void InstallClusterMethods();
  void InstallResponseGate();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  std::string name_;
  server::ReputationServer::Config server_config_;
  ReplicationConfig replication_;
  const HashRing* ring_;
  GossipConfig gossip_config_;
  AntiEntropyConfig anti_entropy_config_;
  GossipAgent::DeadCallback on_dead_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<server::ReputationServer> server_;
  std::vector<std::unique_ptr<ReplicaNode>> replicas_;
  /// Parallel to replicas_: audit-fence verdicts, surviving shipper
  /// teardown (KillPrimary) so Promote can honor them.
  std::vector<bool> replica_fenced_;
  std::unique_ptr<ReplicationShipper> shipper_;
  std::unique_ptr<GossipAgent> gossip_;
  std::unique_ptr<AntiEntropyAgent> anti_entropy_;
  std::uint64_t promotions_ = 0;
  std::uint64_t promotions_refused_ = 0;
};

/// The elastic shard fleet. Deliberately router-free: the Router is a
/// separate front-door component (sims run both; unit tests can run a
/// cluster without one). Failure detection is decentralized — the shards'
/// gossip agents suspect silent peers and call back into OnGossipDeath,
/// which fences and promotes; there is no central heartbeat controller.
class ShardCluster {
 public:
  ShardCluster(net::SimNetwork* network, net::EventLoop* loop,
               ClusterConfig config);
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  /// Starts every shard (gossip and anti-entropy included when enabled).
  util::Status Start();

  /// Fences every primary.
  void StopAll();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::string ShardName(int i) const;
  std::vector<std::string> ShardNames() const;
  ShardNode* shard(int i) { return shards_[static_cast<std::size_t>(i)].get(); }
  /// The shard named `name`, or null.
  ShardNode* FindShard(std::string_view name);
  /// Shard i's primary (null while failed over).
  server::ReputationServer* primary(int i) { return shard(i)->server(); }
  const HashRing& ring() const { return ring_; }

  /// The shard owning `id` under the cluster's ring.
  ShardNode* OwnerShard(const core::SoftwareId& id);

  // ------------------------------------------------------------------
  // Native cross-shard reads (tests, web portal, benches) — full
  // precision, no RPC hop.
  // ------------------------------------------------------------------

  util::Result<core::SoftwareScore> GetScore(const core::SoftwareId& id);
  /// Software-count-weighted merge of the per-shard vendor means, in
  /// sorted-shard order (deterministic; same arithmetic as the router's
  /// scatter merge).
  util::Result<core::VendorScore> MergedVendorScore(
      const core::VendorId& vendor);
  std::uint64_t TotalVotesAccepted() const;

  /// Runs one aggregation pass on every live shard, in shard order.
  void RunAggregationAll(util::TimePoint now);

  /// Activation mail is broadcast-registered on every shard; shard 0's
  /// mailbox is the canonical copy, with the other shards' (identical,
  /// thanks to deterministic tokens) copies as fallback after a failover.
  util::Result<server::ActivationMail> FetchMail(std::string_view email);

  // ------------------------------------------------------------------
  // Failure control
  // ------------------------------------------------------------------

  /// Simulated crash of shard i's primary.
  void KillPrimary(int i);
  /// Manual failover (fence + promote + rebuild replicas); the gossip
  /// executor drives the same path when a peer goes silent.
  util::Status TriggerFailover(int i);
  util::Status ReviveReplica(int i);

  /// The gossip dead-callback: fences `name` and promotes its best
  /// replica. Refuses when the primary is in fact alive (a partition, not
  /// a crash — in the sim the cluster object is the out-of-band fencing
  /// authority, so a reachable primary is never shot).
  util::Status OnGossipDeath(const std::string& name);

  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t failovers_refused() const;

  // ------------------------------------------------------------------
  // Elastic membership (live resharding)
  // ------------------------------------------------------------------

  /// Adds a shard under traffic: starts it, joins it to the ring, copies
  /// the broadcast tables, migrates exactly the key ranges the ring now
  /// assigns to it (replicas follow via WAL shipping) and bounces every
  /// primary so derived in-memory state reflects the move. Returns the
  /// new shard's name. Requires every current primary alive.
  util::Result<std::string> AddShard();

  /// Removes shard `name` under traffic: leaves the ring first, migrates
  /// every row it held to the new owners, then tears the node down.
  util::Status RemoveShard(const std::string& name);

  std::uint64_t reshards() const { return reshards_; }
  std::uint64_t migrated_rows() const { return migrated_rows_; }

 private:
  std::unique_ptr<ShardNode> MakeShard(const std::string& name,
                                       int tuning_index);
  util::Status FailoverNode(ShardNode* node);
  /// Moves every digest-routed row on `source` whose ring owner is no
  /// longer `source` to its owner, via logged ops on both sides (so the
  /// replicas of both shards follow along).
  util::Status MigrateShardData(ShardNode* source);
  /// Seeds a new shard's copies of the broadcast tables (users,
  /// activations, feeds) from an existing shard, via logged upserts.
  util::Status CopyBroadcastTables(ShardNode* from, ShardNode* to);
  /// Drops the per-vendor partial aggregates (logged); the next full
  /// aggregation sweep rebuilds them from the post-move software set.
  void ClearVendorScores(ShardNode* node);

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  ClusterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<ShardNode>> shards_;
  int next_ordinal_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t reshards_ = 0;
  std::uint64_t migrated_rows_ = 0;

  obs::Counter* failovers_metric_ = nullptr;
  obs::Counter* failovers_refused_metric_ = nullptr;
  obs::Counter* reshards_metric_ = nullptr;
  obs::Counter* migrated_rows_metric_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_CLUSTER_H_
