#ifndef PISREP_CLUSTER_CLUSTER_H_
#define PISREP_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/replication.h"
#include "core/types.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "server/reputation_server.h"
#include "storage/database.h"
#include "util/status.h"

namespace pisrep::cluster {

/// Method name of the cluster-internal trust-propagation call (the router
/// fans a validated remark's trust effect to the non-owning shards).
inline constexpr std::string_view kApplyRemarkMethod = "ClusterApplyRemark";
/// Method name of the failover controller's liveness probe.
inline constexpr std::string_view kPingMethod = "ClusterPing";

/// Per-shard overrides of the aggregation cadence (the per-shard config
/// knobs of ReputationServer::Config): a small shard can afford to sweep
/// fully every run, a big one cannot.
struct ShardTuning {
  std::uint64_t full_sweep_every =
      server::AggregationJob::kDefaultFullSweepEvery;
  bool force_full_sweep = false;
};

struct ClusterConfig {
  int num_shards = 2;
  /// Shard i's service address is "<name_prefix><i>" — stable across
  /// failovers, which is what makes promotion transparent to the router.
  std::string name_prefix = "shard";
  int vnodes_per_shard = 64;
  /// Template for every shard's server; per-shard ShardTuning overrides
  /// layer on top. `accounts.deterministic_tokens` is forced on — cluster
  /// sessions and activation tokens must validate on every shard and
  /// survive a failover.
  server::ReputationServer::Config server;
  ReplicationConfig replication;
  /// Per-shard aggregation overrides, indexed by shard; shorter-than-
  /// num_shards vectors leave the remaining shards on the template.
  std::vector<ShardTuning> tuning;
  /// Failover controller: a primary missing `heartbeat_misses` consecutive
  /// pings (or whose breaker trips) is fenced and its backup promoted.
  /// Period 0 disables the periodic probe (tests drive TriggerFailover
  /// manually and the event loop can then drain).
  util::Duration heartbeat_period = 2 * util::kSecond;
  int heartbeat_misses = 3;
  bool auto_failover = true;
};

/// One shard: a primary ReputationServer over an in-memory database, a
/// warm backup (ReplicaNode) fed by synchronous WAL shipping, and the
/// promote-on-failure lifecycle. The service address never changes; which
/// process answers it does.
class ShardNode {
 public:
  /// `ring` is the cluster's authoritative ownership map (used by the
  /// ownership guard); it must outlive the node. `network`/`loop` too.
  ShardNode(net::SimNetwork* network, net::EventLoop* loop, std::string name,
            server::ReputationServer::Config server_config,
            ReplicationConfig replication, const HashRing* ring);
  ~ShardNode();

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// Starts the primary, the backup, and the replication channel.
  util::Status Start();

  const std::string& name() const { return name_; }
  /// The live primary, or null between KillPrimary and Promote.
  server::ReputationServer* server() { return server_.get(); }
  bool primary_alive() const { return server_ != nullptr; }
  storage::Database* db() { return db_.get(); }
  ReplicaNode* replica() { return replica_.get(); }
  ReplicationShipper* shipper() { return shipper_.get(); }

  /// Fences the primary: unbinds its RPC endpoint and tears down the
  /// replication channel. Simulates a crash; idempotent.
  void KillPrimary();

  /// Promotes the backup into a fresh primary at the same address, then
  /// starts a new empty backup and re-seeds it (snapshot resync). Refuses
  /// when the backup is stale — a backup that knows it is missing acked
  /// records must never serve.
  util::Status Promote();

  /// (Re)creates the backup and kicks the shipper — the revive path after
  /// a failover consumed the previous backup.
  util::Status StartReplica();

  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t promotions_refused() const { return promotions_refused_; }

 private:
  util::Status StartPrimary();
  /// Registers ClusterPing, ClusterApplyRemark, and wraps every
  /// digest-routed method in the ownership guard.
  void InstallClusterMethods();
  void InstallResponseGate();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  std::string name_;
  server::ReputationServer::Config server_config_;
  ReplicationConfig replication_;
  const HashRing* ring_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<server::ReputationServer> server_;
  std::unique_ptr<ReplicaNode> replica_;
  std::unique_ptr<ReplicationShipper> shipper_;
  std::uint64_t promotions_ = 0;
  std::uint64_t promotions_refused_ = 0;
};

/// The shard fleet plus the failover controller. Deliberately router-free:
/// the Router is a separate front-door component (sims run both; unit
/// tests can run a cluster without one).
class ShardCluster {
 public:
  ShardCluster(net::SimNetwork* network, net::EventLoop* loop,
               ClusterConfig config);
  ~ShardCluster();

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  /// Starts every shard and (when configured) the heartbeat controller.
  util::Status Start();

  /// Fences every primary and stops the controller.
  void StopAll();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::string ShardName(int i) const;
  ShardNode* shard(int i) { return shards_[static_cast<std::size_t>(i)].get(); }
  /// Shard i's primary (null while failed over).
  server::ReputationServer* primary(int i) { return shard(i)->server(); }
  const HashRing& ring() const { return ring_; }

  /// The shard owning `id` under the cluster's ring.
  ShardNode* OwnerShard(const core::SoftwareId& id);

  // ------------------------------------------------------------------
  // Native cross-shard reads (tests, web portal, benches) — full
  // precision, no RPC hop.
  // ------------------------------------------------------------------

  util::Result<core::SoftwareScore> GetScore(const core::SoftwareId& id);
  /// Software-count-weighted merge of the per-shard vendor means, in
  /// sorted-shard order (deterministic; same arithmetic as the router's
  /// scatter merge).
  util::Result<core::VendorScore> MergedVendorScore(
      const core::VendorId& vendor);
  std::uint64_t TotalVotesAccepted() const;

  /// Runs one aggregation pass on every live shard, in shard order.
  void RunAggregationAll(util::TimePoint now);

  /// Activation mail is broadcast-registered on every shard; shard 0's
  /// mailbox is the canonical copy, with the other shards' (identical,
  /// thanks to deterministic tokens) copies as fallback after a failover.
  util::Result<server::ActivationMail> FetchMail(std::string_view email);

  // ------------------------------------------------------------------
  // Failure control
  // ------------------------------------------------------------------

  /// Simulated crash of shard i's primary.
  void KillPrimary(int i);
  /// Manual failover (fence + promote + revive); the controller calls the
  /// same path when heartbeats go missing.
  util::Status TriggerFailover(int i);
  util::Status ReviveReplica(int i);

  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t failovers_refused() const;

 private:
  void StartHeartbeats();
  void ScheduleHeartbeat();
  void HeartbeatTick();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  ClusterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<ShardNode>> shards_;
  std::unique_ptr<net::RpcClient> controller_;
  std::vector<int> misses_;
  std::shared_ptr<int> heartbeat_token_;
  std::uint64_t failovers_ = 0;

  obs::Counter* failovers_metric_ = nullptr;
  obs::Counter* failovers_refused_metric_ = nullptr;
  obs::Counter* heartbeat_misses_metric_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_CLUSTER_H_
