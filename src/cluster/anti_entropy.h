#ifndef PISREP_CLUSTER_ANTI_ENTROPY_H_
#define PISREP_CLUSTER_ANTI_ENTROPY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "cluster/replication.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::cluster {

/// Tuning for the background divergence sweep.
struct AntiEntropyConfig {
  bool enabled = true;
  /// Interval between sweeps. Anti-entropy is a safety net behind WAL
  /// shipping, not a delivery mechanism, so it runs coarse by default.
  util::Duration period = 30 * util::kSecond;
  util::Duration rpc_timeout = 2 * util::kSecond;
};

/// Key-range digest buckets: rows hash into one of these by the first
/// nibble of SHA1(table, key), so a single diverged row narrows to one
/// sixteenth of the keyspace without shipping any data.
inline constexpr std::size_t kDigestBuckets = 16;

/// Order-insensitive content digest of an entire database, bucketed by key
/// range. Each row folds in as an XOR of a 64-bit row hash, so the digest
/// is identical regardless of insertion order or in-memory layout — two
/// databases agree on all 16 buckets iff they hold bit-identical rows.
std::array<std::uint64_t, kDigestBuckets> RangeDigestsOf(
    storage::Database* db);

/// Wire form of the bucket array: comma-separated hex.
std::string FormatRangeDigests(
    const std::array<std::uint64_t, kDigestBuckets>& digests);

/// Exact type-tagged rendering of one software's `software_scores` row
/// ("absent" when missing) — what the router's read-repair path compares
/// between primary and replicas.
std::string ScoreFingerprint(storage::Database* db,
                             const std::string& id_hex);

/// The primary's periodic anti-entropy sweep: for every replica channel
/// that believes itself caught up, fetch its range digests and compare
/// against the primary's own. A mismatch at equal WAL positions means
/// silent divergence (a bug, or a bit flip the codec missed) — logged,
/// counted and healed with a forced snapshot resync.
class AntiEntropyAgent {
 public:
  /// `db` and `shipper` belong to the same shard primary and must outlive
  /// the agent, as must the network and loop.
  AntiEntropyAgent(net::SimNetwork* network, net::EventLoop* loop,
                   std::string shard, storage::Database* db,
                   ReplicationShipper* shipper, AntiEntropyConfig config,
                   obs::MetricsRegistry* metrics);

  AntiEntropyAgent(const AntiEntropyAgent&) = delete;
  AntiEntropyAgent& operator=(const AntiEntropyAgent&) = delete;

  /// Binds the sweep client and schedules the first sweep.
  util::Status Start();

  /// Digest comparisons completed (per replica, per sweep).
  std::uint64_t checks() const { return checks_; }
  /// Divergent replicas detected and forced into snapshot resync.
  std::uint64_t repairs() const { return repairs_; }
  /// Replicas fenced because their tamper-evident audit chain broke or
  /// diverged from the primary's at equal WAL positions. Fencing is
  /// terminal: tamper evidence is preserved, never snapshot-repaired.
  std::uint64_t fences() const { return fences_; }

 private:
  void ScheduleSweep();
  void RunSweep();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  std::string shard_;
  storage::Database* db_;
  ReplicationShipper* shipper_;
  AntiEntropyConfig config_;
  std::unique_ptr<net::RpcClient> client_;
  std::uint64_t checks_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t fences_ = 0;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  obs::Counter* checks_metric_ = nullptr;
  obs::Counter* repairs_metric_ = nullptr;
  obs::Counter* fences_metric_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_ANTI_ENTROPY_H_
