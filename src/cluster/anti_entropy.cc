#include "cluster/anti_entropy.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "storage/table.h"
#include "storage/value.h"
#include "trust/audit_log.h"
#include "util/logging.h"
#include "util/sha1.h"
#include "util/string_util.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using xml::XmlNode;

std::uint64_t AttrU64(const XmlNode& node, std::string_view key) {
  auto parsed = util::ParseInt64(node.AttributeOr(key, "0"));
  if (!parsed.ok() || *parsed < 0) return 0;
  return static_cast<std::uint64_t>(*parsed);
}

std::uint64_t FoldDigest(const util::Sha1Digest& digest) {
  std::uint64_t folded = 0;
  for (int i = 0; i < 8; ++i) {
    folded = (folded << 8) | digest.bytes[static_cast<std::size_t>(i)];
  }
  return folded;
}

/// Exact, type-tagged rendering of one row: a Real 1 and an Int 1 must not
/// collide, nor may adjacent cells bleed into each other.
std::string RowString(std::string_view table, const storage::Row& row) {
  std::string out(table);
  for (const storage::Value& cell : row) {
    out += '\x1f';
    out += storage::ColumnTypeName(cell.type());
    out += ':';
    out += cell.ToString();
  }
  return out;
}
}  // namespace

std::array<std::uint64_t, kDigestBuckets> RangeDigestsOf(
    storage::Database* db) {
  std::array<std::uint64_t, kDigestBuckets> buckets{};
  for (const std::string& name : db->TableNames()) {
    // The tier-aware facade iterates both tiers, so a digest covers cold
    // rows too — a primary and an all-hot replica holding the same data
    // must agree regardless of residency.
    auto table = db->GetTiered(name);
    if (!table.ok()) continue;
    std::size_t pk = (*table)->schema().primary_key_index();
    (*table)->ForEach([&](const storage::Row& row) {
      std::string key = name + "\x1f" + row[pk].ToString();
      std::size_t bucket =
          static_cast<std::size_t>(util::Sha1::Hash(key).bytes[0] >> 4);
      buckets[bucket] ^= FoldDigest(util::Sha1::Hash(RowString(name, row)));
    });
  }
  return buckets;
}

std::string FormatRangeDigests(
    const std::array<std::uint64_t, kDigestBuckets>& digests) {
  std::string out;
  char buf[20];
  for (std::uint64_t digest : digests) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    out += buf;
  }
  return out;
}

std::string ScoreFingerprint(storage::Database* db,
                             const std::string& id_hex) {
  auto table = db->GetTiered("software_scores");
  if (!table.ok()) return "absent";
  auto row = (*table)->Get(storage::Value::Str(id_hex));
  if (!row.ok()) return "absent";
  return RowString("software_scores", *row);
}

AntiEntropyAgent::AntiEntropyAgent(net::SimNetwork* network,
                                   net::EventLoop* loop, std::string shard,
                                   storage::Database* db,
                                   ReplicationShipper* shipper,
                                   AntiEntropyConfig config,
                                   obs::MetricsRegistry* metrics)
    : network_(network),
      loop_(loop),
      shard_(std::move(shard)),
      db_(db),
      shipper_(shipper),
      config_(config) {
  if (metrics != nullptr) {
    checks_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_anti_entropy_checks_total", "shard", shard_));
    repairs_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_anti_entropy_repairs_total", "shard", shard_));
    fences_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_anti_entropy_fences_total", "shard", shard_));
  }
}

Status AntiEntropyAgent::Start() {
  client_ = std::make_unique<net::RpcClient>(network_, loop_,
                                             shard_ + "!ae", shard_);
  net::RpcClient::BreakerConfig breaker;
  breaker.enabled = false;
  client_->set_breaker(breaker);
  client_->set_max_retries(0);
  PISREP_RETURN_IF_ERROR(client_->Start());
  ScheduleSweep();
  return Status::Ok();
}

void AntiEntropyAgent::ScheduleSweep() {
  loop_->ScheduleAfter(config_.period,
                       [this, alive = std::weak_ptr<int>(alive_)] {
                         if (alive.expired()) return;
                         RunSweep();
                       });
}

void AntiEntropyAgent::RunSweep() {
  for (int k = 0; k < shipper_->replica_count(); ++k) {
    // Only a channel that believes itself fully caught up is comparable —
    // anything else is still converging through normal shipping.
    if (!shipper_->channel_caught_up(k)) continue;
    client_->CallTo(
        shipper_->replica_address(k), kReplicaDigestMethod, XmlNode("p"),
        [this, k, alive = std::weak_ptr<int>(alive_)](
            Result<XmlNode> result) {
          if (alive.expired() || !result.ok()) return;
          const XmlNode& response = *result;
          if (response.AttributeOr("stale", "0") == "1") return;
          // Compare only at equal WAL positions; if either side moved on
          // while the digest was in flight, skip — next sweep catches it.
          if (AttrU64(response, "applied") != shipper_->head_seq()) return;
          ++checks_;
          if (checks_metric_) checks_metric_->Increment();
          // Fence-first: audit-chain divergence is tamper evidence, not a
          // replication bug — quarantine the replica instead of wiping the
          // evidence with a snapshot resync.
          trust::AuditChainStatus local_audit =
              trust::AuditChainStatusOf(db_);
          if (local_audit.present) {
            bool remote_broken =
                response.AttributeOr("audit_ok", "1") == "0";
            std::string remote_head =
                response.AttributeOr("audit_head", "");
            bool head_diverged =
                !remote_head.empty() && remote_head != local_audit.head_hash;
            if (!local_audit.ok) {
              // The *primary's* chain is broken: its own copy is suspect,
              // so it has no authority to fence or resync anyone.
              PISREP_LOG(kWarning)
                  << "anti-entropy: primary " << shard_
                  << " audit chain broken at index "
                  << local_audit.first_bad_index
                  << "; skipping replica comparison";
              return;
            }
            if (remote_broken || head_diverged) {
              ++fences_;
              if (fences_metric_) fences_metric_->Increment();
              PISREP_LOG(kWarning)
                  << "anti-entropy: replica "
                  << shipper_->replica_address(k) << " of " << shard_
                  << (remote_broken ? " has a broken audit chain"
                                    : " audit head diverged at equal WAL "
                                      "position")
                  << "; fencing (not repairing)";
              shipper_->FenceChannel(k);
              return;
            }
          }
          std::string local = FormatRangeDigests(RangeDigestsOf(db_));
          std::string remote = response.AttributeOr("digests", "");
          if (local == remote) return;
          ++repairs_;
          if (repairs_metric_) repairs_metric_->Increment();
          PISREP_LOG(kWarning)
              << "anti-entropy: replica " << shipper_->replica_address(k)
              << " of " << shard_
              << " diverged at equal WAL position; forcing snapshot resync";
          shipper_->ForceResync(k);
        },
        config_.rpc_timeout);
  }
  ScheduleSweep();
}

}  // namespace pisrep::cluster
