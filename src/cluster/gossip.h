#ifndef PISREP_CLUSTER_GOSSIP_H_
#define PISREP_CLUSTER_GOSSIP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "cluster/hash_ring.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/status.h"

namespace pisrep::cluster {

/// Gossip-plane RPC method, registered on every primary's RpcServer and
/// exempt from the replication response gate (membership chatter must keep
/// flowing while writes are blocked on a quorum).
inline constexpr std::string_view kGossipMethod = "ClusterGossip";

/// Tuning for the decentralized membership / failure-detection plane.
struct GossipConfig {
  bool enabled = true;
  /// Interval between gossip rounds (one digest exchange per round).
  util::Duration period = 2 * util::kSecond;
  /// A peer whose heartbeat has not advanced for this long is suspected
  /// dead; the designated successor then tries to fence and promote it.
  util::Duration suspicion_timeout = 6 * util::kSecond;
  util::Duration rpc_timeout = 2 * util::kSecond;
};

/// One shard's view of the gossip plane: a monotone heartbeat for itself,
/// the highest heartbeat heard for every peer, and when that last advanced.
///
/// Every round the agent bumps its own heartbeat and push-pulls digests
/// with one peer (round-robin over the sorted ring membership), so
/// liveness information spreads transitively without any central
/// controller. A peer silent past `suspicion_timeout` is suspected; the
/// *designated executor* — the first non-suspected successor of the dead
/// shard on the ring, so exactly one survivor acts — invokes the dead
/// callback, which fences the old primary and promotes its most-caught-up
/// replica. The callback may refuse (e.g. the primary is reachable from
/// the cluster's side — a partition, not a crash); either way the
/// suspicion clock rearms, retrying only after another full timeout.
///
/// Heartbeats are seeded with the sim clock at Start, not zero: a restarted
/// primary's first heartbeat then always exceeds whatever its previous
/// incarnation gossiped (time grows faster than one tick per round), so
/// recovery is visible to peers immediately.
class GossipAgent {
 public:
  /// Attempts fencing + promotion of a suspected-dead shard. Returns an
  /// error to refuse (suspicion rearms either way).
  using DeadCallback = std::function<util::Status(const std::string&)>;

  /// `ring` reflects current membership and must outlive the agent, as
  /// must the network and loop.
  GossipAgent(net::SimNetwork* network, net::EventLoop* loop,
              std::string self, const HashRing* ring, GossipConfig config,
              obs::MetricsRegistry* metrics, DeadCallback on_dead);

  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  /// Seeds the heartbeat, binds the gossip client and schedules the first
  /// round.
  util::Status Start();

  /// Registers the gossip handler on the shard's RPC server (merge the
  /// caller's digest, answer with our own).
  void AttachRpc(net::RpcServer* server);

  std::uint64_t heartbeat() const { return heartbeat_; }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t suspicions() const { return suspicions_; }

  /// True when `peer`'s heartbeat has been silent past the suspicion
  /// timeout in this agent's local view.
  bool Suspects(const std::string& peer) const;

 private:
  struct PeerState {
    std::uint64_t heartbeat = 0;
    util::TimePoint last_advance = 0;
  };

  xml::XmlNode BuildDigest() const;
  void MergeDigest(const xml::XmlNode& digest);
  void ScheduleRound();
  void RunRound();
  void CheckSuspicions();

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  std::string self_;
  const HashRing* ring_;
  GossipConfig config_;
  DeadCallback on_dead_;
  std::unique_ptr<net::RpcClient> client_;

  std::uint64_t heartbeat_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t suspicions_ = 0;
  std::size_t next_peer_ = 0;
  /// Sorted so suspicion checks walk peers in a deterministic order.
  std::map<std::string, PeerState> peers_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  obs::Counter* rounds_metric_ = nullptr;
  obs::Counter* suspicions_metric_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_GOSSIP_H_
