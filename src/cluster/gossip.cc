#include "cluster/gossip.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using xml::XmlNode;

std::uint64_t AttrU64(const XmlNode& node, std::string_view key) {
  auto parsed = util::ParseInt64(node.AttributeOr(key, "0"));
  if (!parsed.ok() || *parsed < 0) return 0;
  return static_cast<std::uint64_t>(*parsed);
}
}  // namespace

GossipAgent::GossipAgent(net::SimNetwork* network, net::EventLoop* loop,
                         std::string self, const HashRing* ring,
                         GossipConfig config, obs::MetricsRegistry* metrics,
                         DeadCallback on_dead)
    : network_(network),
      loop_(loop),
      self_(std::move(self)),
      ring_(ring),
      config_(config),
      on_dead_(std::move(on_dead)) {
  if (metrics != nullptr) {
    rounds_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_gossip_rounds_total", "shard", self_));
    suspicions_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_gossip_suspicions_total", "shard", self_));
  }
}

Status GossipAgent::Start() {
  // Seed with the sim clock: a restarted incarnation's heartbeat always
  // exceeds anything its predecessor gossiped.
  heartbeat_ = static_cast<std::uint64_t>(loop_->Now()) + 1;
  client_ = std::make_unique<net::RpcClient>(network_, loop_,
                                             self_ + "!gossip", self_);
  net::RpcClient::BreakerConfig breaker;
  breaker.enabled = false;
  client_->set_breaker(breaker);
  client_->set_max_retries(0);
  PISREP_RETURN_IF_ERROR(client_->Start());
  ScheduleRound();
  return Status::Ok();
}

void GossipAgent::AttachRpc(net::RpcServer* server) {
  server->RegisterMethod(
      std::string(kGossipMethod),
      [this](const XmlNode& request) -> Result<XmlNode> {
        MergeDigest(request);
        XmlNode result = BuildDigest();
        return result;
      });
}

XmlNode GossipAgent::BuildDigest() const {
  XmlNode digest("g");
  XmlNode& self = digest.AddChild("m");
  self.SetAttribute("n", self_);
  self.SetAttribute("h", std::to_string(heartbeat_));
  for (const auto& [name, state] : peers_) {
    XmlNode& member = digest.AddChild("m");
    member.SetAttribute("n", name);
    member.SetAttribute("h", std::to_string(state.heartbeat));
  }
  return digest;
}

void GossipAgent::MergeDigest(const XmlNode& digest) {
  util::TimePoint now = loop_->Now();
  for (const XmlNode* member : digest.FindChildren("m")) {
    std::string name = member->AttributeOr("n", "");
    if (name.empty() || name == self_) continue;
    std::uint64_t heartbeat = AttrU64(*member, "h");
    auto it = peers_.find(name);
    if (it == peers_.end()) {
      peers_.emplace(std::move(name), PeerState{heartbeat, now});
    } else if (heartbeat > it->second.heartbeat) {
      it->second.heartbeat = heartbeat;
      it->second.last_advance = now;
    }
  }
}

bool GossipAgent::Suspects(const std::string& peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  return loop_->Now() - it->second.last_advance >= config_.suspicion_timeout;
}

void GossipAgent::ScheduleRound() {
  loop_->ScheduleAfter(config_.period,
                       [this, alive = std::weak_ptr<int>(alive_)] {
                         if (alive.expired()) return;
                         RunRound();
                       });
}

void GossipAgent::RunRound() {
  ++rounds_;
  ++heartbeat_;
  if (rounds_metric_) rounds_metric_->Increment();
  std::vector<std::string> members = ring_->Members();
  std::erase(members, self_);
  if (!members.empty()) {
    const std::string& peer = members[next_peer_ % members.size()];
    ++next_peer_;
    client_->CallTo(
        peer, kGossipMethod, BuildDigest(),
        [this, alive = std::weak_ptr<int>(alive_)](Result<XmlNode> result) {
          if (alive.expired()) return;
          if (result.ok()) MergeDigest(*result);
        },
        config_.rpc_timeout);
  }
  CheckSuspicions();
  ScheduleRound();
}

void GossipAgent::CheckSuspicions() {
  util::TimePoint now = loop_->Now();
  std::vector<std::string> members = ring_->Members();
  // Forget departed members so a removed shard is never "suspected".
  std::erase_if(peers_, [&](const auto& entry) {
    return std::find(members.begin(), members.end(), entry.first) ==
           members.end();
  });
  for (const std::string& member : members) {
    if (member == self_) continue;
    auto it = peers_.find(member);
    if (it == peers_.end()) {
      // First sight: grant a full timeout of grace before suspecting.
      peers_.emplace(member, PeerState{0, now});
      continue;
    }
    if (now - it->second.last_advance < config_.suspicion_timeout) continue;
    // Exactly one survivor acts: the first non-suspected successor of the
    // dead shard on the ring. Re-evaluated every round, so if the executor
    // itself dies the next successor picks the duty up once the first
    // becomes suspected too.
    std::string executor;
    for (const std::string& successor :
         ring_->SuccessorsOf(member, members.size())) {
      if (!Suspects(successor)) {
        executor = successor;
        break;
      }
    }
    if (executor != self_) continue;
    ++suspicions_;
    if (suspicions_metric_) suspicions_metric_->Increment();
    PISREP_LOG(kWarning) << self_ << " suspects " << member
                         << " dead (heartbeat silent for "
                         << (now - it->second.last_advance) << " ticks)";
    Status acted = on_dead_(member);
    if (!acted.ok()) {
      PISREP_LOG(kInfo) << "failover of " << member
                        << " refused: " << acted.ToString();
    }
    // Attempted (or refused): rearm, retry only after another full
    // timeout of continued silence.
    it->second.last_advance = now;
  }
}

}  // namespace pisrep::cluster
