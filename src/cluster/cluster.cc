#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "cluster/router.h"
#include "proto/wire.h"
#include "util/logging.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using xml::XmlNode;
}  // namespace

// ---------------------------------------------------------------------------
// ShardNode
// ---------------------------------------------------------------------------

ShardNode::ShardNode(net::SimNetwork* network, net::EventLoop* loop,
                     std::string name,
                     server::ReputationServer::Config server_config,
                     ReplicationConfig replication, const HashRing* ring)
    : network_(network),
      loop_(loop),
      name_(std::move(name)),
      server_config_(std::move(server_config)),
      replication_(replication),
      ring_(ring) {
  // Tokens minted by any shard must validate on every shard and survive a
  // failover (a promoted backup restarts its RNG stream).
  server_config_.accounts.deterministic_tokens = true;
}

ShardNode::~ShardNode() = default;

Status ShardNode::Start() {
  auto db = storage::Database::Open("");
  if (!db.ok()) return db.status();
  db_ = std::move(db).value();
  PISREP_RETURN_IF_ERROR(StartPrimary());
  return StartReplica();
}

Status ShardNode::StartPrimary() {
  server_ = std::make_unique<server::ReputationServer>(db_.get(), loop_,
                                                       server_config_);
  PISREP_RETURN_IF_ERROR(server_->AttachRpc(network_, name_));
  InstallClusterMethods();
  return Status::Ok();
}

void ShardNode::InstallClusterMethods() {
  net::RpcServer* rpc = server_->rpc_server();
  PISREP_CHECK(rpc != nullptr) << "cluster methods need the RPC front-end";

  rpc->RegisterMethod(std::string(kPingMethod),
                      [](const XmlNode&) -> Result<XmlNode> {
                        return XmlNode("result");
                      });

  // The router fans a validated remark's trust side effect to the shards
  // that do not hold the rating row; only the account table is touched.
  rpc->RegisterMethod(
      std::string(kApplyRemarkMethod),
      [this](const XmlNode& request) -> Result<XmlNode> {
        auto author = request.ChildInt("author");
        auto positive = request.ChildInt("positive");
        auto at = request.ChildInt("at");
        if (!author.ok() || !positive.ok() || !at.ok()) {
          return Status::InvalidArgument("malformed ClusterApplyRemark");
        }
        PISREP_ASSIGN_OR_RETURN(
            double factor,
            server_->accounts().ApplyRemark(
                static_cast<core::UserId>(*author), *positive != 0,
                static_cast<util::TimePoint>(*at)));
        XmlNode result("result");
        result.AddDoubleChild("trust", factor);
        return result;
      });

  // Ownership guard: wrap every digest-routed method so a request that
  // lands on the wrong shard (stale router ring, client pointed directly
  // at a shard) is answered with an ownership-moved redirect instead of
  // silently creating divergent state.
  for (const char* routed :
       {"QuerySoftware", "SubmitRating", "ReportExecutions", "QueryFeed",
        "SubmitRemark"}) {
    PISREP_CHECK(IsDigestRoutedMethod(routed))
        << routed << " missing from the router's digest plane";
    net::RpcServer::Method original = rpc->FindMethod(routed);
    if (!original) continue;
    rpc->RegisterMethod(
        routed, [this, original = std::move(original),
                 method = std::string(routed)](
                    const XmlNode& request) -> Result<XmlNode> {
          PISREP_ASSIGN_OR_RETURN(util::Sha1Digest digest,
                                  RoutingDigestOf(method, request));
          const std::string& owner = ring_->OwnerOf(digest);
          if (owner != name_) {
            return Status::FailedPrecondition(
                proto::OwnershipMovedMessage(owner));
          }
          return original(request);
        });
  }
}

void ShardNode::InstallResponseGate() {
  if (server_ == nullptr || shipper_ == nullptr) return;
  net::RpcServer* rpc = server_->rpc_server();
  if (rpc == nullptr) return;
  // Raw capture is safe: the gate dies with the RPC server inside
  // server_->Stop()/reset, which KillPrimary runs before shipper_.reset().
  ReplicationShipper* shipper = shipper_.get();
  rpc->SetResponseGate(
      [shipper](const std::string& method, std::function<void()> send) {
        // Liveness probes must answer even when the backup lags or is
        // down — a gated ping would turn replication trouble into a
        // spurious failover of a healthy primary.
        if (method == kPingMethod) {
          send();
          return;
        }
        shipper->GateResponse(method, std::move(send));
      });
}

Status ShardNode::StartReplica() {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("shard has no primary database");
  }
  if (replica_ == nullptr) {
    replica_ = std::make_unique<ReplicaNode>(network_, name_ + "!replica");
    PISREP_RETURN_IF_ERROR(replica_->Start());
  }
  if (shipper_ == nullptr) {
    shipper_ = std::make_unique<ReplicationShipper>(
        network_, loop_, name_ + "!ship", name_ + "!replica", db_.get(),
        replication_, server_config_.metrics, name_);
    PISREP_RETURN_IF_ERROR(shipper_->Start());
    InstallResponseGate();
  } else {
    // Revive path: the backup is back (fresh and empty); the shipper's
    // next batch comes back stale and snapshot-resyncs it.
    shipper_->Pump();
  }
  return Status::Ok();
}

void ShardNode::KillPrimary() {
  if (server_ == nullptr) return;
  server_->Stop();   // unbinds the RPC endpoint (and the response gate)
  server_.reset();
  shipper_.reset();  // clears the db frame listener before the db dies
  db_.reset();
}

Status ShardNode::Promote() {
  if (server_ != nullptr) {
    ++promotions_refused_;
    return Status::FailedPrecondition("primary still alive");
  }
  if (replica_ == nullptr) {
    ++promotions_refused_;
    return Status::FailedPrecondition("no backup to promote");
  }
  if (replica_->stale()) {
    // A backup that knows it is missing acked records must never serve:
    // promoting it would silently drop acknowledged votes.
    ++promotions_refused_;
    return Status::FailedPrecondition("backup is stale; refusing promotion");
  }
  db_ = replica_->Detach();
  replica_.reset();
  PISREP_RETURN_IF_ERROR(StartPrimary());
  ++promotions_;
  // Stand up a fresh (empty) backup behind the new primary; the shipper's
  // seeded snapshot brings it to parity.
  return StartReplica();
}

// ---------------------------------------------------------------------------
// ShardCluster
// ---------------------------------------------------------------------------

ShardCluster::ShardCluster(net::SimNetwork* network, net::EventLoop* loop,
                           ClusterConfig config)
    : network_(network),
      loop_(loop),
      config_(std::move(config)),
      ring_(config_.vnodes_per_shard) {
  PISREP_CHECK(config_.num_shards > 0) << "a cluster needs at least one shard";
  config_.server.accounts.deterministic_tokens = true;
  for (int i = 0; i < config_.num_shards; ++i) ring_.AddShard(ShardName(i));
  misses_.assign(static_cast<std::size_t>(config_.num_shards), 0);
  for (int i = 0; i < config_.num_shards; ++i) {
    server::ReputationServer::Config shard_config = config_.server;
    if (i < static_cast<int>(config_.tuning.size())) {
      const ShardTuning& tuning = config_.tuning[static_cast<std::size_t>(i)];
      shard_config.aggregation_full_sweep_every = tuning.full_sweep_every;
      shard_config.aggregation_force_full_sweep = tuning.force_full_sweep;
    }
    shards_.push_back(std::make_unique<ShardNode>(
        network_, loop_, ShardName(i), std::move(shard_config),
        config_.replication, &ring_));
  }
  if (obs::MetricsRegistry* metrics = config_.server.metrics) {
    failovers_metric_ = metrics->GetCounter("pisrep_cluster_failovers_total");
    failovers_refused_metric_ =
        metrics->GetCounter("pisrep_cluster_failovers_refused_total");
    heartbeat_misses_metric_ =
        metrics->GetCounter("pisrep_cluster_heartbeat_misses_total");
  }
}

ShardCluster::~ShardCluster() = default;

std::string ShardCluster::ShardName(int i) const {
  return config_.name_prefix + std::to_string(i);
}

Status ShardCluster::Start() {
  for (auto& shard : shards_) {
    PISREP_RETURN_IF_ERROR(shard->Start());
  }
  if (config_.auto_failover && config_.heartbeat_period > 0) {
    StartHeartbeats();
  }
  return Status::Ok();
}

void ShardCluster::StopAll() {
  heartbeat_token_.reset();
  controller_.reset();
  for (auto& shard : shards_) shard->KillPrimary();
}

ShardNode* ShardCluster::OwnerShard(const core::SoftwareId& id) {
  const std::string& owner = ring_.OwnerOf(id);
  for (auto& shard : shards_) {
    if (shard->name() == owner) return shard.get();
  }
  PISREP_CHECK(false) << "ring owner " << owner << " is not a cluster shard";
  return nullptr;
}

Result<core::SoftwareScore> ShardCluster::GetScore(const core::SoftwareId& id) {
  ShardNode* owner = OwnerShard(id);
  if (!owner->primary_alive()) {
    return Status::Unavailable("owning shard's primary is down");
  }
  return owner->server()->registry().GetScore(id);
}

Result<core::VendorScore> ShardCluster::MergedVendorScore(
    const core::VendorId& vendor) {
  // Same arithmetic and same (sorted-shard) order as the router's scatter
  // merge, so native and RPC reads agree.
  double weighted_sum = 0.0;
  int total_count = 0;
  util::TimePoint computed_at = 0;
  for (const std::string& member : ring_.Members()) {
    ShardNode* node = nullptr;
    for (auto& shard : shards_) {
      if (shard->name() == member) node = shard.get();
    }
    if (node == nullptr || !node->primary_alive()) {
      return Status::Unavailable("shard primary down during vendor merge");
    }
    Result<core::VendorScore> leg =
        node->server()->registry().GetVendorScore(vendor);
    if (!leg.ok()) continue;  // the vendor has no software on this shard
    if (leg->software_count <= 0) continue;
    weighted_sum += leg->score * leg->software_count;
    total_count += leg->software_count;
    computed_at = std::max(computed_at, leg->computed_at);
  }
  if (total_count == 0) {
    return Status::NotFound("vendor has no scored software");
  }
  core::VendorScore merged;
  merged.vendor = vendor;
  merged.score = weighted_sum / total_count;
  merged.software_count = total_count;
  merged.computed_at = computed_at;
  return merged;
}

std::uint64_t ShardCluster::TotalVotesAccepted() const {
  // Counted from the vote store, not from ReputationServer::stats(): the
  // stats counter is in-memory primary state and resets on promotion, while
  // the store is exactly the replicated data the "no acked vote lost"
  // guarantee is about.
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->server() == nullptr) continue;
    server::VoteStore& votes = shard->server()->votes();
    for (const core::SoftwareId& id : votes.RatedSoftware()) {
      total += votes.VoteCountFor(id);
    }
  }
  return total;
}

void ShardCluster::RunAggregationAll(util::TimePoint now) {
  for (auto& shard : shards_) {
    if (shard->server() != nullptr) {
      shard->server()->aggregation().RunOnce(now);
    }
  }
}

Result<server::ActivationMail> ShardCluster::FetchMail(std::string_view email) {
  // Registration is broadcast, so every shard minted the mail — and with
  // deterministic tokens every copy carries the same token. Shard 0 is the
  // canonical mailbox; later shards cover the case where shard 0 failed
  // over (its mailbox is process state and died with the old primary).
  Status last = Status::Unavailable("no shard primary alive");
  for (auto& shard : shards_) {
    if (!shard->primary_alive()) continue;
    Result<server::ActivationMail> mail = shard->server()->FetchMail(email);
    if (mail.ok()) return mail;
    last = mail.status();
  }
  return last;
}

void ShardCluster::KillPrimary(int i) { shard(i)->KillPrimary(); }

Status ShardCluster::TriggerFailover(int i) {
  ShardNode* node = shard(i);
  node->KillPrimary();  // fence first — idempotent when already dead
  Status promoted = node->Promote();
  if (promoted.ok()) {
    ++failovers_;
    if (failovers_metric_ != nullptr) failovers_metric_->Increment();
  } else {
    if (failovers_refused_metric_ != nullptr) {
      failovers_refused_metric_->Increment();
    }
  }
  return promoted;
}

Status ShardCluster::ReviveReplica(int i) { return shard(i)->StartReplica(); }

std::uint64_t ShardCluster::failovers_refused() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->promotions_refused();
  return total;
}

void ShardCluster::StartHeartbeats() {
  controller_ = std::make_unique<net::RpcClient>(
      network_, loop_, config_.name_prefix + "!ctl", ShardName(0));
  // The controller is its own failure detector; the generic breaker and
  // retry machinery would only mask missed beats.
  net::RpcClient::BreakerConfig breaker;
  breaker.enabled = false;
  controller_->set_breaker(breaker);
  controller_->set_max_retries(0);
  Status started = controller_->Start();
  PISREP_CHECK(started.ok()) << "heartbeat controller: " << started.ToString();
  heartbeat_token_ = std::make_shared<int>(0);
  ScheduleHeartbeat();
}

void ShardCluster::ScheduleHeartbeat() {
  // Self-rescheduling (instead of SchedulePeriodic) so that StopAll lets
  // the event loop drain: once the token dies, no further tick is queued.
  loop_->ScheduleAfter(
      config_.heartbeat_period,
      [this, token = std::weak_ptr<int>(heartbeat_token_)] {
        if (token.expired()) return;
        HeartbeatTick();
        ScheduleHeartbeat();
      });
}

void ShardCluster::HeartbeatTick() {
  for (int i = 0; i < num_shards(); ++i) {
    controller_->CallTo(
        ShardName(i), kPingMethod, XmlNode("p"),
        [this, i, token = std::weak_ptr<int>(heartbeat_token_)](
            Result<XmlNode> result) {
          if (token.expired()) return;
          if (result.ok()) {
            misses_[static_cast<std::size_t>(i)] = 0;
            return;
          }
          ++misses_[static_cast<std::size_t>(i)];
          if (heartbeat_misses_metric_ != nullptr) {
            heartbeat_misses_metric_->Increment();
          }
          if (misses_[static_cast<std::size_t>(i)] >=
              config_.heartbeat_misses) {
            misses_[static_cast<std::size_t>(i)] = 0;
            Status failed_over = TriggerFailover(i);
            if (!failed_over.ok()) {
              PISREP_LOG(kWarning)
                  << "failover of " << ShardName(i)
                  << " refused: " << failed_over.ToString();
            }
          }
        },
        config_.heartbeat_period);
  }
}

}  // namespace pisrep::cluster
