#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "cluster/router.h"
#include "proto/wire.h"
#include "storage/table.h"
#include "storage/value.h"
#include "util/hex.h"
#include "util/logging.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using xml::XmlNode;

/// Column holding each digest-routed table's routing hex, or null when the
/// table is broadcast (users, activations, feeds) or derived
/// (vendor_scores, rebuilt after a reshard rather than moved).
const char* RoutingColumnOf(std::string_view table) {
  if (table == "software" || table == "software_scores" ||
      table == "run_stats") {
    return "id";
  }
  if (table == "behavior_reports" || table == "ratings" ||
      table == "feed_entries") {
    return "software";
  }
  if (table == "remarks") return "comment_key";
  return nullptr;
}

/// The 40-char routing hex of one row, empty when not parseable.
std::string RoutingHexOf(std::string_view table,
                         const storage::TableSchema& schema,
                         const storage::Row& row) {
  const char* column = RoutingColumnOf(table);
  if (column == nullptr) return "";
  auto index = schema.ColumnIndex(column);
  if (!index.ok()) return "";
  if (row[*index].type() != storage::ColumnType::kString) return "";
  std::string value = row[*index].AsStr();
  if (table == "remarks") {
    // comment_key is "<author>:<software hex>" — route by the digest.
    auto colon = value.find(':');
    if (colon == std::string::npos) return "";
    value = value.substr(colon + 1);
  }
  return value;
}

Result<util::Sha1Digest> DigestFromHex(const std::string& hex) {
  auto bytes = util::HexDecode(hex);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() != 20) {
    return Status::InvalidArgument("routing hex is not a SHA-1 digest");
  }
  util::Sha1Digest digest;
  std::copy(bytes->begin(), bytes->end(), digest.bytes.begin());
  return digest;
}
}  // namespace

// ---------------------------------------------------------------------------
// ShardNode
// ---------------------------------------------------------------------------

ShardNode::ShardNode(net::SimNetwork* network, net::EventLoop* loop,
                     std::string name,
                     server::ReputationServer::Config server_config,
                     ReplicationConfig replication, const HashRing* ring,
                     GossipConfig gossip, AntiEntropyConfig anti_entropy,
                     GossipAgent::DeadCallback on_dead)
    : network_(network),
      loop_(loop),
      name_(std::move(name)),
      server_config_(std::move(server_config)),
      replication_(replication),
      ring_(ring),
      gossip_config_(gossip),
      anti_entropy_config_(anti_entropy),
      on_dead_(std::move(on_dead)) {
  // Tokens minted by any shard must validate on every shard and survive a
  // failover (a promoted replica restarts its RNG stream).
  server_config_.accounts.deterministic_tokens = true;
}

ShardNode::~ShardNode() {
  // Agents hold raw pointers into server/shipper state; drop them first.
  gossip_.reset();
  anti_entropy_.reset();
}

Status ShardNode::Start() {
  auto db = storage::Database::Open("");
  if (!db.ok()) return db.status();
  db_ = std::move(db).value();
  PISREP_RETURN_IF_ERROR(StartPrimary());
  return StartReplicas();
}

Status ShardNode::StartPrimary() {
  server_ = std::make_unique<server::ReputationServer>(db_.get(), loop_,
                                                       server_config_);
  PISREP_RETURN_IF_ERROR(server_->AttachRpc(network_, name_));
  InstallClusterMethods();
  if (gossip_config_.enabled && on_dead_) {
    gossip_ = std::make_unique<GossipAgent>(network_, loop_, name_, ring_,
                                            gossip_config_,
                                            server_config_.metrics, on_dead_);
    PISREP_RETURN_IF_ERROR(gossip_->Start());
    gossip_->AttachRpc(server_->rpc_server());
  }
  return Status::Ok();
}

void ShardNode::InstallClusterMethods() {
  net::RpcServer* rpc = server_->rpc_server();
  PISREP_CHECK(rpc != nullptr) << "cluster methods need the RPC front-end";

  rpc->RegisterMethod(std::string(kPingMethod),
                      [](const XmlNode&) -> Result<XmlNode> {
                        return XmlNode("result");
                      });

  // The router fans a validated remark's trust side effect to the shards
  // that do not hold the rating row; only the account table is touched.
  rpc->RegisterMethod(
      std::string(kApplyRemarkMethod),
      [this](const XmlNode& request) -> Result<XmlNode> {
        auto author = request.ChildInt("author");
        auto positive = request.ChildInt("positive");
        auto at = request.ChildInt("at");
        if (!author.ok() || !positive.ok() || !at.ok()) {
          return Status::InvalidArgument("malformed ClusterApplyRemark");
        }
        PISREP_ASSIGN_OR_RETURN(
            double factor,
            server_->accounts().ApplyRemark(
                static_cast<core::UserId>(*author), *positive != 0,
                static_cast<util::TimePoint>(*at)));
        XmlNode result("result");
        result.AddDoubleChild("trust", factor);
        return result;
      });

  // Read-repair plane: the router probes the primary's exact stored score
  // row and asks it to resync a replica caught serving a diverged copy.
  rpc->RegisterMethod(
      std::string(kScoreFingerprintMethod),
      [this](const XmlNode& request) -> Result<XmlNode> {
        XmlNode result("result");
        result.SetAttribute(
            "fp", ScoreFingerprint(db_.get(),
                                   request.ChildText("id").value_or("")));
        result.SetAttribute(
            "head",
            std::to_string(shipper_ != nullptr ? shipper_->head_seq() : 0));
        return result;
      });
  rpc->RegisterMethod(
      std::string(kRepairReplicaMethod),
      [this](const XmlNode& request) -> Result<XmlNode> {
        if (shipper_ == nullptr) {
          return Status::FailedPrecondition("shard has no replication plane");
        }
        auto k = request.ChildInt("replica");
        if (!k.ok() || *k < 1 || *k > shipper_->replica_count()) {
          return Status::InvalidArgument("bad replica ordinal");
        }
        shipper_->ForceResync(static_cast<int>(*k) - 1);
        return XmlNode("result");
      });

  // Ownership guard: wrap every digest-routed method so a request that
  // lands on the wrong shard (stale router ring, client pointed directly
  // at a shard) is answered with an ownership-moved redirect instead of
  // silently creating divergent state.
  for (const char* routed :
       {"QuerySoftware", "SubmitRating", "ReportExecutions", "QueryFeed",
        "SubmitRemark"}) {
    PISREP_CHECK(IsDigestRoutedMethod(routed))
        << routed << " missing from the router's digest plane";
    net::RpcServer::Method original = rpc->FindMethod(routed);
    if (!original) continue;
    rpc->RegisterMethod(
        routed, [this, original = std::move(original),
                 method = std::string(routed)](
                    const XmlNode& request) -> Result<XmlNode> {
          PISREP_ASSIGN_OR_RETURN(util::Sha1Digest digest,
                                  RoutingDigestOf(method, request));
          const std::string& owner = ring_->OwnerOf(digest);
          if (owner != name_) {
            return Status::FailedPrecondition(
                proto::OwnershipMovedMessage(owner));
          }
          return original(request);
        });
  }
}

void ShardNode::InstallResponseGate() {
  if (server_ == nullptr || shipper_ == nullptr) return;
  net::RpcServer* rpc = server_->rpc_server();
  if (rpc == nullptr) return;
  // Raw capture is safe: the gate dies with the RPC server inside
  // server_->Stop()/reset, which KillPrimary runs before shipper_.reset().
  ReplicationShipper* shipper = shipper_.get();
  rpc->SetResponseGate(
      [shipper](const std::string& method, std::function<void()> send) {
        // The control plane must answer even when writes are blocked on a
        // quorum: a gated ping or gossip exchange would turn replication
        // trouble into a spurious failover of a healthy primary, and a
        // gated repair order could never heal the replica it waits on.
        if (method == kPingMethod || method == kGossipMethod ||
            method == kScoreFingerprintMethod ||
            method == kRepairReplicaMethod) {
          send();
          return;
        }
        shipper->GateResponse(method, std::move(send));
      });
}

Status ShardNode::StartReplicas() {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("shard has no primary database");
  }
  int want = std::max(0, replication_.replication_factor - 1);
  replicas_.resize(static_cast<std::size_t>(want));
  replica_fenced_.resize(static_cast<std::size_t>(want), false);
  std::vector<int> revived;
  for (int k = 0; k < want; ++k) {
    if (replicas_[static_cast<std::size_t>(k)] != nullptr) continue;
    auto node = std::make_unique<ReplicaNode>(network_,
                                              ReplicaAddress(name_, k + 1));
    PISREP_RETURN_IF_ERROR(node->Start());
    replicas_[static_cast<std::size_t>(k)] = std::move(node);
    // A freshly created node is a new machine: any fence verdict against
    // its predecessor dies with the predecessor.
    replica_fenced_[static_cast<std::size_t>(k)] = false;
    revived.push_back(k);
  }
  if (shipper_ == nullptr) {
    std::vector<std::string> addresses;
    for (int k = 1; k <= want; ++k) {
      addresses.push_back(ReplicaAddress(name_, k));
    }
    shipper_ = std::make_unique<ReplicationShipper>(
        network_, loop_, name_ + "!ship", std::move(addresses), db_.get(),
        replication_, server_config_.metrics, name_);
    shipper_->set_fence_listener([this](int k) {
      if (static_cast<std::size_t>(k) < replica_fenced_.size()) {
        replica_fenced_[static_cast<std::size_t>(k)] = true;
      }
    });
    PISREP_RETURN_IF_ERROR(shipper_->Start());
    InstallResponseGate();
    if (anti_entropy_config_.enabled && want > 0) {
      anti_entropy_ = std::make_unique<AntiEntropyAgent>(
          network_, loop_, name_, db_.get(), shipper_.get(),
          anti_entropy_config_, server_config_.metrics);
      PISREP_RETURN_IF_ERROR(anti_entropy_->Start());
    }
  } else {
    // Revive path: each recreated replica is fresh and empty — forget its
    // old ack position and snapshot it back to parity.
    for (int k : revived) shipper_->ReviveChannel(k);
    shipper_->Pump();
  }
  return Status::Ok();
}

void ShardNode::KillPrimary() {
  if (server_ == nullptr) return;
  gossip_.reset();        // unbinds the gossip client
  anti_entropy_.reset();  // unbinds the sweep client
  server_->Stop();        // unbinds the RPC endpoint (and the response gate)
  server_.reset();
  shipper_.reset();  // clears the db frame listener before the db dies
  db_.reset();
}

void ShardNode::KillReplica(int k) {
  replicas_[static_cast<std::size_t>(k)].reset();
}

Status ShardNode::Promote() {
  if (server_ != nullptr) {
    ++promotions_refused_;
    return Status::FailedPrecondition("primary still alive");
  }
  // The most-caught-up replica that does not know itself to be missing
  // acked records. Promoting a stale one would silently drop votes, and
  // promoting a fenced one would crown a copy whose audit chain says it
  // was tampered with.
  int best = -1;
  std::uint64_t best_applied = 0;
  for (int k = 0; k < replica_count(); ++k) {
    ReplicaNode* candidate = replica(k);
    if (candidate == nullptr || candidate->stale()) continue;
    if (replica_fenced(k)) continue;
    if (best < 0 || candidate->applied_seq() > best_applied) {
      best = k;
      best_applied = candidate->applied_seq();
    }
  }
  if (best < 0) {
    ++promotions_refused_;
    return Status::FailedPrecondition(
        "no promotable replica (all dead, stale or fenced)");
  }
  db_ = replica(best)->Detach();
  replicas_.clear();
  replica_fenced_.clear();
  PISREP_RETURN_IF_ERROR(StartPrimary());
  ++promotions_;
  // Stand up a fresh (empty) replica set behind the new primary; the
  // shipper's initial snapshots bring every copy to parity.
  return StartReplicas();
}

Status ShardNode::RestartPrimary() {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("shard has no primary database");
  }
  gossip_.reset();
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
  PISREP_RETURN_IF_ERROR(StartPrimary());
  InstallResponseGate();  // the shipper survived the bounce
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ShardCluster
// ---------------------------------------------------------------------------

ShardCluster::ShardCluster(net::SimNetwork* network, net::EventLoop* loop,
                           ClusterConfig config)
    : network_(network),
      loop_(loop),
      config_(std::move(config)),
      ring_(config_.vnodes_per_shard) {
  PISREP_CHECK(config_.num_shards > 0) << "a cluster needs at least one shard";
  config_.server.accounts.deterministic_tokens = true;
  for (int i = 0; i < config_.num_shards; ++i) {
    std::string name = config_.name_prefix + std::to_string(next_ordinal_++);
    ring_.AddShard(name);
    shards_.push_back(MakeShard(name, i));
  }
  if (obs::MetricsRegistry* metrics = config_.server.metrics) {
    failovers_metric_ = metrics->GetCounter("pisrep_cluster_failovers_total");
    failovers_refused_metric_ =
        metrics->GetCounter("pisrep_cluster_failovers_refused_total");
    reshards_metric_ = metrics->GetCounter("pisrep_cluster_reshards_total");
    migrated_rows_metric_ =
        metrics->GetCounter("pisrep_cluster_migrated_rows_total");
  }
}

ShardCluster::~ShardCluster() = default;

std::unique_ptr<ShardNode> ShardCluster::MakeShard(const std::string& name,
                                                   int tuning_index) {
  server::ReputationServer::Config shard_config = config_.server;
  if (tuning_index >= 0 &&
      tuning_index < static_cast<int>(config_.tuning.size())) {
    const ShardTuning& tuning =
        config_.tuning[static_cast<std::size_t>(tuning_index)];
    shard_config.aggregation_full_sweep_every = tuning.full_sweep_every;
    shard_config.aggregation_force_full_sweep = tuning.force_full_sweep;
  }
  return std::make_unique<ShardNode>(
      network_, loop_, name, std::move(shard_config), config_.replication,
      &ring_, config_.gossip, config_.anti_entropy,
      [this](const std::string& dead) { return OnGossipDeath(dead); });
}

std::string ShardCluster::ShardName(int i) const {
  return shards_[static_cast<std::size_t>(i)]->name();
}

std::vector<std::string> ShardCluster::ShardNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) names.push_back(shard->name());
  return names;
}

ShardNode* ShardCluster::FindShard(std::string_view name) {
  for (auto& shard : shards_) {
    if (shard->name() == name) return shard.get();
  }
  return nullptr;
}

Status ShardCluster::Start() {
  for (auto& shard : shards_) {
    PISREP_RETURN_IF_ERROR(shard->Start());
  }
  return Status::Ok();
}

void ShardCluster::StopAll() {
  for (auto& shard : shards_) shard->KillPrimary();
}

ShardNode* ShardCluster::OwnerShard(const core::SoftwareId& id) {
  const std::string& owner = ring_.OwnerOf(id);
  ShardNode* node = FindShard(owner);
  PISREP_CHECK(node != nullptr)
      << "ring owner " << owner << " is not a cluster shard";
  return node;
}

Result<core::SoftwareScore> ShardCluster::GetScore(const core::SoftwareId& id) {
  ShardNode* owner = OwnerShard(id);
  if (!owner->primary_alive()) {
    return Status::Unavailable("owning shard's primary is down");
  }
  return owner->server()->registry().GetScore(id);
}

Result<core::VendorScore> ShardCluster::MergedVendorScore(
    const core::VendorId& vendor) {
  // Same arithmetic and same (sorted-shard) order as the router's scatter
  // merge, so native and RPC reads agree.
  double weighted_sum = 0.0;
  int total_count = 0;
  util::TimePoint computed_at = 0;
  for (const std::string& member : ring_.Members()) {
    ShardNode* node = FindShard(member);
    if (node == nullptr || !node->primary_alive()) {
      return Status::Unavailable("shard primary down during vendor merge");
    }
    Result<core::VendorScore> leg =
        node->server()->registry().GetVendorScore(vendor);
    if (!leg.ok()) continue;  // the vendor has no software on this shard
    if (leg->software_count <= 0) continue;
    weighted_sum += leg->score * leg->software_count;
    total_count += leg->software_count;
    computed_at = std::max(computed_at, leg->computed_at);
  }
  if (total_count == 0) {
    return Status::NotFound("vendor has no scored software");
  }
  core::VendorScore merged;
  merged.vendor = vendor;
  merged.score = weighted_sum / total_count;
  merged.software_count = total_count;
  merged.computed_at = computed_at;
  return merged;
}

std::uint64_t ShardCluster::TotalVotesAccepted() const {
  // Counted from the vote store, not from ReputationServer::stats(): the
  // stats counter is in-memory primary state and resets on promotion, while
  // the store is exactly the replicated data the "no acked vote lost"
  // guarantee is about.
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->server() == nullptr) continue;
    server::VoteStore& votes = shard->server()->votes();
    for (const core::SoftwareId& id : votes.RatedSoftware()) {
      total += votes.VoteCountFor(id);
    }
  }
  return total;
}

void ShardCluster::RunAggregationAll(util::TimePoint now) {
  for (auto& shard : shards_) {
    if (shard->server() != nullptr) {
      shard->server()->aggregation().RunOnce(now);
    }
  }
}

Result<server::ActivationMail> ShardCluster::FetchMail(std::string_view email) {
  // Registration is broadcast, so every shard minted the mail — and with
  // deterministic tokens every copy carries the same token. Shard 0 is the
  // canonical mailbox; later shards cover the case where shard 0 failed
  // over (its mailbox is process state and died with the old primary).
  Status last = Status::Unavailable("no shard primary alive");
  for (auto& shard : shards_) {
    if (!shard->primary_alive()) continue;
    Result<server::ActivationMail> mail = shard->server()->FetchMail(email);
    if (mail.ok()) return mail;
    last = mail.status();
  }
  return last;
}

void ShardCluster::KillPrimary(int i) { shard(i)->KillPrimary(); }

Status ShardCluster::FailoverNode(ShardNode* node) {
  node->KillPrimary();  // fence first — idempotent when already dead
  Status promoted = node->Promote();
  if (promoted.ok()) {
    ++failovers_;
    if (failovers_metric_ != nullptr) failovers_metric_->Increment();
  } else {
    if (failovers_refused_metric_ != nullptr) {
      failovers_refused_metric_->Increment();
    }
  }
  return promoted;
}

Status ShardCluster::TriggerFailover(int i) { return FailoverNode(shard(i)); }

Status ShardCluster::OnGossipDeath(const std::string& name) {
  ShardNode* node = FindShard(name);
  if (node == nullptr) {
    return Status::NotFound("suspected shard already left the cluster");
  }
  if (node->primary_alive()) {
    // The gossip plane lost heartbeats but the primary process is there —
    // a partition, not a crash. In the sim the cluster object stands in
    // for the out-of-band fencing authority (IPMI, the cloud control
    // plane); a primary it can still see is never shot, so a partitioned
    // cluster cannot split-brain.
    return Status::FailedPrecondition("primary is alive; not fencing");
  }
  return FailoverNode(node);
}

Status ShardCluster::ReviveReplica(int i) { return shard(i)->StartReplicas(); }

std::uint64_t ShardCluster::failovers_refused() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->promotions_refused();
  return total;
}

// ---------------------------------------------------------------------------
// Elastic membership
// ---------------------------------------------------------------------------

Result<std::string> ShardCluster::AddShard() {
  for (auto& shard : shards_) {
    if (!shard->primary_alive()) {
      return Status::Unavailable(
          "cannot reshard while a primary is down: " + shard->name());
    }
  }
  std::string name = config_.name_prefix + std::to_string(next_ordinal_++);
  std::unique_ptr<ShardNode> node = MakeShard(name, -1);
  ShardNode* raw = node.get();
  // Start it *before* joining the ring: until the membership changes the
  // ownership guard redirects every digest-routed request away from it,
  // so a half-seeded newcomer can never serve.
  PISREP_RETURN_IF_ERROR(raw->Start());
  ring_.AddShard(name);
  shards_.push_back(std::move(node));
  // Broadcast tables exist in full on every shard; seed the newcomer's
  // copies (logged, so its replicas follow).
  PISREP_RETURN_IF_ERROR(CopyBroadcastTables(shards_[0].get(), raw));
  // Only the key ranges the ring now assigns to the newcomer move; every
  // other row stays put.
  for (auto& shard : shards_) {
    if (shard.get() == raw) continue;
    PISREP_RETURN_IF_ERROR(MigrateShardData(shard.get()));
  }
  for (auto& shard : shards_) {
    ClearVendorScores(shard.get());
    PISREP_RETURN_IF_ERROR(shard->RestartPrimary());
  }
  ++reshards_;
  if (reshards_metric_ != nullptr) reshards_metric_->Increment();
  PISREP_LOG(kInfo) << "cluster grew to " << shards_.size() << " shards (+"
                    << name << ")";
  return name;
}

Status ShardCluster::RemoveShard(const std::string& name) {
  if (shards_.size() < 2) {
    return Status::FailedPrecondition("cannot remove the last shard");
  }
  ShardNode* node = FindShard(name);
  if (node == nullptr) return Status::NotFound("no such shard: " + name);
  for (auto& shard : shards_) {
    if (!shard->primary_alive()) {
      return Status::Unavailable(
          "cannot reshard while a primary is down: " + shard->name());
    }
  }
  // Leave the ring first: from here OwnerOf never answers `name`, so the
  // migration below drains *everything* digest-routed off the node and
  // new writes land on the inheritors.
  ring_.RemoveShard(name);
  Status migrated = MigrateShardData(node);
  if (!migrated.ok()) {
    ring_.AddShard(name);  // roll the membership back; nothing was torn down
    return migrated;
  }
  for (auto& shard : shards_) {
    if (shard.get() == node) continue;
    ClearVendorScores(shard.get());
    PISREP_RETURN_IF_ERROR(shard->RestartPrimary());
  }
  node->KillPrimary();
  std::erase_if(shards_, [&](const std::unique_ptr<ShardNode>& shard) {
    return shard.get() == node;
  });
  ++reshards_;
  if (reshards_metric_ != nullptr) reshards_metric_->Increment();
  PISREP_LOG(kInfo) << "cluster shrank to " << shards_.size() << " shards (-"
                    << name << ")";
  return Status::Ok();
}

Status ShardCluster::MigrateShardData(ShardNode* source) {
  storage::Database* db = source->db();
  for (const std::string& table_name : db->TableNames()) {
    if (RoutingColumnOf(table_name) == nullptr) continue;
    // Facade access: migration must drain cold rows off the node too.
    auto table = db->GetTiered(table_name);
    if (!table.ok()) continue;
    const storage::TableSchema& schema = (*table)->schema();
    std::size_t pk = schema.primary_key_index();
    // Collect first, move second: mutating a table mid-ForEach is UB.
    std::vector<std::pair<std::string, storage::Row>> moving;
    (*table)->ForEach([&](const storage::Row& row) {
      std::string hex = RoutingHexOf(table_name, schema, row);
      if (hex.empty()) return;
      auto digest = DigestFromHex(hex);
      if (!digest.ok()) return;
      const std::string& owner = ring_.OwnerOf(*digest);
      if (owner == source->name()) return;
      moving.emplace_back(owner, row);
    });
    for (auto& [owner, row] : moving) {
      ShardNode* target = FindShard(owner);
      if (target == nullptr) {
        return Status::Internal("row owner " + owner + " is not a shard");
      }
      auto target_table = target->db()->GetTiered(table_name);
      if (!target_table.ok()) return target_table.status();
      // Logged on both sides: the receivers' and the source's replicas
      // stream the move through ordinary WAL shipping.
      PISREP_RETURN_IF_ERROR((*target_table)->Upsert(row));
      PISREP_RETURN_IF_ERROR((*table)->Delete(row[pk]));
      ++migrated_rows_;
      if (migrated_rows_metric_ != nullptr) migrated_rows_metric_->Increment();
    }
  }
  return Status::Ok();
}

Status ShardCluster::CopyBroadcastTables(ShardNode* from, ShardNode* to) {
  for (const char* table_name : {"users", "activations", "feeds"}) {
    auto source = from->db()->GetTiered(table_name);
    if (!source.ok()) continue;  // feature not enabled on this deployment
    auto target = to->db()->GetTiered(table_name);
    if (!target.ok()) return target.status();
    std::vector<storage::Row> rows;
    (*source)->ForEach([&](const storage::Row& row) { rows.push_back(row); });
    for (storage::Row& row : rows) {
      PISREP_RETURN_IF_ERROR((*target)->Upsert(std::move(row)));
    }
  }
  return Status::Ok();
}

void ShardCluster::ClearVendorScores(ShardNode* node) {
  auto table = node->db()->GetTiered("vendor_scores");
  if (!table.ok()) return;
  std::size_t pk = (*table)->schema().primary_key_index();
  std::vector<storage::Value> keys;
  (*table)->ForEach(
      [&](const storage::Row& row) { keys.push_back(row[pk]); });
  for (const storage::Value& key : keys) {
    Status deleted = (*table)->Delete(key);
    PISREP_CHECK(deleted.ok()) << "vendor score delete cannot fail";
  }
}

}  // namespace pisrep::cluster
