#ifndef PISREP_CLUSTER_ROUTER_H_
#define PISREP_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "core/types.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/binary_codec.h"
#include "util/atomic_shared_ptr.h"
#include "util/random.h"
#include "util/status.h"

namespace pisrep::cluster {

/// True for the methods routed by software digest (the rest are account
/// broadcasts, scatters, or cluster-internal).
bool IsDigestRoutedMethod(const std::string& method);

/// The software digest a digest-routed request routes on; failure when the
/// request carries none (or a malformed one). Shared by the router (to
/// pick the owning shard) and the shard-side ownership guard (to verify
/// it).
util::Result<util::Sha1Digest> RoutingDigestOf(const std::string& method,
                                               const xml::XmlNode& request);

/// Router tuning.
struct RouterConfig {
  /// The address the router binds — clients talk to it exactly as they
  /// would to a single server ("server" in the sim).
  std::string service_address = "server";
  int vnodes_per_shard = 64;
  /// Per-forwarded-call RPC timeout.
  util::Duration call_timeout = 5 * util::kSecond;
  /// A broadcast leg to an unreachable shard is retried this many times
  /// (deferred retry: it holds that shard's pipeline, never the others) —
  /// sized to ride out a failover detection + promotion cycle.
  int leg_attempts = 5;
  util::Duration leg_retry_delay = 2 * util::kSecond;
  /// Ownership-moved redirects followed per request.
  int max_redirects = 3;
  /// Seed for the router's puzzle-nonce stream.
  std::uint64_t nonce_seed = 0x9047e5;
  /// Read repair: after a successful QuerySoftware, probe this many of the
  /// owning shard's replicas (ordinals 1..read_fanout) and compare their
  /// stored score row against the primary's; a replica that is at the same
  /// WAL position yet answers differently is forced into snapshot resync.
  /// The client's response is never delayed. 0 disables.
  int read_fanout = 0;
  /// Period of the vendor-index refresh. 0 keeps the historical per-query
  /// QueryVendor scatter for QuerySoftware vendor-score rewrites; > 0
  /// pulls each shard's snapshot-published vendor aggregates
  /// (QueryVendorIndex) every period, merges them into an immutable index
  /// published by one atomic pointer swap, and rewrites vendor scores from
  /// that index with no per-query fan-out. Vendors absent from the index
  /// (fresh vendor, shard mid-restart) fall back to the scatter.
  util::Duration vendor_index_refresh = 0;
  /// Speak the compact binary codec on upstream shard calls (shards
  /// negotiate per frame, so this is safe to flip per router).
  bool upstream_binary = false;
};

/// The client-facing front door of the cluster (and, pointed at by a
/// ClientApp, its drop-in replacement for a single server address).
///
/// The router is deliberately *not* an RpcServer — RpcServer handlers are
/// synchronous, and a proxy must suspend a request while the upstream call
/// is in flight. It binds the service address directly on the SimNetwork,
/// parses the request envelope, and re-envelopes the upstream response
/// under the original request id.
///
/// Three routing planes:
///  - digest plane (QuerySoftware, SubmitRating, ReportExecutions,
///    QueryFeed, SubmitRemark): forwarded to the ring owner of the
///    software digest; `ownership-moved` redirects are chased.
///  - account plane (RequestPuzzle, Register, Activate, Login): broadcast
///    to every shard through per-shard FIFO pipelines — every shard
///    observes the same account operations in the same global order, so
///    account state converges on all shards. A downed shard defers its
///    pipeline (bounded retries), it never blocks the others.
///  - scatter plane (QueryVendor): fanned out to all shards and merged
///    deterministically in sorted-shard order (vendor scores are weighted
///    by per-shard software counts). QuerySoftware responses get their
///    embedded vendor score rewritten from the same merge, so a clustered
///    query is indistinguishable from a single-server one.
///
/// SubmitRemark is a hybrid: the remark itself lives with the software
/// owner (which validates it), and on success the trust-factor side effect
/// is propagated to the other shards through the ordered pipelines
/// (ClusterApplyRemark), since every shard weighs its own votes by the
/// author's trust at aggregation time.
class Router {
 public:
  /// The network and loop must outlive the router. `metrics` and `tracer`
  /// may be null.
  Router(net::SimNetwork* network, net::EventLoop* loop, RouterConfig config,
         obs::MetricsRegistry* metrics, obs::Tracer* tracer);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the service and upstream addresses.
  util::Status Start();

  /// Shard membership. A shard's ring name IS its network service address.
  void AddShard(const std::string& name);
  void RemoveShard(const std::string& name);

  const HashRing& ring() const { return ring_; }
  /// Replaces the ring wholesale — tests use this to induce ownership skew
  /// (router believes one mapping, shards another) and exercise the
  /// ownership-moved redirect path.
  void SetRing(HashRing ring) { ring_ = std::move(ring); }

  std::uint64_t requests() const { return requests_; }
  std::uint64_t redirects_followed() const { return redirects_followed_; }
  /// Replicas detected serving a diverged score row and sent to resync.
  std::uint64_t read_repairs() const { return read_repairs_; }
  /// Vendor rewrites answered from the merged index (no scatter) vs.
  /// rewrites that fell back to the per-query scatter.
  std::uint64_t vendor_index_hits() const { return vendor_index_hits_; }
  std::uint64_t vendor_index_misses() const { return vendor_index_misses_; }
  /// Completed vendor-index refresh rounds (all shards answered).
  std::uint64_t vendor_index_refreshes() const {
    return vendor_index_refreshes_;
  }
  /// Forces one vendor-index refresh round now (tests; normally the
  /// periodic schedule drives this). No-op while the ring is empty.
  void RefreshVendorIndexNow() { RefreshVendorIndex(); }

 private:
  /// One client-visible broadcast operation, fanned into N pipeline legs.
  struct BroadcastOp {
    std::string client;
    std::string id;
    int pending = 0;
    /// The membership snapshot the op fanned out to — legs are judged
    /// against the *current* ring when the op completes, so a shard
    /// evicted mid-broadcast cannot fail the whole op.
    std::vector<std::string> shards;
    std::vector<std::optional<util::Result<xml::XmlNode>>> results;
  };

  /// One queued call in a shard's FIFO pipeline: either a leg of a
  /// BroadcastOp, or a fire-and-forget effect (ClusterApplyRemark).
  struct PipelineItem {
    std::string method;
    xml::XmlNode request;
    std::shared_ptr<BroadcastOp> op;  ///< null for effect items
    int shard_index = 0;              ///< index into op->results
    int attempts_left = 0;
  };

  struct Pipeline {
    std::deque<PipelineItem> queue;
    bool busy = false;
  };

  /// Cluster-wide per-vendor aggregates, merged from every shard's
  /// snapshot-published vendor scores. Immutable once published: readers
  /// pin a version with one acquire load; the refresher swaps in a whole
  /// new table with one release store (RCU — same discipline as the
  /// server-side ScoreSnapshot, so the rewrite path takes no lock).
  struct VendorIndex {
    std::unordered_map<std::string, core::VendorScore> by_name;
  };

  void HandleMessage(const net::Message& message);
  /// Routes one client-visible request (an unbatched frame, or one member
  /// of a batch frame).
  void DispatchRequest(const net::Message& message,
                       const xml::XmlNode& request);
  void Reply(const std::string& client, const std::string& id,
             util::Result<xml::XmlNode> result);
  void ReplyError(const std::string& client, const std::string& id,
                  const util::Status& error);

  /// Digest plane.
  void RouteByDigest(const net::Message& message, const xml::XmlNode& request,
                     const std::string& method, const std::string& id);
  void ForwardTo(const std::string& shard, const std::string& method,
                 xml::XmlNode request, const std::string& client,
                 const std::string& id, int redirects_left);

  /// Account plane.
  void Broadcast(const net::Message& message, xml::XmlNode request,
                 const std::string& method, const std::string& id);
  void EnqueueEffect(const std::string& shard, const std::string& method,
                     xml::XmlNode request);
  void PumpShard(const std::string& shard);
  void IssueHead(const std::string& shard);
  void FinishBroadcastOp(const std::shared_ptr<BroadcastOp>& op);

  /// Scatter plane.
  void ScatterVendor(const net::Message& message, const xml::XmlNode& request,
                     const std::string& id);
  /// Fans QueryVendor(`vendor`) to all shards and hands the deterministic
  /// merge (or NotFound) to `done`.
  void MergeVendor(const std::string& session, const std::string& vendor,
                   std::function<void(util::Result<xml::XmlNode>)> done);

  /// Read-repair plane: fire-and-forget comparison of the owning shard's
  /// replicas against its primary for one software's score row.
  void StartReadRepair(const std::string& shard, const std::string& id_hex);

  /// Vendor-index plane: one refresh round (scatter QueryVendorIndex to
  /// all shards; publish the merged index only if every leg answered).
  void RefreshVendorIndex();
  void ScheduleVendorIndexRefresh();
  /// The merged vendor node for `vendor`, or nullopt when the index has
  /// no round published yet or does not know the vendor (scatter fallback).
  std::optional<xml::XmlNode> VendorNodeFromIndex(const std::string& vendor);

  obs::Counter* ShardRequestCounter(const std::string& shard);

  net::SimNetwork* network_;
  net::EventLoop* loop_;
  RouterConfig config_;
  net::RpcClient rpc_;  ///< upstream half, bound at service_address + "!up"
  HashRing ring_;
  util::Rng nonce_rng_;
  std::unordered_map<std::string, Pipeline> pipelines_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  std::uint64_t requests_ = 0;
  std::uint64_t redirects_followed_ = 0;
  std::uint64_t read_repairs_ = 0;
  std::uint64_t vendor_index_hits_ = 0;
  std::uint64_t vendor_index_misses_ = 0;
  std::uint64_t vendor_index_refreshes_ = 0;

  /// Published merged index (null until the first complete refresh round).
  util::AtomicSharedPtr<const VendorIndex> vendor_index_;
  /// The codec each client last spoke; replies go back in kind. XML when
  /// a client has never been seen (defensive — every reply follows a
  /// request, which records the codec first).
  std::unordered_map<std::string, proto::WireCodec> client_codecs_;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::unordered_map<std::string, obs::Counter*> shard_counters_;
  obs::Counter* broadcast_ops_metric_ = nullptr;
  obs::Counter* ownership_moved_metric_ = nullptr;
  obs::Counter* effect_failures_metric_ = nullptr;
  obs::Counter* read_repairs_metric_ = nullptr;
  obs::Counter* binary_requests_metric_ = nullptr;
  obs::Counter* batched_requests_metric_ = nullptr;
  obs::Counter* vendor_index_hits_metric_ = nullptr;
  obs::Histogram* scatter_ms_ = nullptr;
};

}  // namespace pisrep::cluster

#endif  // PISREP_CLUSTER_ROUTER_H_
