#include "cluster/router.h"

#include <utility>

#include "cluster/replication.h"
#include "proto/wire.h"
#include "util/hex.h"
#include "util/logging.h"
#include "util/sha1.h"
#include "util/string_util.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using util::StatusCode;
using xml::XmlNode;

constexpr std::string_view kApplyRemarkMethod = "ClusterApplyRemark";

bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDataLoss;
}

std::uint64_t AttrU64(const XmlNode& node, std::string_view key) {
  auto parsed = util::ParseInt64(node.AttributeOr(key, "0"));
  if (!parsed.ok() || *parsed < 0) return 0;
  return static_cast<std::uint64_t>(*parsed);
}

}  // namespace

Result<util::Sha1Digest> RoutingDigestOf(const std::string& method,
                                         const XmlNode& request) {
  std::string hex;
  if (method == "SubmitRating") {
    const XmlNode* software = request.FindChild("software");
    if (software == nullptr) {
      return Status::InvalidArgument("missing <software> element");
    }
    hex = software->AttributeOr("id", "");
  } else {
    hex = request.ChildText("id").value_or("");
  }
  auto bytes = util::HexDecode(hex);
  util::Sha1Digest digest;
  if (!bytes.ok() || bytes->size() != digest.bytes.size()) {
    return Status::InvalidArgument("request without a valid software id");
  }
  for (std::size_t i = 0; i < digest.bytes.size(); ++i) {
    digest.bytes[i] = (*bytes)[i];
  }
  return digest;
}

bool IsDigestRoutedMethod(const std::string& method) {
  return method == "QuerySoftware" || method == "SubmitRating" ||
         method == "ReportExecutions" || method == "QueryFeed" ||
         method == "SubmitRemark";
}

namespace {
bool IsBroadcast(const std::string& method) {
  return method == "RequestPuzzle" || method == "Register" ||
         method == "Activate" || method == "Login";
}
}  // namespace

Router::Router(net::SimNetwork* network, net::EventLoop* loop,
               RouterConfig config, obs::MetricsRegistry* metrics,
               obs::Tracer* tracer)
    : network_(network),
      loop_(loop),
      config_(std::move(config)),
      rpc_(network, loop, config_.service_address + "!up",
           /*server_address=*/""),
      ring_(config_.vnodes_per_shard),
      nonce_rng_(config_.nonce_seed),
      metrics_(metrics) {
  // The router retries broadcast legs itself (deferred per-shard retry);
  // digest-plane calls lean on the per-server breaker to fail fast while a
  // shard is down, which the client's own retry/queue machinery absorbs.
  rpc_.AttachObservability(metrics, tracer);
  if (config_.upstream_binary) rpc_.set_codec(proto::WireCodec::kBinary);
  if (metrics_ != nullptr) {
    broadcast_ops_metric_ =
        metrics_->GetCounter("pisrep_cluster_router_broadcast_ops_total");
    ownership_moved_metric_ =
        metrics_->GetCounter("pisrep_cluster_router_ownership_moved_total");
    effect_failures_metric_ =
        metrics_->GetCounter("pisrep_cluster_router_effect_failures_total");
    read_repairs_metric_ =
        metrics_->GetCounter("pisrep_cluster_read_repairs_total");
    // Same counter names as RpcServer's codec/batch metrics: the router is
    // the cluster's hand-rolled front door, and dashboards should see one
    // series per deployment regardless of which binary answered.
    binary_requests_metric_ =
        metrics_->GetCounter("pisrep_proto_binary_requests_total");
    batched_requests_metric_ =
        metrics_->GetCounter("pisrep_rpc_batched_requests_total");
    vendor_index_hits_metric_ =
        metrics_->GetCounter("pisrep_cluster_vendor_index_hits_total");
    scatter_ms_ = metrics_->GetHistogram(
        "pisrep_cluster_router_scatter_ms",
        {10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0});
  }
}

Router::~Router() { network_->Unbind(config_.service_address); }

Status Router::Start() {
  PISREP_RETURN_IF_ERROR(rpc_.Start());
  PISREP_RETURN_IF_ERROR(network_->Bind(
      config_.service_address,
      [this](const net::Message& m) { HandleMessage(m); }));
  if (config_.vendor_index_refresh > 0) ScheduleVendorIndexRefresh();
  return Status::Ok();
}

void Router::AddShard(const std::string& name) {
  ring_.AddShard(name);
  pipelines_.try_emplace(name);
}

void Router::RemoveShard(const std::string& name) { ring_.RemoveShard(name); }

obs::Counter* Router::ShardRequestCounter(const std::string& shard) {
  if (metrics_ == nullptr) return nullptr;
  auto it = shard_counters_.find(shard);
  if (it != shard_counters_.end()) return it->second;
  obs::Counter* counter = metrics_->GetCounter(obs::WithLabel(
      "pisrep_cluster_router_requests_total", "shard", shard));
  shard_counters_.emplace(shard, counter);
  return counter;
}

void Router::HandleMessage(const net::Message& message) {
  auto decoded = proto::DecodeFrame(message.payload);
  if (!decoded.ok()) return;
  // Reply-in-kind: remember the codec this client last spoke so every
  // response (including ones produced much later by an async upstream
  // callback) goes back the way the request came.
  client_codecs_[message.from] = decoded->codec;
  if (decoded->codec == proto::WireCodec::kBinary &&
      binary_requests_metric_ != nullptr) {
    binary_requests_metric_->Increment();
  }
  const XmlNode& node = decoded->node;
  if (node.name() == "batch") {
    // Unbundle: each member routes independently (they usually land on
    // different shards) and is answered with its own response frame — the
    // RpcClient matches responses by id, so per-member replies complete a
    // batched call just as well as one batch frame, without the router
    // holding the fastest shard's answer hostage to the slowest.
    for (const XmlNode& child : node.children()) {
      if (child.name() != "request") continue;
      if (batched_requests_metric_) batched_requests_metric_->Increment();
      DispatchRequest(message, child);
    }
    return;
  }
  if (node.name() != "request") return;
  DispatchRequest(message, node);
}

void Router::DispatchRequest(const net::Message& message,
                             const XmlNode& request) {
  std::string id = request.AttributeOr("id", "");
  std::string method = request.AttributeOr("method", "");
  ++requests_;

  if (ring_.empty()) {
    ReplyError(message.from, id,
               Status::Unavailable("cluster has no shards"));
    return;
  }
  if (IsBroadcast(method)) {
    Broadcast(message, request, method, id);
  } else if (method == "QueryVendor") {
    ScatterVendor(message, request, id);
  } else if (IsDigestRoutedMethod(method)) {
    RouteByDigest(message, request, method, id);
  } else {
    ReplyError(message.from, id,
               Status::NotFound("no such method: " + method));
  }
}

void Router::Reply(const std::string& client, const std::string& id,
                   Result<XmlNode> result) {
  XmlNode response("response");
  response.SetAttribute("id", id);
  if (result.ok()) {
    // Re-envelope the upstream response under the downstream request id;
    // everything else (status, body attributes, children, text) passes
    // through verbatim.
    for (const auto& [key, value] : result->attributes()) {
      if (key == "id") continue;
      response.SetAttribute(key, value);
    }
    for (const XmlNode& child : result->children()) response.AddChild(child);
    if (!result->text().empty()) response.set_text(result->text());
    if (!response.HasAttribute("status")) {
      response.SetAttribute("status", "ok");
    }
  } else {
    response.SetAttribute("status", "error");
    response.SetAttribute("code",
                          util::StatusCodeName(result.status().code()));
    response.set_text(result.status().message());
  }
  proto::WireCodec codec = proto::WireCodec::kXml;
  if (auto it = client_codecs_.find(client); it != client_codecs_.end()) {
    codec = it->second;
  }
  network_->Send(config_.service_address, client,
                 proto::EncodeFrame(response, codec));
}

void Router::ReplyError(const std::string& client, const std::string& id,
                        const Status& error) {
  Reply(client, id, Result<XmlNode>(error));
}

// ---------------------------------------------------------------------------
// Digest plane
// ---------------------------------------------------------------------------

void Router::RouteByDigest(const net::Message& message,
                           const XmlNode& request, const std::string& method,
                           const std::string& id) {
  auto digest = RoutingDigestOf(method, request);
  if (!digest.ok()) {
    ReplyError(message.from, id, digest.status());
    return;
  }
  ForwardTo(ring_.OwnerOf(*digest), method, request, message.from, id,
            config_.max_redirects);
}

void Router::ForwardTo(const std::string& shard, const std::string& method,
                       XmlNode request, const std::string& client,
                       const std::string& id, int redirects_left) {
  if (obs::Counter* counter = ShardRequestCounter(shard)) {
    counter->Increment();
  }
  XmlNode to_send = request;
  rpc_.CallTo(
      shard, method, std::move(to_send),
      [this, shard, method, request = std::move(request), client, id,
       redirects_left](Result<XmlNode> result) mutable {
        if (!result.ok() &&
            result.status().code() == StatusCode::kFailedPrecondition &&
            proto::IsOwnershipMoved(result.status().message())) {
          std::string target =
              proto::OwnershipMovedTarget(result.status().message());
          if (redirects_left > 0 && ring_.Contains(target) &&
              target != shard) {
            ++redirects_followed_;
            if (ownership_moved_metric_) ownership_moved_metric_->Increment();
            ForwardTo(target, method, std::move(request), client, id,
                      redirects_left - 1);
            return;
          }
        }
        if (result.ok() && method == "SubmitRemark") {
          // The owner validated and stored the remark; propagate its
          // trust-factor side effect to every other shard through the
          // ordered pipelines — each shard weighs its own votes by the
          // author's trust at aggregation time.
          XmlNode effect("r");
          effect.AddTextChild("author",
                              request.ChildText("author").value_or("0"));
          effect.AddTextChild("positive",
                              request.ChildText("positive").value_or("0"));
          effect.AddIntChild("at", loop_->Now());
          for (const std::string& member : ring_.Members()) {
            if (member == shard) continue;
            EnqueueEffect(member, std::string(kApplyRemarkMethod), effect);
          }
        }
        if (result.ok() && method == "QuerySoftware") {
          // Read repair rides on real read traffic: compare the replicas'
          // stored copy of this score row against the primary's, in the
          // background — the client's response is never delayed.
          StartReadRepair(shard, request.ChildText("id").value_or(""));
          // The owning shard reports the vendor score over its own slice
          // of the vendor's software; rewrite it with the cluster-wide
          // merge so a clustered answer matches a single server's.
          const XmlNode* software = result->FindChild("software");
          std::string company =
              software ? software->AttributeOr("company", "") : "";
          if (!company.empty()) {
            // Fast path: rewrite from the merged vendor index — no
            // per-query scatter, the index was paid for once per refresh
            // period. An unknown vendor (fresh, or no round published
            // yet) falls back to the historical scatter.
            if (std::optional<XmlNode> vendor = VendorNodeFromIndex(company);
                vendor.has_value()) {
              auto& children = result->children();
              std::erase_if(children, [](const XmlNode& child) {
                return child.name() == "vendor";
              });
              result->AddChild(*std::move(vendor));
              Reply(client, id, std::move(result));
              return;
            }
            std::string session = request.ChildText("session").value_or("");
            MergeVendor(
                session, company,
                [this, client, id, base = std::move(result)](
                    Result<XmlNode> merged) mutable {
                  auto& children = base->children();
                  std::erase_if(children, [](const XmlNode& child) {
                    return child.name() == "vendor";
                  });
                  if (merged.ok()) {
                    if (const XmlNode* vendor = merged->FindChild("vendor")) {
                      base->AddChild(*vendor);
                    }
                  }
                  Reply(client, id, std::move(base));
                });
            return;
          }
        }
        Reply(client, id, std::move(result));
      },
      config_.call_timeout);
}

// ---------------------------------------------------------------------------
// Account plane (ordered broadcast)
// ---------------------------------------------------------------------------

void Router::Broadcast(const net::Message& message, XmlNode request,
                       const std::string& method, const std::string& id) {
  if (broadcast_ops_metric_) broadcast_ops_metric_->Increment();
  if (method == "RequestPuzzle") {
    // One router-minted nonce forced onto every shard: each shard stores
    // the same outstanding puzzle, so the later Register broadcast
    // validates everywhere without any cross-shard RNG lockstep.
    request.AddTextChild("nonce", nonce_rng_.NextToken(16));
  }
  std::vector<std::string> members = ring_.Members();
  auto op = std::make_shared<BroadcastOp>();
  op->client = message.from;
  op->id = id;
  op->pending = static_cast<int>(members.size());
  op->shards = members;
  op->results.resize(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    PipelineItem item;
    item.method = method;
    item.request = request;
    item.op = op;
    item.shard_index = static_cast<int>(i);
    item.attempts_left = config_.leg_attempts;
    pipelines_[members[i]].queue.push_back(std::move(item));
    PumpShard(members[i]);
  }
}

void Router::EnqueueEffect(const std::string& shard,
                           const std::string& method, XmlNode request) {
  PipelineItem item;
  item.method = method;
  item.request = std::move(request);
  item.attempts_left = config_.leg_attempts;
  pipelines_[shard].queue.push_back(std::move(item));
  PumpShard(shard);
}

void Router::PumpShard(const std::string& shard) {
  Pipeline& pipeline = pipelines_[shard];
  if (pipeline.busy || pipeline.queue.empty()) return;
  pipeline.busy = true;
  IssueHead(shard);
}

void Router::IssueHead(const std::string& shard) {
  Pipeline& pipeline = pipelines_[shard];
  PISREP_CHECK(pipeline.busy && !pipeline.queue.empty());
  PipelineItem& item = pipeline.queue.front();
  if (obs::Counter* counter = ShardRequestCounter(shard)) {
    counter->Increment();
  }
  XmlNode to_send = item.request;
  rpc_.CallTo(
      shard, item.method, std::move(to_send),
      [this, shard](Result<XmlNode> result) {
        Pipeline& p = pipelines_[shard];
        PipelineItem& head = p.queue.front();
        if (!result.ok() && IsTransportError(result.status()) &&
            head.attempts_left > 1 && ring_.Contains(shard)) {
          // Deferred retry: the shard is (probably) failing over. Hold
          // this pipeline — order within the shard must not change — and
          // try the same op again shortly. A shard evicted from the ring
          // mid-broadcast is not retried: its leg completes with the
          // error, which FinishBroadcastOp discounts.
          --head.attempts_left;
          loop_->ScheduleAfter(config_.leg_retry_delay,
                               [this, shard,
                                alive = std::weak_ptr<int>(alive_)] {
                                 if (alive.expired()) return;
                                 IssueHead(shard);
                               });
          return;
        }
        if (head.op != nullptr) {
          head.op->results[static_cast<std::size_t>(head.shard_index)] =
              std::move(result);
          if (--head.op->pending == 0) FinishBroadcastOp(head.op);
        } else if (!result.ok()) {
          if (effect_failures_metric_) effect_failures_metric_->Increment();
          PISREP_LOG(kWarning)
              << "router: effect " << head.method << " on " << shard
              << " failed: " << result.status().ToString();
        }
        p.queue.pop_front();
        p.busy = false;
        PumpShard(shard);
      },
      config_.call_timeout);
}

void Router::FinishBroadcastOp(const std::shared_ptr<BroadcastOp>& op) {
  // Legs are judged against the membership as of completion, not as of
  // fan-out: a shard removed while the op was in flight no longer holds
  // authoritative state, so its failure (or success) must not decide the
  // client's answer.
  //
  // A transport failure on any *still-member* leg surfaces to the client
  // (the op may not have applied on that shard; the caller's retry heals
  // it), in lowest-shard order for determinism. Otherwise the lowest
  // still-member shard's response is canonical — all shards executed the
  // same op.
  for (std::size_t i = 0; i < op->results.size(); ++i) {
    const auto& result = op->results[i];
    if (result.has_value() && !result->ok() &&
        IsTransportError(result->status()) && ring_.Contains(op->shards[i])) {
      Reply(op->client, op->id, *result);
      return;
    }
  }
  for (std::size_t i = 0; i < op->results.size(); ++i) {
    if (op->results[i].has_value() && ring_.Contains(op->shards[i])) {
      Reply(op->client, op->id, *op->results[i]);
      return;
    }
  }
  // Every fanned-out shard has since left the ring; fall back to any
  // answer at all rather than dropping the client on the floor.
  for (const auto& result : op->results) {
    if (result.has_value()) {
      Reply(op->client, op->id, *result);
      return;
    }
  }
  ReplyError(op->client, op->id,
             Status::Unavailable("broadcast lost every shard"));
}

// ---------------------------------------------------------------------------
// Scatter plane
// ---------------------------------------------------------------------------

namespace {
/// Accumulator shared by a vendor scatter's legs.
struct VendorScatter {
  std::vector<std::optional<Result<XmlNode>>> results;
  int pending = 0;
  util::TimePoint started = 0;
  std::function<void(Result<XmlNode>)> done;
};
}  // namespace

void Router::MergeVendor(const std::string& session,
                         const std::string& vendor,
                         std::function<void(Result<XmlNode>)> done) {
  std::vector<std::string> members = ring_.Members();
  auto scatter = std::make_shared<VendorScatter>();
  scatter->results.resize(members.size());
  scatter->pending = static_cast<int>(members.size());
  scatter->started = loop_->Now();
  scatter->done = std::move(done);
  for (std::size_t i = 0; i < members.size(); ++i) {
    XmlNode params("r");
    params.AddTextChild("session", session);
    params.AddTextChild("vendor", vendor);
    if (obs::Counter* counter = ShardRequestCounter(members[i])) {
      counter->Increment();
    }
    rpc_.CallTo(
        members[i], "QueryVendor", std::move(params),
        [this, scatter, vendor, i](Result<XmlNode> result) {
          scatter->results[i] = std::move(result);
          if (--scatter->pending > 0) return;
          if (scatter_ms_) {
            scatter_ms_->Observe(
                static_cast<double>(loop_->Now() - scatter->started) /
                static_cast<double>(util::kMillisecond));
          }
          // Deterministic merge in sorted-shard order: a vendor's cluster
          // score is the software-count-weighted mean of the per-shard
          // means. NotFound legs own none of the vendor's software and
          // contribute nothing; any other failure wins (lowest shard
          // first) so the caller can retry.
          double weighted = 0.0;
          std::int64_t total = 0;
          for (const auto& leg : scatter->results) {
            if (!leg.has_value()) continue;
            if (!leg->ok()) {
              if (leg->status().code() == StatusCode::kNotFound) continue;
              scatter->done(leg->status());
              return;
            }
            const XmlNode* node = (*leg)->FindChild("vendor");
            if (node == nullptr) continue;
            auto score = util::ParseDouble(node->AttributeOr("score", "0"));
            auto count = util::ParseInt64(node->AttributeOr("count", "0"));
            if (!score.ok() || !count.ok() || *count <= 0) continue;
            weighted += *score * static_cast<double>(*count);
            total += *count;
          }
          if (total == 0) {
            scatter->done(Status::NotFound("no such vendor: " + vendor));
            return;
          }
          XmlNode merged("result");
          XmlNode& node = merged.AddChild("vendor");
          node.SetAttribute("name", vendor);
          node.SetAttribute(
              "score",
              util::StrFormat("%.6f",
                              weighted / static_cast<double>(total)));
          node.SetAttribute("count", std::to_string(total));
          scatter->done(std::move(merged));
        },
        config_.call_timeout);
  }
}

void Router::ScatterVendor(const net::Message& message,
                           const XmlNode& request, const std::string& id) {
  std::string session = request.ChildText("session").value_or("");
  std::string vendor = request.ChildText("vendor").value_or("");
  MergeVendor(session, vendor,
              [this, client = message.from, id](Result<XmlNode> merged) {
                Reply(client, id, std::move(merged));
              });
}

// ---------------------------------------------------------------------------
// Vendor-index plane
// ---------------------------------------------------------------------------

std::optional<XmlNode> Router::VendorNodeFromIndex(
    const std::string& vendor) {
  std::shared_ptr<const VendorIndex> index =
      vendor_index_.Load();
  if (index == nullptr) {
    // No complete round published yet: that is a scatter fallback too.
    ++vendor_index_misses_;
    return std::nullopt;
  }
  auto it = index->by_name.find(vendor);
  if (it == index->by_name.end()) {
    ++vendor_index_misses_;
    return std::nullopt;
  }
  ++vendor_index_hits_;
  if (vendor_index_hits_metric_) vendor_index_hits_metric_->Increment();
  // Byte-identical to MergeVendor's merged node, pinned by cluster_test:
  // the rewrite must not betray which path produced it.
  XmlNode node("vendor");
  node.SetAttribute("name", it->second.vendor);
  node.SetAttribute("score", util::StrFormat("%.6f", it->second.score));
  node.SetAttribute("count", std::to_string(it->second.software_count));
  return node;
}

namespace {
/// Accumulator shared by one vendor-index refresh round's legs.
struct IndexScatter {
  std::vector<std::optional<Result<XmlNode>>> results;
  int pending = 0;
};
}  // namespace

void Router::RefreshVendorIndex() {
  std::vector<std::string> members = ring_.Members();
  if (members.empty()) return;
  auto scatter = std::make_shared<IndexScatter>();
  scatter->results.resize(members.size());
  scatter->pending = static_cast<int>(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    rpc_.CallTo(
        members[i], "QueryVendorIndex", XmlNode("r"),
        [this, scatter, i, alive = std::weak_ptr<int>(alive_)](
            Result<XmlNode> result) {
          if (alive.expired()) return;
          scatter->results[i] = std::move(result);
          if (--scatter->pending > 0) return;
          // Publish only a complete round: a partial index would misstate
          // every vendor whose software the missing shard owns (the merge
          // weights by per-shard counts). Until a round completes, the
          // previous index keeps serving — vendors merely go stale, never
          // wrong-by-omission.
          VendorIndex merged;
          std::unordered_map<std::string, double> weighted;
          for (const auto& leg : scatter->results) {
            if (!leg.has_value() || !leg->ok()) {
              PISREP_LOG(kWarning)
                  << "router: vendor-index refresh leg failed ("
                  << (leg.has_value() ? leg->status().ToString()
                                      : "no result")
                  << "); keeping previous index";
              return;
            }
            for (const XmlNode& child : (*leg)->children()) {
              if (child.name() != "vendor") continue;
              auto score = util::ParseDouble(child.AttributeOr("score", "0"));
              auto count = util::ParseInt64(child.AttributeOr("count", "0"));
              auto at =
                  util::ParseInt64(child.AttributeOr("computed_at", "0"));
              if (!score.ok() || !count.ok() || *count <= 0) continue;
              std::string name = child.AttributeOr("name", "");
              if (name.empty()) continue;
              core::VendorScore& entry = merged.by_name[name];
              entry.vendor = name;
              entry.software_count += static_cast<int>(*count);
              if (at.ok() && *at > entry.computed_at) entry.computed_at = *at;
              weighted[name] += *score * static_cast<double>(*count);
            }
          }
          for (auto& [name, entry] : merged.by_name) {
            entry.score =
                weighted[name] / static_cast<double>(entry.software_count);
          }
          vendor_index_.Store(
              std::make_shared<const VendorIndex>(std::move(merged)));
          ++vendor_index_refreshes_;
        },
        config_.call_timeout);
  }
}

void Router::ScheduleVendorIndexRefresh() {
  RefreshVendorIndex();
  loop_->ScheduleAfter(config_.vendor_index_refresh,
                       [this, alive = std::weak_ptr<int>(alive_)] {
                         if (alive.expired()) return;
                         ScheduleVendorIndexRefresh();
                       });
}

// ---------------------------------------------------------------------------
// Read-repair plane
// ---------------------------------------------------------------------------

namespace {
/// Accumulator shared by one read-repair probe's legs.
struct ReadProbe {
  int pending = 0;
  bool primary_ok = false;
  std::string primary_fp;
  std::uint64_t primary_head = 0;
  struct ReplicaLeg {
    bool ok = false;
    bool stale = false;
    std::uint64_t applied = 0;
    std::string fp;
  };
  std::vector<ReplicaLeg> replicas;
};
}  // namespace

void Router::StartReadRepair(const std::string& shard,
                             const std::string& id_hex) {
  if (config_.read_fanout <= 0 || id_hex.empty()) return;
  auto probe = std::make_shared<ReadProbe>();
  probe->replicas.resize(static_cast<std::size_t>(config_.read_fanout));
  probe->pending = 1 + config_.read_fanout;
  auto finish = [this, shard, probe] {
    if (--probe->pending > 0) return;
    if (!probe->primary_ok) return;
    for (std::size_t k = 0; k < probe->replicas.size(); ++k) {
      const ReadProbe::ReplicaLeg& leg = probe->replicas[k];
      // Divergence means: the replica claims the exact same WAL position
      // as the primary yet stores different bytes. A merely *lagging*
      // replica is not divergent — shipping is already on it.
      if (!leg.ok || leg.stale || leg.applied != probe->primary_head ||
          leg.fp == probe->primary_fp) {
        continue;
      }
      ++read_repairs_;
      if (read_repairs_metric_) read_repairs_metric_->Increment();
      PISREP_LOG(kWarning) << "router: read repair — replica " << (k + 1)
                           << " of " << shard
                           << " diverges from its primary; ordering resync";
      XmlNode repair("r");
      repair.AddIntChild("replica", static_cast<std::int64_t>(k + 1));
      rpc_.CallTo(shard, kRepairReplicaMethod, std::move(repair),
                  [](Result<XmlNode>) {}, config_.call_timeout);
    }
  };
  XmlNode params("r");
  params.AddTextChild("id", id_hex);
  rpc_.CallTo(
      shard, kScoreFingerprintMethod, params,
      [probe, finish, alive = std::weak_ptr<int>(alive_)](
          Result<XmlNode> result) {
        if (alive.expired()) return;
        if (result.ok()) {
          probe->primary_ok = true;
          probe->primary_fp = result->AttributeOr("fp", "");
          probe->primary_head = AttrU64(*result, "head");
        }
        finish();
      },
      config_.call_timeout);
  for (int k = 1; k <= config_.read_fanout; ++k) {
    rpc_.CallTo(
        ReplicaAddress(shard, k), kReplicaScoreMethod, params,
        [probe, finish, k, alive = std::weak_ptr<int>(alive_)](
            Result<XmlNode> result) {
          if (alive.expired()) return;
          ReadProbe::ReplicaLeg& leg =
              probe->replicas[static_cast<std::size_t>(k - 1)];
          if (result.ok()) {
            leg.ok = true;
            leg.stale = result->AttributeOr("stale", "0") == "1";
            leg.applied = AttrU64(*result, "applied");
            leg.fp = result->AttributeOr("fp", "");
          }
          finish();
        },
        config_.call_timeout);
  }
}

}  // namespace pisrep::cluster
