#include "cluster/replication.h"

#include <algorithm>
#include <utility>

#include "util/hex.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using xml::XmlNode;

constexpr std::string_view kReplicateMethod = "ShardReplicate";
constexpr std::string_view kStatusMethod = "ShardReplicaStatus";

std::uint64_t AttrU64(const XmlNode& node, std::string_view key) {
  auto parsed = util::ParseInt64(node.AttributeOr(key, "0"));
  if (!parsed.ok() || *parsed < 0) return 0;
  return static_cast<std::uint64_t>(*parsed);
}
}  // namespace

// ---------------------------------------------------------------------------
// ReplicationLog
// ---------------------------------------------------------------------------

std::uint64_t ReplicationLog::Append(std::string frame) {
  frames_.push_back(std::move(frame));
  ++head_seq_;
  while (frames_.size() > max_records_) {
    frames_.pop_front();
    ++base_seq_;
  }
  return head_seq_;
}

bool ReplicationLog::CollectAfter(
    std::uint64_t after, std::size_t max_batch,
    std::vector<std::pair<std::uint64_t, std::string>>* out) const {
  if (after < base_seq_) return false;  // span already dropped
  for (std::size_t i = after - base_seq_;
       i < frames_.size() && out->size() < max_batch; ++i) {
    out->emplace_back(base_seq_ + 1 + i, frames_[i]);
  }
  return true;
}

void ReplicationLog::PruneThrough(std::uint64_t upto) {
  while (!frames_.empty() && base_seq_ < upto) {
    frames_.pop_front();
    ++base_seq_;
  }
}

void ReplicationLog::Clear() {
  frames_.clear();
  base_seq_ = head_seq_;
}

// ---------------------------------------------------------------------------
// ReplicaNode
// ---------------------------------------------------------------------------

ReplicaNode::ReplicaNode(net::SimNetwork* network, std::string address)
    : network_(network), address_(std::move(address)) {
  auto db = storage::Database::Open("");
  PISREP_CHECK(db.ok()) << "in-memory database open cannot fail";
  db_ = std::move(db).value();
}

Status ReplicaNode::Start() {
  rpc_ = std::make_unique<net::RpcServer>(network_, address_);
  rpc_->RegisterMethod(
      std::string(kReplicateMethod),
      [this](const XmlNode& request) { return HandleReplicate(request); });
  rpc_->RegisterMethod(
      std::string(kStatusMethod), [this](const XmlNode&) -> Result<XmlNode> {
        XmlNode result("result");
        result.SetAttribute("applied", std::to_string(applied_seq_));
        result.SetAttribute("stale", stale_ ? "1" : "0");
        return result;
      });
  return rpc_->Start();
}

Result<XmlNode> ReplicaNode::HandleReplicate(const XmlNode& request) {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("replica detached");
  }
  std::uint64_t first_seq = AttrU64(request, "first_seq");
  if (first_seq == 0) {
    return Status::InvalidArgument("replicate batch without first_seq");
  }
  if (request.AttributeOr("reset", "0") == "1") {
    // Snapshot resync: the primary replaced history; drop everything and
    // rebuild from the frames that follow.
    auto fresh = storage::Database::Open("");
    PISREP_CHECK(fresh.ok()) << "in-memory database open cannot fail";
    db_ = std::move(fresh).value();
    applied_seq_ = first_seq - 1;
    stale_ = false;
    ++resets_;
  } else if (first_seq > applied_seq_ + 1) {
    // A gap: records were shipped past us (lost batch beyond the primary's
    // retention, or we restarted empty). Only a snapshot can heal this.
    stale_ = true;
  }
  if (!stale_) {
    std::uint64_t seq = first_seq;
    for (const XmlNode* frame_node : request.FindChildren("f")) {
      std::uint64_t this_seq = seq++;
      if (this_seq <= applied_seq_) continue;  // duplicate of a re-sent batch
      auto bytes = util::HexDecode(frame_node->text());
      if (!bytes.ok()) {
        stale_ = true;
        break;
      }
      std::string frame(bytes->begin(), bytes->end());
      Status applied = db_->ApplyReplicatedFrame(frame);
      if (!applied.ok()) {
        PISREP_LOG(kWarning) << "replica " << address_ << " failed frame "
                             << this_seq << ": " << applied.ToString();
        stale_ = true;
        break;
      }
      applied_seq_ = this_seq;
    }
  }
  XmlNode result("result");
  result.SetAttribute("acked", std::to_string(applied_seq_));
  result.SetAttribute("stale", stale_ ? "1" : "0");
  return result;
}

std::unique_ptr<storage::Database> ReplicaNode::Detach() {
  rpc_.reset();
  return std::move(db_);
}

// ---------------------------------------------------------------------------
// ReplicationShipper
// ---------------------------------------------------------------------------

ReplicationShipper::ReplicationShipper(
    net::SimNetwork* network, net::EventLoop* loop, std::string client_address,
    std::string replica_address, storage::Database* primary_db,
    ReplicationConfig config, obs::MetricsRegistry* metrics,
    std::string shard_label)
    : network_(network),
      loop_(loop),
      db_(primary_db),
      config_(config),
      replica_address_(std::move(replica_address)),
      rpc_(network, loop, std::move(client_address), replica_address_),
      log_(config.max_log_records) {
  // The shipper runs its own retry/resync state machine; the generic client
  // breaker would only add a second layer of fast-fails on top of it.
  net::RpcClient::BreakerConfig breaker;
  breaker.enabled = false;
  rpc_.set_breaker(breaker);
  rpc_.set_max_retries(0);
  if (metrics != nullptr) {
    lag_gauge_ = metrics->GetGauge(obs::WithLabel(
        "pisrep_cluster_replication_lag_records", "shard", shard_label));
    shipped_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_replication_shipped_total", "shard", shard_label));
    resyncs_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_replication_resyncs_total", "shard", shard_label));
    degraded_acks_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_degraded_acks_total", "shard", shard_label));
  }
}

ReplicationShipper::~ReplicationShipper() { db_->SetFrameListener({}); }

Status ReplicationShipper::Start() {
  PISREP_RETURN_IF_ERROR(rpc_.Start());
  // Seed the log with a full snapshot so a brand-new empty backup can
  // replay from sequence 1; everything after arrives via the listener.
  PISREP_RETURN_IF_ERROR(
      db_->ExportSnapshotFrames([this](const std::string& frame) {
        log_.Append(frame);
        return Status::Ok();
      }));
  db_->SetFrameListener([this](const std::string& frame) { OnFrame(frame); });
  UpdateLagGauge();
  Pump();
  return Status::Ok();
}

void ReplicationShipper::OnFrame(const std::string& frame) {
  log_.Append(frame);
  UpdateLagGauge();
  Pump();
}

void ReplicationShipper::GateResponse(const std::string& method,
                                      std::function<void()> send) {
  (void)method;  // all methods gate on WAL position, none on their name
  std::uint64_t needed = log_.head_seq();
  if (needed <= acked_seq_ || !config_.synchronous_acks) {
    send();
    return;
  }
  if (degraded_) {
    ++degraded_acks_;
    if (degraded_acks_metric_) degraded_acks_metric_->Increment();
    send();
    return;
  }
  gates_.emplace_back(needed, std::move(send));
  Pump();
}

void ReplicationShipper::StartResync() {
  log_.Clear();
  reset_at_seq_ = log_.head_seq() + 1;
  ++resyncs_;
  if (resyncs_metric_) resyncs_metric_->Increment();
  Status exported = db_->ExportSnapshotFrames([this](const std::string& frame) {
    log_.Append(frame);
    return Status::Ok();
  });
  PISREP_CHECK(exported.ok()) << "snapshot export cannot fail in-memory";
  // The snapshot must survive in the log until the backup acks it; a
  // snapshot larger than the retention window could never be shipped.
  PISREP_CHECK(log_.base_seq() < reset_at_seq_)
      << "replication log retention smaller than a full snapshot";
}

void ReplicationShipper::Pump() {
  if (in_flight_) return;
  if (acked_seq_ >= log_.head_seq()) return;  // fully caught up
  std::uint64_t from = acked_seq_;
  if (reset_at_seq_ != 0) {
    from = std::max(acked_seq_, reset_at_seq_ - 1);
  } else if (acked_seq_ < log_.base_seq()) {
    // The backup is beyond the bounded catch-up window: replace history
    // with a snapshot (the first shipped batch carries the reset marker).
    StartResync();
    from = reset_at_seq_ - 1;
  }
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  if (!log_.CollectAfter(from, config_.max_batch_records, &batch) ||
      batch.empty()) {
    return;
  }

  XmlNode params("r");
  params.SetAttribute("first_seq", std::to_string(batch.front().first));
  if (reset_at_seq_ != 0 && batch.front().first == reset_at_seq_) {
    params.SetAttribute("reset", "1");
  }
  for (const auto& [seq, frame] : batch) {
    params.AddTextChild("f", util::HexEncode(frame));
  }
  in_flight_ = true;
  rpc_.Call(
      kReplicateMethod, std::move(params),
      [this, alive = std::weak_ptr<int>(alive_)](Result<XmlNode> result) {
        if (alive.expired()) return;
        HandleShipResult(std::move(result));
      },
      config_.ship_timeout);
}

void ReplicationShipper::HandleShipResult(Result<XmlNode> result) {
  in_flight_ = false;
  if (!result.ok()) {
    ++consecutive_failures_;
    if (!degraded_ &&
        consecutive_failures_ >= config_.degraded_after_failures) {
      EnterDegraded();
    }
    // Keep probing while responses are still gated on us; once degraded
    // with nothing gated, go quiescent — new frames and an explicit Pump
    // (after the backup is revived) restart shipping.
    if ((!degraded_ || !gates_.empty()) && !retry_scheduled_) {
      retry_scheduled_ = true;
      loop_->ScheduleAfter(config_.retry_delay,
                           [this, alive = std::weak_ptr<int>(alive_)] {
                             if (alive.expired()) return;
                             retry_scheduled_ = false;
                             Pump();
                           });
    }
    return;
  }
  consecutive_failures_ = 0;
  degraded_ = false;  // the backup is reachable again
  const XmlNode& response = *result;
  if (response.AttributeOr("stale", "0") == "1") {
    StartResync();
  } else {
    std::uint64_t acked = AttrU64(response, "acked");
    if (acked > acked_seq_) {
      if (shipped_metric_) shipped_metric_->Increment(acked - acked_seq_);
      acked_seq_ = acked;
      log_.PruneThrough(acked_seq_);
      if (reset_at_seq_ != 0 && acked_seq_ >= reset_at_seq_) {
        reset_at_seq_ = 0;  // the snapshot head landed; back to streaming
      }
      FlushGatesThrough(acked_seq_);
    }
  }
  UpdateLagGauge();
  Pump();
}

void ReplicationShipper::FlushGatesThrough(std::uint64_t seq) {
  while (!gates_.empty() && gates_.front().first <= seq) {
    auto send = std::move(gates_.front().second);
    gates_.pop_front();
    send();
  }
}

void ReplicationShipper::EnterDegraded() {
  degraded_ = true;
  PISREP_LOG(kWarning) << "replication to " << replica_address_
                       << " degraded after " << consecutive_failures_
                       << " failures; releasing " << gates_.size()
                       << " gated responses";
  while (!gates_.empty()) {
    auto send = std::move(gates_.front().second);
    gates_.pop_front();
    ++degraded_acks_;
    if (degraded_acks_metric_) degraded_acks_metric_->Increment();
    send();
  }
}

void ReplicationShipper::UpdateLagGauge() {
  if (lag_gauge_ == nullptr) return;
  lag_gauge_->Set(static_cast<std::int64_t>(log_.head_seq() - acked_seq_));
}

}  // namespace pisrep::cluster
