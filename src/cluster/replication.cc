#include "cluster/replication.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "cluster/anti_entropy.h"
#include "trust/audit_log.h"
#include "util/hex.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::cluster {

namespace {
using util::Result;
using util::Status;
using xml::XmlNode;

std::uint64_t AttrU64(const XmlNode& node, std::string_view key) {
  auto parsed = util::ParseInt64(node.AttributeOr(key, "0"));
  if (!parsed.ok() || *parsed < 0) return 0;
  return static_cast<std::uint64_t>(*parsed);
}
}  // namespace

std::string ReplicaAddress(const std::string& shard, int k) {
  return shard + "!r" + std::to_string(k);
}

// ---------------------------------------------------------------------------
// ReplicationLog
// ---------------------------------------------------------------------------

std::uint64_t ReplicationLog::Append(std::string frame) {
  frames_.push_back(std::move(frame));
  ++head_seq_;
  while (frames_.size() > max_records_) {
    frames_.pop_front();
    ++base_seq_;
  }
  return head_seq_;
}

bool ReplicationLog::CollectAfter(
    std::uint64_t after, std::size_t max_batch,
    std::vector<std::pair<std::uint64_t, std::string>>* out) const {
  if (after < base_seq_) return false;  // span already dropped
  for (std::size_t i = after - base_seq_;
       i < frames_.size() && out->size() < max_batch; ++i) {
    out->emplace_back(base_seq_ + 1 + i, frames_[i]);
  }
  return true;
}

void ReplicationLog::PruneThrough(std::uint64_t upto) {
  while (!frames_.empty() && base_seq_ < upto) {
    frames_.pop_front();
    ++base_seq_;
  }
}

void ReplicationLog::Clear() {
  frames_.clear();
  base_seq_ = head_seq_;
}

// ---------------------------------------------------------------------------
// ReplicaNode
// ---------------------------------------------------------------------------

ReplicaNode::ReplicaNode(net::SimNetwork* network, std::string address)
    : ReplicaNode(network, std::move(address), nullptr) {}

ReplicaNode::ReplicaNode(net::SimNetwork* network, std::string address,
                         DatabaseFactory factory)
    : network_(network),
      address_(std::move(address)),
      factory_(std::move(factory)) {
  if (!factory_) {
    factory_ = [] { return storage::Database::Open(""); };
  }
  auto db = factory_();
  PISREP_CHECK(db.ok()) << "replica database open failed: "
                        << db.status().ToString();
  db_ = std::move(db).value();
}

Status ReplicaNode::Start() {
  rpc_ = std::make_unique<net::RpcServer>(network_, address_);
  rpc_->RegisterMethod(
      std::string(kReplicateMethod),
      [this](const XmlNode& request) { return HandleReplicate(request); });
  rpc_->RegisterMethod(
      std::string(kReplicaStatusMethod),
      [this](const XmlNode&) -> Result<XmlNode> {
        XmlNode result("result");
        result.SetAttribute("applied", std::to_string(applied_seq_));
        result.SetAttribute("stale", stale_ ? "1" : "0");
        return result;
      });
  // Anti-entropy: per-key-range digests of everything this replica holds.
  rpc_->RegisterMethod(
      std::string(kReplicaDigestMethod),
      [this](const XmlNode&) -> Result<XmlNode> {
        if (db_ == nullptr) return Status::FailedPrecondition("detached");
        XmlNode result("result");
        result.SetAttribute("applied", std::to_string(applied_seq_));
        result.SetAttribute("stale", stale_ ? "1" : "0");
        result.SetAttribute("digests",
                            FormatRangeDigests(RangeDigestsOf(db_.get())));
        // Tamper evidence: the replica verifies its own audit chain and
        // reports the head, so the primary can tell divergence-by-bug
        // (resyncable) from divergence-by-tamper (fence the replica).
        trust::AuditChainStatus audit =
            trust::AuditChainStatusOf(db_.get());
        if (audit.present) {
          result.SetAttribute("audit_ok", audit.ok ? "1" : "0");
          result.SetAttribute("audit_head", audit.head_hash);
          result.SetAttribute("audit_len", std::to_string(audit.length));
        }
        return result;
      });
  // Read repair: the exact stored bytes of one software's score row.
  rpc_->RegisterMethod(
      std::string(kReplicaScoreMethod),
      [this](const XmlNode& request) -> Result<XmlNode> {
        if (db_ == nullptr) return Status::FailedPrecondition("detached");
        XmlNode result("result");
        result.SetAttribute("applied", std::to_string(applied_seq_));
        result.SetAttribute("stale", stale_ ? "1" : "0");
        result.SetAttribute(
            "fp", ScoreFingerprint(db_.get(),
                                   request.ChildText("id").value_or("")));
        return result;
      });
  return rpc_->Start();
}

Result<XmlNode> ReplicaNode::HandleReplicate(const XmlNode& request) {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("replica detached");
  }
  if (request.AttributeOr("reset", "0") == "1") {
    // Out-of-band snapshot: discard local state, rebuild from the frames,
    // land exactly at the primary's head at export time. A duplicated
    // delivery of an *older* snapshot must not rewind state the replica
    // has since applied on top.
    std::uint64_t snap_through = AttrU64(request, "snap_through");
    if (snap_through >= applied_seq_ || stale_) {
      auto fresh = factory_();
      if (!fresh.ok()) {
        // A tiered factory does file IO and can genuinely fail; stay
        // stale on the old database so the primary keeps retrying.
        PISREP_LOG(kWarning) << "replica " << address_
                             << " failed snapshot reopen: "
                             << fresh.status().ToString();
        stale_ = true;
        XmlNode failed("result");
        failed.SetAttribute("acked", std::to_string(applied_seq_));
        failed.SetAttribute("stale", "1");
        return failed;
      }
      db_ = std::move(fresh).value();
      applied_seq_ = 0;
      stale_ = false;
      ++resets_;
      for (const XmlNode* frame_node : request.FindChildren("f")) {
        auto bytes = util::HexDecode(frame_node->text());
        if (!bytes.ok()) {
          stale_ = true;
          break;
        }
        std::string frame(bytes->begin(), bytes->end());
        Status applied = db_->ApplyReplicatedFrame(frame);
        if (!applied.ok()) {
          PISREP_LOG(kWarning) << "replica " << address_
                               << " failed snapshot frame: "
                               << applied.ToString();
          stale_ = true;
          break;
        }
      }
      if (!stale_) applied_seq_ = snap_through;
    }
  } else {
    std::uint64_t first_seq = AttrU64(request, "first_seq");
    if (first_seq == 0) {
      return Status::InvalidArgument("replicate batch without first_seq");
    }
    if (first_seq > applied_seq_ + 1) {
      // A gap: records were shipped past us (lost batch beyond the
      // primary's retention, or we restarted empty). Only a snapshot can
      // heal this.
      stale_ = true;
    }
    if (!stale_) {
      std::uint64_t seq = first_seq;
      for (const XmlNode* frame_node : request.FindChildren("f")) {
        std::uint64_t this_seq = seq++;
        if (this_seq <= applied_seq_) continue;  // duplicate of a re-sent batch
        auto bytes = util::HexDecode(frame_node->text());
        if (!bytes.ok()) {
          stale_ = true;
          break;
        }
        std::string frame(bytes->begin(), bytes->end());
        Status applied = db_->ApplyReplicatedFrame(frame);
        if (!applied.ok()) {
          PISREP_LOG(kWarning) << "replica " << address_ << " failed frame "
                               << this_seq << ": " << applied.ToString();
          stale_ = true;
          break;
        }
        applied_seq_ = this_seq;
      }
    }
  }
  XmlNode result("result");
  result.SetAttribute("acked", std::to_string(applied_seq_));
  result.SetAttribute("stale", stale_ ? "1" : "0");
  return result;
}

std::unique_ptr<storage::Database> ReplicaNode::Detach() {
  rpc_.reset();
  return std::move(db_);
}

// ---------------------------------------------------------------------------
// ReplicationShipper
// ---------------------------------------------------------------------------

ReplicationShipper::ReplicationShipper(
    net::SimNetwork* network, net::EventLoop* loop, std::string client_address,
    std::vector<std::string> replica_addresses, storage::Database* primary_db,
    ReplicationConfig config, obs::MetricsRegistry* metrics,
    std::string shard_label)
    : network_(network),
      loop_(loop),
      db_(primary_db),
      config_(config),
      log_(config.max_log_records) {
  // The shipper runs its own retry/resync state machine; the generic client
  // breaker would only add a second layer of fast-fails on top of it.
  net::RpcClient::BreakerConfig breaker;
  breaker.enabled = false;
  int index = 0;
  for (std::string& address : replica_addresses) {
    Channel channel;
    channel.address = std::move(address);
    channel.rpc = std::make_unique<net::RpcClient>(
        network_, loop_, client_address + "#" + std::to_string(index++),
        channel.address);
    channel.rpc->set_breaker(breaker);
    channel.rpc->set_max_retries(0);
    channels_.push_back(std::move(channel));
  }
  if (metrics != nullptr) {
    lag_gauge_ = metrics->GetGauge(obs::WithLabel(
        "pisrep_cluster_replication_lag_records", "shard", shard_label));
    degraded_gauge_ = metrics->GetGauge(obs::WithLabel(
        "pisrep_cluster_replication_degraded", "shard", shard_label));
    shipped_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_replication_shipped_total", "shard", shard_label));
    resyncs_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_replication_resyncs_total", "shard", shard_label));
    degraded_acks_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_degraded_acks_total", "shard", shard_label));
    fences_metric_ = metrics->GetCounter(obs::WithLabel(
        "pisrep_cluster_replication_fences_total", "shard", shard_label));
  }
}

ReplicationShipper::~ReplicationShipper() { db_->SetFrameListener({}); }

Status ReplicationShipper::Start() {
  for (Channel& channel : channels_) {
    PISREP_RETURN_IF_ERROR(channel.rpc->Start());
  }
  db_->SetFrameListener([this](const std::string& frame) { OnFrame(frame); });
  UpdateGauges();
  Pump();
  return Status::Ok();
}

void ReplicationShipper::OnFrame(const std::string& frame) {
  log_.Append(frame);
  UpdateGauges();
  Pump();
}

std::uint64_t ReplicationShipper::acked_seq() const {
  std::uint64_t min_acked = log_.head_seq();
  for (const Channel& channel : channels_) {
    if (channel.fenced) continue;  // holds nothing the quorum can use
    min_acked = std::min(min_acked, channel.acked);
  }
  return min_acked;
}

bool ReplicationShipper::degraded() const {
  return std::any_of(channels_.begin(), channels_.end(),
                     [](const Channel& c) { return c.degraded; });
}

const std::string& ReplicationShipper::replica_address(int k) const {
  return channels_[static_cast<std::size_t>(k)].address;
}

std::uint64_t ReplicationShipper::channel_acked(int k) const {
  return channels_[static_cast<std::size_t>(k)].acked;
}

bool ReplicationShipper::channel_degraded(int k) const {
  return channels_[static_cast<std::size_t>(k)].degraded;
}

bool ReplicationShipper::channel_caught_up(int k) const {
  const Channel& channel = channels_[static_cast<std::size_t>(k)];
  return !channel.fenced && !channel.reset_pending &&
         channel.acked >= log_.head_seq();
}

int ReplicationShipper::CopiesHolding(std::uint64_t seq) const {
  int copies = 1;  // the primary's own WAL
  for (const Channel& channel : channels_) {
    if (!channel.degraded && !channel.fenced && channel.acked >= seq) {
      ++copies;
    }
  }
  return copies;
}

int ReplicationShipper::ConfiguredQuorum() const {
  return std::clamp(config_.write_quorum, 1,
                    1 + static_cast<int>(channels_.size()));
}

int ReplicationShipper::EffectiveQuorum() const {
  int healthy = 1;
  for (const Channel& channel : channels_) {
    if (!channel.degraded && !channel.fenced) ++healthy;
  }
  return std::min(ConfiguredQuorum(), healthy);
}

void ReplicationShipper::GateResponse(const std::string& method,
                                      std::function<void()> send) {
  (void)method;  // all methods gate on WAL position, none on their name
  std::uint64_t needed = log_.head_seq();
  if (!config_.synchronous_acks || channels_.empty()) {
    send();
    return;
  }
  if (CopiesHolding(needed) >= EffectiveQuorum()) {
    if (CopiesHolding(needed) < ConfiguredQuorum()) {
      ++degraded_acks_;
      if (degraded_acks_metric_) degraded_acks_metric_->Increment();
    }
    send();
    return;
  }
  gates_.emplace_back(needed, std::move(send));
  Pump();
}

void ReplicationShipper::Pump() {
  for (std::size_t k = 0; k < channels_.size(); ++k) PumpChannel(k);
}

void ReplicationShipper::PumpChannel(std::size_t k) {
  Channel& channel = channels_[k];
  if (channel.fenced) return;  // quarantined until the node is replaced
  if (channel.in_flight) return;
  if (channel.reset_pending) {
    SendSnapshot(k);
    return;
  }
  if (channel.acked >= log_.head_seq()) return;  // fully caught up
  if (channel.acked < log_.base_seq()) {
    // Beyond the bounded catch-up window: only a snapshot can heal it.
    MarkResyncPending(channel);
    SendSnapshot(k);
    return;
  }
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  if (!log_.CollectAfter(channel.acked, config_.max_batch_records, &batch) ||
      batch.empty()) {
    return;
  }
  XmlNode params("r");
  params.SetAttribute("first_seq", std::to_string(batch.front().first));
  for (const auto& [seq, frame] : batch) {
    params.AddTextChild("f", util::HexEncode(frame));
  }
  channel.in_flight = true;
  channel.rpc->Call(
      kReplicateMethod, std::move(params),
      [this, k, alive = std::weak_ptr<int>(alive_)](Result<XmlNode> result) {
        if (alive.expired()) return;
        HandleShipResult(k, /*was_reset=*/false, std::move(result));
      },
      config_.ship_timeout);
}

void ReplicationShipper::SendSnapshot(std::size_t k) {
  Channel& channel = channels_[k];
  // The snapshot is exported fresh per attempt (nothing is parked in the
  // shared log) and covers everything through the current head; frames
  // appended while it is in flight ship from the log afterwards.
  XmlNode params("r");
  params.SetAttribute("reset", "1");
  Status exported = db_->ExportSnapshotFrames([&](const std::string& frame) {
    params.AddTextChild("f", util::HexEncode(frame));
    return Status::Ok();
  });
  if (!exported.ok()) {
    // A tiered primary streams its cold block file straight from disk, so
    // export is real IO now and can fail transiently. Leave the channel
    // reset-pending and retry after the usual delay.
    PISREP_LOG(kWarning) << "snapshot export for replica "
                         << replica_address(static_cast<int>(k))
                         << " failed: " << exported.ToString()
                         << "; retrying";
    if (!channel.retry_scheduled) {
      channel.retry_scheduled = true;
      loop_->ScheduleAfter(config_.retry_delay,
                           [this, k, alive = std::weak_ptr<int>(alive_)] {
                             if (alive.expired()) return;
                             channels_[k].retry_scheduled = false;
                             PumpChannel(k);
                           });
    }
    return;
  }
  channel.reset_floor = log_.head_seq();
  params.SetAttribute("snap_through", std::to_string(channel.reset_floor));
  channel.in_flight = true;
  channel.rpc->Call(
      kReplicateMethod, std::move(params),
      [this, k, alive = std::weak_ptr<int>(alive_)](Result<XmlNode> result) {
        if (alive.expired()) return;
        HandleShipResult(k, /*was_reset=*/true, std::move(result));
      },
      config_.ship_timeout);
}

void ReplicationShipper::HandleShipResult(std::size_t k, bool was_reset,
                                          Result<XmlNode> result) {
  Channel& channel = channels_[k];
  channel.in_flight = false;
  if (!result.ok()) {
    ++channel.failures;
    if (!channel.degraded &&
        channel.failures >= config_.degraded_after_failures) {
      EnterDegraded(channel);
    }
    // Keep probing while responses are still gated; once degraded with
    // nothing gated, go quiescent — new frames and an explicit Pump (after
    // the replica is revived) restart shipping.
    if ((!channel.degraded || !gates_.empty()) && !channel.retry_scheduled) {
      channel.retry_scheduled = true;
      loop_->ScheduleAfter(config_.retry_delay,
                           [this, k, alive = std::weak_ptr<int>(alive_)] {
                             if (alive.expired()) return;
                             channels_[k].retry_scheduled = false;
                             PumpChannel(k);
                           });
    }
    return;
  }
  channel.failures = 0;
  if (channel.degraded) LeaveDegraded(channel);
  const XmlNode& response = *result;
  if (response.AttributeOr("stale", "0") == "1") {
    MarkResyncPending(channel);
  } else {
    if (was_reset) channel.reset_pending = false;
    std::uint64_t acked = AttrU64(response, "acked");
    if (acked > channel.acked) {
      if (shipped_metric_) shipped_metric_->Increment(acked - channel.acked);
      channel.acked = acked;
    }
    PruneLog();
    CheckGates();
  }
  UpdateGauges();
  PumpChannel(k);
}

void ReplicationShipper::CheckGates() {
  while (!gates_.empty()) {
    std::uint64_t seq = gates_.front().first;
    int copies = CopiesHolding(seq);
    if (copies < EffectiveQuorum()) break;
    auto send = std::move(gates_.front().second);
    gates_.pop_front();
    if (copies < ConfiguredQuorum()) {
      ++degraded_acks_;
      if (degraded_acks_metric_) degraded_acks_metric_->Increment();
    }
    send();
  }
}

void ReplicationShipper::EnterDegraded(Channel& channel) {
  channel.degraded = true;
  PISREP_LOG(kWarning) << "replication to " << channel.address
                       << " degraded after " << channel.failures
                       << " failures; responses no longer wait for it";
  UpdateGauges();
  // Losing a healthy copy shrinks the effective quorum — gates that only
  // waited for the dead replica release now (as degraded acks).
  CheckGates();
}

void ReplicationShipper::LeaveDegraded(Channel& channel) {
  channel.degraded = false;
  PISREP_LOG(kInfo) << "replication to " << channel.address << " recovered";
  UpdateGauges();
}

void ReplicationShipper::ForceResync(int k) {
  if (channels_[static_cast<std::size_t>(k)].fenced) return;
  MarkResyncPending(channels_[static_cast<std::size_t>(k)]);
  PumpChannel(static_cast<std::size_t>(k));
}

void ReplicationShipper::FenceChannel(int k) {
  Channel& channel = channels_[static_cast<std::size_t>(k)];
  if (channel.fenced) return;
  channel.fenced = true;
  ++fences_;
  if (fences_metric_) fences_metric_->Increment();
  PISREP_LOG(kWarning) << "replica " << channel.address
                       << " FENCED: audit chain diverged from the primary; "
                          "excluded from quorum until replaced";
  UpdateGauges();
  // Like losing a copy to degradation: gates waiting only on the fenced
  // replica release against the shrunken effective quorum.
  CheckGates();
  if (fence_listener_) fence_listener_(k);
}

bool ReplicationShipper::channel_fenced(int k) const {
  return channels_[static_cast<std::size_t>(k)].fenced;
}

void ReplicationShipper::ReviveChannel(int k) {
  Channel& channel = channels_[static_cast<std::size_t>(k)];
  channel.failures = 0;
  channel.fenced = false;  // the node behind the channel was replaced
  if (channel.degraded) LeaveDegraded(channel);
  channel.acked = 0;
  MarkResyncPending(channel);
  PumpChannel(static_cast<std::size_t>(k));
}

void ReplicationShipper::MarkResyncPending(Channel& channel) {
  if (channel.reset_pending) return;
  channel.reset_pending = true;
  ++resyncs_;
  if (resyncs_metric_) resyncs_metric_->Increment();
}

void ReplicationShipper::PruneLog() {
  std::uint64_t min_needed = std::numeric_limits<std::uint64_t>::max();
  for (const Channel& channel : channels_) {
    if (channel.fenced) continue;  // never ships again; pins nothing
    // A reset-pending channel needs nothing at or below its snapshot
    // floor — the snapshot covers it.
    std::uint64_t have = channel.reset_pending
                             ? std::max(channel.acked, channel.reset_floor)
                             : channel.acked;
    min_needed = std::min(min_needed, have);
  }
  if (channels_.empty()) min_needed = log_.head_seq();
  log_.PruneThrough(min_needed);
}

void ReplicationShipper::UpdateGauges() {
  if (lag_gauge_ != nullptr) {
    lag_gauge_->Set(static_cast<std::int64_t>(lag_records()));
  }
  if (degraded_gauge_ != nullptr) {
    std::int64_t degraded_count = 0;
    for (const Channel& channel : channels_) {
      if (channel.degraded) ++degraded_count;
    }
    degraded_gauge_->Set(degraded_count);
  }
}

}  // namespace pisrep::cluster
