#include "proto/wire.h"

#include "util/sha256.h"
#include "util/string_util.h"

namespace pisrep::proto {

bool PuzzleSolutionValid(std::string_view nonce, std::string_view solution,
                         int difficulty_bits) {
  util::Sha256 hasher;
  hasher.Update(nonce);
  hasher.Update(solution);
  util::Sha256Digest digest = hasher.Finish();
  int remaining = difficulty_bits;
  for (std::uint8_t byte : digest.bytes) {
    if (remaining <= 0) return true;
    if (remaining >= 8) {
      if (byte != 0) return false;
      remaining -= 8;
    } else {
      return (byte >> (8 - remaining)) == 0;
    }
  }
  return remaining <= 0;
}

std::string SolvePuzzle(const Puzzle& puzzle, std::uint64_t* attempts) {
  std::uint64_t counter = 0;
  for (;;) {
    std::string candidate = std::to_string(counter);
    if (PuzzleSolutionValid(puzzle.nonce, candidate,
                            puzzle.difficulty_bits)) {
      if (attempts != nullptr) *attempts = counter + 1;
      return candidate;
    }
    ++counter;
  }
}

std::string OwnershipMovedMessage(std::string_view owner) {
  return std::string(kOwnershipMovedPrefix) + std::string(owner);
}

bool IsOwnershipMoved(std::string_view message) {
  return message.substr(0, kOwnershipMovedPrefix.size()) ==
         kOwnershipMovedPrefix;
}

std::string OwnershipMovedTarget(std::string_view message) {
  if (!IsOwnershipMoved(message)) return "";
  return std::string(message.substr(kOwnershipMovedPrefix.size()));
}

xml::XmlNode SoftwareMetaToXml(const core::SoftwareMeta& meta) {
  xml::XmlNode node("software");
  node.SetAttribute("id", meta.id.ToHex());
  node.SetAttribute("file_name", meta.file_name);
  node.SetAttribute("file_size", std::to_string(meta.file_size));
  node.SetAttribute("company", meta.company);
  node.SetAttribute("version", meta.version);
  return node;
}

xml::XmlNode SoftwareInfoToXml(const SoftwareInfo& info) {
  xml::XmlNode result("result");
  result.SetAttribute("known", info.known ? "1" : "0");
  result.AddChild(SoftwareMetaToXml(info.meta));
  if (info.score.has_value()) {
    xml::XmlNode& node = result.AddChild("score");
    node.SetAttribute("value", util::StrFormat("%.6f", info.score->score));
    node.SetAttribute("votes", std::to_string(info.score->vote_count));
    node.SetAttribute("weight",
                      util::StrFormat("%.6f", info.score->weight_sum));
    node.SetAttribute("computed_at",
                      std::to_string(info.score->computed_at));
  }
  if (info.vendor_score.has_value()) {
    xml::XmlNode& node = result.AddChild("vendor");
    node.SetAttribute("name", info.vendor_score->vendor);
    node.SetAttribute("score",
                      util::StrFormat("%.6f", info.vendor_score->score));
    node.SetAttribute("count",
                      std::to_string(info.vendor_score->software_count));
  }
  result.AddTextChild("behaviors",
                      core::BehaviorSetToString(info.reported_behaviors));
  result.AddIntChild("runs", info.run_count);
  for (const core::RatingRecord& comment : info.comments) {
    xml::XmlNode& node = result.AddChild("comment");
    node.SetAttribute("author", std::to_string(comment.user));
    node.SetAttribute("score", std::to_string(comment.score));
    node.SetAttribute("at", std::to_string(comment.submitted_at));
    node.set_text(comment.comment);
  }
  return result;
}

}  // namespace pisrep::proto
