#include "proto/wire.h"

#include "util/hex.h"
#include "util/sha256.h"
#include "util/string_util.h"

namespace pisrep::proto {

bool PuzzleSolutionValid(std::string_view nonce, std::string_view solution,
                         int difficulty_bits) {
  util::Sha256 hasher;
  hasher.Update(nonce);
  hasher.Update(solution);
  util::Sha256Digest digest = hasher.Finish();
  int remaining = difficulty_bits;
  for (std::uint8_t byte : digest.bytes) {
    if (remaining <= 0) return true;
    if (remaining >= 8) {
      if (byte != 0) return false;
      remaining -= 8;
    } else {
      return (byte >> (8 - remaining)) == 0;
    }
  }
  return remaining <= 0;
}

std::string SolvePuzzle(const Puzzle& puzzle, std::uint64_t* attempts) {
  std::uint64_t counter = 0;
  for (;;) {
    std::string candidate = std::to_string(counter);
    if (PuzzleSolutionValid(puzzle.nonce, candidate,
                            puzzle.difficulty_bits)) {
      if (attempts != nullptr) *attempts = counter + 1;
      return candidate;
    }
    ++counter;
  }
}

std::string OwnershipMovedMessage(std::string_view owner) {
  return std::string(kOwnershipMovedPrefix) + std::string(owner);
}

bool IsOwnershipMoved(std::string_view message) {
  return message.substr(0, kOwnershipMovedPrefix.size()) ==
         kOwnershipMovedPrefix;
}

std::string OwnershipMovedTarget(std::string_view message) {
  if (!IsOwnershipMoved(message)) return "";
  return std::string(message.substr(kOwnershipMovedPrefix.size()));
}

xml::XmlNode FeedEntryToXml(const FeedEntry& entry) {
  xml::XmlNode node("entry");
  node.SetAttribute("feed", entry.feed);
  node.SetAttribute("software", entry.software.ToHex());
  node.SetAttribute("score", util::StrFormat("%.6f", entry.score));
  node.SetAttribute("behaviors", core::BehaviorSetToString(entry.behaviors));
  node.SetAttribute("flagged", entry.expert_flagged ? "1" : "0");
  node.SetAttribute("published_at", std::to_string(entry.published_at));
  node.set_text(entry.note);
  return node;
}

util::Result<FeedEntry> FeedEntryFromXml(const xml::XmlNode& node) {
  FeedEntry entry;
  PISREP_ASSIGN_OR_RETURN(entry.feed, node.Attribute("feed"));
  // The software id is optional on the wire: a QueryFeed answer describes
  // the binary the caller just named, so older servers omit it.
  if (node.HasAttribute("software")) {
    PISREP_ASSIGN_OR_RETURN(std::string hex, node.Attribute("software"));
    PISREP_ASSIGN_OR_RETURN(auto bytes, util::HexDecode(hex));
    if (bytes.size() != entry.software.bytes.size()) {
      return util::Status::InvalidArgument(
          "feed entry software id must be 40 hex characters");
    }
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      entry.software.bytes[i] = bytes[i];
    }
  }
  PISREP_ASSIGN_OR_RETURN(
      entry.score, util::ParseDouble(node.AttributeOr("score", "0")));
  PISREP_ASSIGN_OR_RETURN(
      entry.behaviors,
      core::BehaviorSetFromString(node.AttributeOr("behaviors", "")));
  entry.expert_flagged = node.AttributeOr("flagged", "0") == "1";
  PISREP_ASSIGN_OR_RETURN(
      entry.published_at,
      util::ParseInt64(node.AttributeOr("published_at", "0")));
  entry.note = node.text();
  return entry;
}

xml::XmlNode SoftwareMetaToXml(const core::SoftwareMeta& meta) {
  xml::XmlNode node("software");
  node.SetAttribute("id", meta.id.ToHex());
  node.SetAttribute("file_name", meta.file_name);
  node.SetAttribute("file_size", std::to_string(meta.file_size));
  node.SetAttribute("company", meta.company);
  node.SetAttribute("version", meta.version);
  return node;
}

xml::XmlNode SoftwareInfoToXml(const SoftwareInfo& info) {
  xml::XmlNode result("result");
  result.SetAttribute("known", info.known ? "1" : "0");
  if (info.vendor_signed) {
    result.SetAttribute("vendor_signed", "1");
    result.SetAttribute("signed_vendor", info.signed_vendor);
  }
  result.AddChild(SoftwareMetaToXml(info.meta));
  if (info.score.has_value()) {
    xml::XmlNode& node = result.AddChild("score");
    node.SetAttribute("value", util::StrFormat("%.6f", info.score->score));
    node.SetAttribute("votes", std::to_string(info.score->vote_count));
    node.SetAttribute("weight",
                      util::StrFormat("%.6f", info.score->weight_sum));
    node.SetAttribute("computed_at",
                      std::to_string(info.score->computed_at));
  }
  if (info.vendor_score.has_value()) {
    xml::XmlNode& node = result.AddChild("vendor");
    node.SetAttribute("name", info.vendor_score->vendor);
    node.SetAttribute("score",
                      util::StrFormat("%.6f", info.vendor_score->score));
    node.SetAttribute("count",
                      std::to_string(info.vendor_score->software_count));
  }
  result.AddTextChild("behaviors",
                      core::BehaviorSetToString(info.reported_behaviors));
  result.AddIntChild("runs", info.run_count);
  for (const core::RatingRecord& comment : info.comments) {
    xml::XmlNode& node = result.AddChild("comment");
    node.SetAttribute("author", std::to_string(comment.user));
    node.SetAttribute("score", std::to_string(comment.score));
    node.SetAttribute("at", std::to_string(comment.submitted_at));
    node.set_text(comment.comment);
  }
  return result;
}

}  // namespace pisrep::proto
