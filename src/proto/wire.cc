#include "proto/wire.h"

#include "util/sha256.h"

namespace pisrep::proto {

bool PuzzleSolutionValid(std::string_view nonce, std::string_view solution,
                         int difficulty_bits) {
  util::Sha256 hasher;
  hasher.Update(nonce);
  hasher.Update(solution);
  util::Sha256Digest digest = hasher.Finish();
  int remaining = difficulty_bits;
  for (std::uint8_t byte : digest.bytes) {
    if (remaining <= 0) return true;
    if (remaining >= 8) {
      if (byte != 0) return false;
      remaining -= 8;
    } else {
      return (byte >> (8 - remaining)) == 0;
    }
  }
  return remaining <= 0;
}

std::string SolvePuzzle(const Puzzle& puzzle, std::uint64_t* attempts) {
  std::uint64_t counter = 0;
  for (;;) {
    std::string candidate = std::to_string(counter);
    if (PuzzleSolutionValid(puzzle.nonce, candidate,
                            puzzle.difficulty_bits)) {
      if (attempts != nullptr) *attempts = counter + 1;
      return candidate;
    }
    ++counter;
  }
}

std::string OwnershipMovedMessage(std::string_view owner) {
  return std::string(kOwnershipMovedPrefix) + std::string(owner);
}

bool IsOwnershipMoved(std::string_view message) {
  return message.substr(0, kOwnershipMovedPrefix.size()) ==
         kOwnershipMovedPrefix;
}

std::string OwnershipMovedTarget(std::string_view message) {
  if (!IsOwnershipMoved(message)) return "";
  return std::string(message.substr(kOwnershipMovedPrefix.size()));
}

}  // namespace pisrep::proto
