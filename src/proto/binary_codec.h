#ifndef PISREP_PROTO_BINARY_CODEC_H_
#define PISREP_PROTO_BINARY_CODEC_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/xml_node.h"

namespace pisrep::proto {

/// Compact binary framing for the RPC wire (DESIGN.md §14).
///
/// The XML codec is the paper's protocol (§3.2) and stays the default; the
/// binary codec carries the *same* element tree — name, text, attributes in
/// document order, children in document order — as length-prefixed fields,
/// so any frame round-trips bit-identically:
///
///   DecodeBinary(EncodeBinary(node)) == node   (same WriteXml bytes)
///
/// Because the codec encodes the generic tree rather than per-method
/// schemas, every current and future RPC method works over it unchanged,
/// and equivalence with the XML path is structural rather than maintained
/// by hand.
///
/// Frame grammar (all integers are LEB128 varints):
///
///   frame := magic(0x02) node
///   node  := str(name) str(text) varint(#attrs) (str(key) str(value))*
///            varint(#children) node*
///   str   := varint(byte-length) bytes
///
/// The magic byte doubles as the per-connection negotiation: serialized XML
/// always starts with '<', so a receiver distinguishes the codecs from the
/// first byte and answers in the codec the peer spoke (RpcServer does
/// exactly that). No handshake round-trip, and mixed-codec clients can
/// share one server.
enum class WireCodec { kXml, kBinary };

/// First byte of every binary frame. 0x02 (STX) can never begin an XML
/// document, so sniffing is unambiguous.
inline constexpr char kBinaryFrameMagic = '\x02';

/// True when `payload` claims to be a binary frame (magic-byte sniff).
bool IsBinaryFrame(std::string_view payload);

/// Serializes the element tree as a binary frame (magic byte included).
std::string EncodeBinary(const xml::XmlNode& node);

/// Parses a binary frame. Truncated, oversized or otherwise malformed
/// input yields kDataLoss — never a crash — mirroring how the XML parser
/// treats corrupted datagrams.
util::Result<xml::XmlNode> DecodeBinary(std::string_view payload);

/// Serializes `node` in the requested codec (XML text or binary frame).
std::string EncodeFrame(const xml::XmlNode& node, WireCodec codec);

/// A decoded frame plus the codec it arrived in, so the receiver can reply
/// in kind.
struct DecodedFrame {
  xml::XmlNode node;
  WireCodec codec = WireCodec::kXml;
};

/// Auto-detecting parse: binary frames go through DecodeBinary, anything
/// else through the XML parser. Malformed input in either codec is an
/// error status, never a crash.
util::Result<DecodedFrame> DecodeFrame(std::string_view payload);

}  // namespace pisrep::proto

#endif  // PISREP_PROTO_BINARY_CODEC_H_
