#ifndef PISREP_PROTO_WIRE_H_
#define PISREP_PROTO_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/behavior.h"
#include "core/types.h"
#include "util/clock.h"
#include "util/status.h"
#include "xml/xml_node.h"

namespace pisrep::proto {

/// Wire-protocol types shared by the client and the server (§3.2: the
/// client/server XML RPC schema). This layer exists so that the client
/// library never includes server headers: both sides depend on `proto/`,
/// which in turn depends only on `core/` and `util/`. The `pisrep-lint`
/// layering rule (tools/lint) enforces this.

/// A DoS-resistant client puzzle (§2.1 "non-automatable process" and the
/// future-work reference to Aura's client puzzles): the server issues a
/// nonce and a difficulty, and the client must find a solution such that
/// SHA-256(nonce || solution) starts with `difficulty_bits` zero bits.
/// Raising the difficulty makes automated mass registration expensive while
/// staying cheap for a single human sign-up.
struct Puzzle {
  std::string nonce;
  int difficulty_bits = 0;
};

/// True when SHA-256(nonce || solution) has the required zero prefix.
bool PuzzleSolutionValid(std::string_view nonce, std::string_view solution,
                         int difficulty_bits);

/// Brute-forces a solution (the honest client's work loop). Exposed so
/// simulations can account for attacker compute cost; returns the number
/// of hash attempts through `attempts` when non-null.
std::string SolvePuzzle(const Puzzle& puzzle,
                        std::uint64_t* attempts = nullptr);

/// A published expert assessment of one software (§4.2: organisations or
/// groups of technically skilled individuals publishing ratings that users
/// can subscribe to instead of — or alongside — crowd scores).
struct FeedEntry {
  std::string feed;  ///< owning feed name
  core::SoftwareId software;
  double score = 0.0;  ///< the group's rating, [1, 10]
  core::BehaviorSet behaviors = core::kNoBehaviors;
  std::string note;
  util::TimePoint published_at = 0;
  /// The publishing expert flags the software as privacy-invasive (PR 10
  /// signed advisories). Policy rules may deny on this fact alone.
  bool expert_flagged = false;
};

/// Serializes a feed entry as the <entry .../> element of a QueryFeed
/// answer — the one definition both the server handler and the client
/// cache parse/emit.
xml::XmlNode FeedEntryToXml(const FeedEntry& entry);
util::Result<FeedEntry> FeedEntryFromXml(const xml::XmlNode& node);

/// Cluster redirect protocol. A shard that receives a digest-routed
/// request for a software it does not own answers kFailedPrecondition with
/// this message shape; the owning shard's name rides in the message (the
/// Redis MOVED idiom). The router — and a client stub pointed directly at
/// a shard — retries the call against the named owner. Lives in proto/
/// because both sides of the wire must agree on the spelling.
inline constexpr std::string_view kOwnershipMovedPrefix =
    "ownership-moved to=";

/// Builds the redirect message for `owner`.
std::string OwnershipMovedMessage(std::string_view owner);

/// True when `message` is an ownership redirect.
bool IsOwnershipMoved(std::string_view message);

/// The owner named in a redirect message, or "" when `message` is not one.
std::string OwnershipMovedTarget(std::string_view message);

/// Everything the client displays about a pending software (§3.1: the
/// client "queries the server and fetches the information about the
/// executing software to show the user").
struct SoftwareInfo {
  core::SoftwareMeta meta;
  bool known = false;  ///< registered in the reputation system at all
  std::optional<core::SoftwareScore> score;
  std::optional<core::VendorScore> vendor_score;
  core::BehaviorSet reported_behaviors = core::kNoBehaviors;
  std::vector<core::RatingRecord> comments;
  /// §3.1 run statistics: community-wide execution count reported by
  /// clients (anonymous totals, never per-host).
  std::int64_t run_count = 0;
  /// A trusted vendor's signed manifest covers this binary (PR 10): the
  /// server verified the signature against its pinned keys, so the client
  /// can treat the vendor claim as a fact without holding the key itself.
  bool vendor_signed = false;
  std::string signed_vendor;  ///< manifest vendor name when vendor_signed
};

/// Serializes software metadata as a <software .../> element (one half of
/// the QuerySoftware/SubmitRating schema; both sides must agree on it).
xml::XmlNode SoftwareMetaToXml(const core::SoftwareMeta& meta);

/// Serializes a full QuerySoftware answer as the <result> element. This is
/// the *single* definition of the response schema: the server's RPC
/// handler, the snapshot read path and the serving benchmark all emit
/// through it, so "bit-equivalent to the locked path" is a property of the
/// data, not of three hand-synchronized serializers.
xml::XmlNode SoftwareInfoToXml(const SoftwareInfo& info);

}  // namespace pisrep::proto

#endif  // PISREP_PROTO_WIRE_H_
