#include "proto/binary_codec.h"

#include <cstdint>
#include <utility>

#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pisrep::proto {

namespace {

using util::Result;
using util::Status;
using xml::XmlNode;

/// Nesting deeper than any legitimate pisrep frame (requests are ~3 levels,
/// batch frames 4). Bounds recursion so a malicious or corrupted frame can
/// exhaust neither the stack nor, via huge fake counts, the allocator.
constexpr int kMaxDepth = 32;

void AppendVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void AppendString(std::string* out, std::string_view s) {
  AppendVarint(out, s.size());
  out->append(s.data(), s.size());
}

void AppendNode(std::string* out, const XmlNode& node) {
  AppendString(out, node.name());
  AppendString(out, node.text());
  AppendVarint(out, node.attributes().size());
  for (const auto& [key, value] : node.attributes()) {
    AppendString(out, key);
    AppendString(out, value);
  }
  AppendVarint(out, node.children().size());
  for (const XmlNode& child : node.children()) AppendNode(out, child);
}

/// Cursor over the frame bytes; every read is bounds-checked and failure is
/// sticky, so decode loops can bail once at the end of each step.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadVarint(std::uint64_t* value) {
    *value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return false;
      std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
      *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return false;  // varint longer than 64 bits: corrupt
  }

  bool ReadString(std::string* out) {
    std::uint64_t length = 0;
    if (!ReadVarint(&length)) return false;
    if (length > data_.size() - pos_) return false;
    out->assign(data_.data() + pos_, static_cast<std::size_t>(length));
    pos_ += static_cast<std::size_t>(length);
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

bool ReadNode(Reader* reader, XmlNode* node, int depth) {
  if (depth > kMaxDepth) return false;
  std::string name;
  std::string text;
  if (!reader->ReadString(&name) || name.empty()) return false;
  if (!reader->ReadString(&text)) return false;
  node->set_name(name);
  node->set_text(text);

  std::uint64_t attr_count = 0;
  if (!reader->ReadVarint(&attr_count)) return false;
  // Each attribute costs at least two length bytes on the wire; a count
  // larger than the remaining bytes is a corrupted frame, not a big one.
  if (attr_count > reader->remaining()) return false;
  for (std::uint64_t i = 0; i < attr_count; ++i) {
    std::string key;
    std::string value;
    if (!reader->ReadString(&key) || key.empty()) return false;
    if (!reader->ReadString(&value)) return false;
    node->SetAttribute(key, value);
  }

  std::uint64_t child_count = 0;
  if (!reader->ReadVarint(&child_count)) return false;
  if (child_count > reader->remaining()) return false;
  for (std::uint64_t i = 0; i < child_count; ++i) {
    XmlNode& child = node->AddChild("x");
    if (!ReadNode(reader, &child, depth + 1)) return false;
  }
  return true;
}

}  // namespace

bool IsBinaryFrame(std::string_view payload) {
  return !payload.empty() && payload.front() == kBinaryFrameMagic;
}

std::string EncodeBinary(const XmlNode& node) {
  std::string out;
  out.push_back(kBinaryFrameMagic);
  AppendNode(&out, node);
  return out;
}

Result<XmlNode> DecodeBinary(std::string_view payload) {
  if (!IsBinaryFrame(payload)) {
    return Status::DataLoss("not a binary frame");
  }
  Reader reader(payload.substr(1));
  XmlNode node("x");
  if (!ReadNode(&reader, &node, 0) || reader.remaining() != 0) {
    return Status::DataLoss("malformed binary frame");
  }
  return node;
}

std::string EncodeFrame(const XmlNode& node, WireCodec codec) {
  return codec == WireCodec::kBinary ? EncodeBinary(node)
                                     : xml::WriteXml(node);
}

Result<DecodedFrame> DecodeFrame(std::string_view payload) {
  DecodedFrame frame;
  if (IsBinaryFrame(payload)) {
    PISREP_ASSIGN_OR_RETURN(frame.node, DecodeBinary(payload));
    frame.codec = WireCodec::kBinary;
    return frame;
  }
  PISREP_ASSIGN_OR_RETURN(frame.node, xml::ParseXml(payload));
  frame.codec = WireCodec::kXml;
  return frame;
}

}  // namespace pisrep::proto
