#include "net/rpc.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pisrep::net {

namespace {
using util::Result;
using util::Status;
using util::StatusCode;
using xml::XmlNode;
}  // namespace

util::StatusCode StatusCodeFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    StatusCode code = static_cast<StatusCode>(i);
    if (name == util::StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

RpcServer::RpcServer(SimNetwork* network, std::string address)
    : network_(network), address_(std::move(address)) {}

RpcServer::~RpcServer() { network_->Unbind(address_); }

Status RpcServer::Start() {
  return network_->Bind(address_,
                        [this](const Message& m) { HandleMessage(m); });
}

void RpcServer::RegisterMethod(std::string name, Method method) {
  methods_[std::move(name)] = std::move(method);
}

std::uint64_t RpcServer::MethodCalls(std::string_view method) const {
  auto it = method_calls_.find(std::string(method));
  return it == method_calls_.end() ? 0 : it->second;
}

void RpcServer::HandleMessage(const Message& message) {
  auto parsed = xml::ParseXml(message.payload);
  if (!parsed.ok() || parsed->name() != "request") {
    // Malformed datagram: nothing sensible to reply to.
    ++requests_failed_;
    return;
  }
  const XmlNode& request = *parsed;
  std::string id = request.AttributeOr("id", "");
  std::string method_name = request.AttributeOr("method", "");

  XmlNode response("response");
  response.SetAttribute("id", id);

  auto it = methods_.find(method_name);
  if (it == methods_.end()) {
    ++requests_failed_;
    response.SetAttribute("status", "error");
    response.SetAttribute("code",
                          util::StatusCodeName(StatusCode::kNotFound));
    response.set_text("no such method: " + method_name);
  } else {
    Result<XmlNode> result = it->second(request);
    if (result.ok()) {
      ++requests_handled_;
      ++method_calls_[method_name];
      response.SetAttribute("status", "ok");
      // The result element's children, text, and attributes become the
      // response body. "id"/"status"/"code" are reserved for the envelope.
      for (const auto& [key, value] : result->attributes()) {
        if (key == "id" || key == "status" || key == "code") continue;
        response.SetAttribute(key, value);
      }
      for (const XmlNode& child : result->children()) {
        response.AddChild(child);
      }
      if (!result->text().empty()) response.set_text(result->text());
    } else {
      ++requests_failed_;
      response.SetAttribute("status", "error");
      response.SetAttribute(
          "code", util::StatusCodeName(result.status().code()));
      response.set_text(result.status().message());
    }
  }
  network_->Send(address_, message.from, xml::WriteXml(response));
}

RpcClient::RpcClient(SimNetwork* network, EventLoop* loop,
                     std::string address, std::string server_address)
    : network_(network),
      loop_(loop),
      address_(std::move(address)),
      server_address_(std::move(server_address)) {}

RpcClient::~RpcClient() { network_->Unbind(address_); }

Status RpcClient::Start() {
  return network_->Bind(address_,
                        [this](const Message& m) { HandleMessage(m); });
}

void RpcClient::Call(std::string_view method, XmlNode params,
                     ResponseCallback callback, util::Duration timeout) {
  params.set_name("request");
  params.SetAttribute("method", std::string(method));

  PendingCall call;
  call.callback = std::move(callback);
  call.method = std::string(method);
  call.request = std::move(params);
  call.retries_left = max_retries_;
  call.timeout = timeout;
  Dispatch(std::move(call));
}

void RpcClient::Dispatch(PendingCall call) {
  std::uint64_t id = next_id_++;
  XmlNode request = call.request;
  request.SetAttribute("id", std::to_string(id));
  util::Duration timeout = call.timeout;

  pending_.emplace(id, std::move(call));
  ++calls_sent_;
  network_->Send(address_, server_address_, xml::WriteXml(request));

  loop_->ScheduleAfter(timeout, [this, id,
                                 alive = std::weak_ptr<int>(alive_)] {
    if (alive.expired()) return;  // the client is gone; do not touch it
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // already answered
    PendingCall timed_out = std::move(it->second);
    pending_.erase(it);
    ++timeouts_;
    if (timed_out.retries_left > 0) {
      --timed_out.retries_left;
      timed_out.timeout *= 2;  // back off
      ++retries_sent_;
      Dispatch(std::move(timed_out));
      return;
    }
    timed_out.callback(
        Status::Unavailable("rpc timeout calling " + timed_out.method));
  });
}

void RpcClient::HandleMessage(const Message& message) {
  auto parsed = xml::ParseXml(message.payload);
  if (!parsed.ok() || parsed->name() != "response") return;
  const XmlNode& response = *parsed;

  auto id_result = util::ParseInt64(response.AttributeOr("id", ""));
  if (!id_result.ok()) return;
  auto it = pending_.find(static_cast<std::uint64_t>(*id_result));
  if (it == pending_.end()) return;  // late response after timeout
  ResponseCallback cb = std::move(it->second.callback);
  pending_.erase(it);

  if (response.AttributeOr("status", "") == "ok") {
    cb(response);
  } else {
    StatusCode code = StatusCodeFromName(response.AttributeOr("code", ""));
    cb(Status(code, response.text()));
  }
}

}  // namespace pisrep::net
