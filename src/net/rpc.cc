#include "net/rpc.h"

#include <cstdlib>
#include <utility>

#include "proto/binary_codec.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::net {

namespace {
using util::Result;
using util::Status;
using util::StatusCode;
using xml::XmlNode;
}  // namespace

util::StatusCode StatusCodeFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    StatusCode code = static_cast<StatusCode>(i);
    if (name == util::StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

RpcServer::RpcServer(SimNetwork* network, std::string address)
    : network_(network), address_(std::move(address)) {}

RpcServer::~RpcServer() { network_->Unbind(address_); }

Status RpcServer::Start() {
  return network_->Bind(address_,
                        [this](const Message& m) { HandleMessage(m); });
}

void RpcServer::RegisterMethod(std::string name, Method method) {
  methods_[std::move(name)] = std::move(method);
}

RpcServer::Method RpcServer::FindMethod(const std::string& name) const {
  auto it = methods_.find(name);
  return it == methods_.end() ? Method() : it->second;
}

void RpcServer::SetResponseGate(ResponseGate gate) {
  response_gate_ = std::move(gate);
}

void RpcServer::AttachObservability(obs::MetricsRegistry* metrics,
                                    obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  method_counters_.clear();
  error_counters_.clear();
  handle_micros_ = nullptr;
  binary_requests_metric_ = nullptr;
  batched_requests_metric_ = nullptr;
  if (metrics_ != nullptr) {
    // Wall-clock-valued (instrumentation only, never steers sim logic):
    // handler durations are real compute time, not sim time — sim time
    // stands still inside an event. Bucket layout stays deterministic.
    handle_micros_ = metrics_->GetHistogram(
        "pisrep_net_rpc_handle_micros",
        {10.0, 100.0, 1000.0, 10000.0, 100000.0});
    binary_requests_metric_ =
        metrics_->GetCounter("pisrep_proto_binary_requests_total");
    batched_requests_metric_ =
        metrics_->GetCounter("pisrep_rpc_batched_requests_total");
  }
}

std::uint64_t RpcServer::MethodCalls(std::string_view method) const {
  auto it = method_calls_.find(std::string(method));
  return it == method_calls_.end() ? 0 : it->second;
}

obs::Counter* RpcServer::MethodCounter(const std::string& method) {
  auto it = method_counters_.find(method);
  if (it != method_counters_.end()) return it->second;
  obs::Counter* counter = metrics_->GetCounter(
      obs::WithLabel("pisrep_net_rpc_requests_total", "method", method));
  method_counters_.emplace(method, counter);
  return counter;
}

obs::Counter* RpcServer::ErrorCounter(const std::string& code) {
  auto it = error_counters_.find(code);
  if (it != error_counters_.end()) return it->second;
  obs::Counter* counter = metrics_->GetCounter(
      obs::WithLabel("pisrep_net_rpc_errors_total", "code", code));
  error_counters_.emplace(code, counter);
  return counter;
}

void RpcServer::HandleMessage(const Message& message) {
  auto decoded = proto::DecodeFrame(message.payload);
  if (!decoded.ok() || (decoded->node.name() != "request" &&
                        decoded->node.name() != "batch")) {
    // Malformed datagram (either codec): nothing sensible to reply to.
    ++requests_failed_;
    if (metrics_) ErrorCounter("malformed")->Increment();
    return;
  }
  if (decoded->codec == proto::WireCodec::kBinary) {
    ++binary_requests_;
    if (binary_requests_metric_) binary_requests_metric_->Increment();
  }

  XmlNode response("response");
  std::string gate_method;
  if (decoded->node.name() == "batch") {
    // One frame in, one frame out: every <request> child is handled in
    // arrival order and answered at the same position of a single <batch>
    // response frame. Each child keeps its own envelope, counters and
    // span, so a batch is observably N calls that shared a datagram. The
    // response gate sees the whole frame once under the pseudo-method
    // "batch", which no bypass list matches — a batch containing writes is
    // therefore always held until replication covers them.
    response.set_name("batch");
    response.SetAttribute("id", decoded->node.AttributeOr("id", ""));
    for (const XmlNode& child : decoded->node.children()) {
      if (child.name() != "request") continue;
      ++batched_requests_;
      if (batched_requests_metric_) batched_requests_metric_->Increment();
      response.AddChild(HandleRequestNode(child));
    }
    gate_method = "batch";
  } else {
    response = HandleRequestNode(decoded->node);
    gate_method = decoded->node.AttributeOr("method", "");
  }

  auto send = [network = network_, from = address_, to = message.from,
               payload = proto::EncodeFrame(response, decoded->codec)] {
    network->Send(from, to, payload);
  };
  if (response_gate_) {
    // The gate owns the transmission now; it may run the closure
    // immediately (reads) or hold it until e.g. replication catches up
    // (writes). Handler work and metrics above already happened.
    response_gate_(gate_method, std::move(send));
  } else {
    send();
  }
}

XmlNode RpcServer::HandleRequestNode(const XmlNode& request) {
  std::string id = request.AttributeOr("id", "");
  std::string method_name = request.AttributeOr("method", "");

  // Continue the caller's trace when the request carries span ids (the
  // client codec adds them whenever its side has a tracer attached).
  obs::Span span;
  if (tracer_ != nullptr) {
    auto trace_id = util::ParseInt64(request.AttributeOr("trace", ""));
    auto span_id = util::ParseInt64(request.AttributeOr("span", ""));
    if (trace_id.ok() && span_id.ok()) {
      span = tracer_->StartChild("rpc.server." + method_name,
                                 static_cast<std::uint64_t>(*trace_id),
                                 static_cast<std::uint64_t>(*span_id));
    } else {
      span = tracer_->StartSpan("rpc.server." + method_name);
    }
  }
  if (metrics_) MethodCounter(method_name)->Increment();
  // Wall time, not sim time: sim time stands still inside an event, so the
  // handler's real compute cost is the only meaningful duration here.
  const std::int64_t handle_started =
      handle_micros_ ? util::MonotonicMicros() : 0;

  XmlNode response("response");
  response.SetAttribute("id", id);

  auto it = methods_.find(method_name);
  if (it == methods_.end()) {
    ++requests_failed_;
    if (metrics_) {
      ErrorCounter(util::StatusCodeName(StatusCode::kNotFound))
          ->Increment();
    }
    span.SetError("no such method");
    response.SetAttribute("status", "error");
    response.SetAttribute("code",
                          util::StatusCodeName(StatusCode::kNotFound));
    response.set_text("no such method: " + method_name);
  } else {
    Result<XmlNode> result = it->second(request);
    if (result.ok()) {
      ++requests_handled_;
      ++method_calls_[method_name];
      response.SetAttribute("status", "ok");
      // The result element's children, text, and attributes become the
      // response body. "id"/"status"/"code" are reserved for the envelope.
      for (const auto& [key, value] : result->attributes()) {
        if (key == "id" || key == "status" || key == "code") continue;
        response.SetAttribute(key, value);
      }
      for (const XmlNode& child : result->children()) {
        response.AddChild(child);
      }
      if (!result->text().empty()) response.set_text(result->text());
    } else {
      ++requests_failed_;
      if (metrics_) {
        ErrorCounter(util::StatusCodeName(result.status().code()))
            ->Increment();
      }
      span.SetError(result.status().message());
      response.SetAttribute("status", "error");
      response.SetAttribute(
          "code", util::StatusCodeName(result.status().code()));
      response.set_text(result.status().message());
    }
  }
  if (handle_micros_) {
    handle_micros_->Observe(
        static_cast<double>(util::MonotonicMicros() - handle_started));
  }
  span.Finish();
  return response;
}

RpcClient::RpcClient(SimNetwork* network, EventLoop* loop,
                     std::string address, std::string server_address)
    : network_(network),
      loop_(loop),
      address_(std::move(address)),
      server_address_(std::move(server_address)),
      rng_(0xbac0ff ^ std::hash<std::string>{}(address_)) {}

RpcClient::~RpcClient() { network_->Unbind(address_); }

Status RpcClient::Start() {
  return network_->Bind(address_,
                        [this](const Message& m) { HandleMessage(m); });
}

void RpcClient::AttachObservability(obs::MetricsRegistry* metrics,
                                    obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    calls_metric_ = nullptr;
    timeouts_metric_ = nullptr;
    retries_metric_ = nullptr;
    fast_failures_metric_ = nullptr;
    breaker_opens_metric_ = nullptr;
    corrupt_metric_ = nullptr;
    latency_ms_ = nullptr;
    return;
  }
  calls_metric_ = metrics->GetCounter("pisrep_net_rpc_client_calls_total");
  timeouts_metric_ =
      metrics->GetCounter("pisrep_net_rpc_client_timeouts_total");
  retries_metric_ =
      metrics->GetCounter("pisrep_net_rpc_client_retries_total");
  fast_failures_metric_ =
      metrics->GetCounter("pisrep_net_rpc_client_fast_failures_total");
  breaker_opens_metric_ =
      metrics->GetCounter("pisrep_net_rpc_client_breaker_opens_total");
  corrupt_metric_ =
      metrics->GetCounter("pisrep_net_rpc_client_corrupt_responses_total");
  // Sim-time round trip of a logical call, retries included — these
  // values are deterministic, unlike the server's wall-micros histogram.
  latency_ms_ = metrics->GetHistogram(
      "pisrep_net_rpc_client_latency_ms",
      {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 30000.0});
}

RpcClient::ServerState& RpcClient::StateFor(const std::string& server) {
  return servers_[server];  // default-constructed closed breaker
}

RpcClient::BreakerState RpcClient::breaker_state_for(
    std::string_view server) const {
  auto it = servers_.find(std::string(server));
  return it == servers_.end() ? BreakerState::kClosed : it->second.state;
}

void RpcClient::Call(std::string_view method, XmlNode params,
                     ResponseCallback callback, util::Duration timeout) {
  CallTo(server_address_, method, std::move(params), std::move(callback),
         timeout);
}

void RpcClient::CallTo(std::string_view server, std::string_view method,
                       XmlNode params, ResponseCallback callback,
                       util::Duration timeout) {
  std::string server_address(server);
  ServerState& state = StateFor(server_address);
  if (breaker_config_.enabled && state.state == BreakerState::kOpen &&
      loop_->Now() >= state.open_until) {
    // Cooldown elapsed: this call becomes the half-open probe.
    state.state = BreakerState::kHalfOpen;
    state.probe_in_flight = false;
  }
  if (breaker_config_.enabled &&
      (state.state == BreakerState::kOpen ||
       (state.state == BreakerState::kHalfOpen && state.probe_in_flight))) {
    ++fast_failures_;
    if (fast_failures_metric_) fast_failures_metric_->Increment();
    callback(Status::Unavailable("circuit breaker open for " +
                                 server_address));
    return;
  }
  if (state.state == BreakerState::kHalfOpen) state.probe_in_flight = true;

  params.set_name("request");
  params.SetAttribute("method", std::string(method));

  PendingCall call;
  call.callback = std::move(callback);
  call.server = std::move(server_address);
  call.method = std::string(method);
  call.retries_left = max_retries_;
  call.timeout = timeout;
  call.started = loop_->Now();
  if (tracer_ != nullptr) {
    // The span's ids ride along as request attributes so the server side
    // can open a causally linked child span. They survive retries: the
    // stored request is re-sent verbatim (only "id" is refreshed). When
    // the request already carries trace ids (a forwarded router hop), the
    // new client span continues that trace instead of starting a root, so
    // one query is traceable client→router→shard.
    auto trace_id = util::ParseInt64(params.AttributeOr("trace", ""));
    auto span_id = util::ParseInt64(params.AttributeOr("span", ""));
    if (trace_id.ok() && span_id.ok()) {
      call.span = tracer_->StartChild(
          "rpc.client." + call.method,
          static_cast<std::uint64_t>(*trace_id),
          static_cast<std::uint64_t>(*span_id));
    } else {
      call.span = tracer_->StartSpan("rpc.client." + call.method);
    }
    params.SetAttribute("trace", std::to_string(call.span.trace_id()));
    params.SetAttribute("span", std::to_string(call.span.span_id()));
  }
  call.request = std::move(params);
  if (batching_) {
    // Inside a batch window: hold the fully prepared call (span opened,
    // breaker consulted) until FlushBatch ships the window.
    batch_queue_.push_back(std::move(call));
    return;
  }
  Dispatch(std::move(call));
}

std::size_t RpcClient::FlushBatch() {
  batching_ = false;
  std::vector<PendingCall> queued = std::move(batch_queue_);
  batch_queue_.clear();
  if (queued.empty()) return 0;

  // Group by destination, preserving queue order within each group (and
  // the order groups first appear, for determinism).
  std::vector<std::string> order;
  std::unordered_map<std::string, std::vector<PendingCall>> groups;
  for (PendingCall& call : queued) {
    if (groups.find(call.server) == groups.end()) {
      order.push_back(call.server);
    }
    groups[call.server].push_back(std::move(call));
  }

  std::size_t frames = 0;
  for (const std::string& server : order) {
    std::vector<PendingCall>& group = groups[server];
    if (group.size() == 1) {
      // No amortization to be had; skip the batch envelope entirely so a
      // flushed single call stays byte-identical to an unbatched one.
      Dispatch(std::move(group.front()));
      ++frames;
      continue;
    }
    XmlNode batch("batch");
    batch.SetAttribute("id", std::to_string(next_id_++));
    util::Duration frame_timeout = 0;
    std::vector<std::uint64_t> sub_ids;
    sub_ids.reserve(group.size());
    for (PendingCall& call : group) {
      std::uint64_t id = next_id_++;
      XmlNode request = call.request;
      request.SetAttribute("id", std::to_string(id));
      batch.AddChild(std::move(request));
      if (call.timeout > frame_timeout) frame_timeout = call.timeout;
      sub_ids.push_back(id);
      pending_.emplace(id, std::move(call));
      ++calls_sent_;
      if (calls_metric_) calls_metric_->Increment();
    }
    ++batches_sent_;
    network_->Send(address_, server, proto::EncodeFrame(batch, codec_));
    ++frames;
    loop_->ScheduleAfter(
        frame_timeout, [this, sub_ids = std::move(sub_ids),
                        alive = std::weak_ptr<int>(alive_)] {
          if (alive.expired()) return;
          // A lost batch frame fails every still-answered-nothing member
          // over to the retry path; retries go out *unbatched*, so one
          // poisoned batch can never wedge its members as a unit.
          for (std::uint64_t id : sub_ids) TimeOutPending(id);
        });
  }
  return frames;
}

void RpcClient::Dispatch(PendingCall call) {
  std::uint64_t id = next_id_++;
  XmlNode request = call.request;
  request.SetAttribute("id", std::to_string(id));
  util::Duration timeout = call.timeout;

  std::string destination = call.server;
  pending_.emplace(id, std::move(call));
  ++calls_sent_;
  if (calls_metric_) calls_metric_->Increment();
  network_->Send(address_, destination, proto::EncodeFrame(request, codec_));

  loop_->ScheduleAfter(timeout, [this, id,
                                 alive = std::weak_ptr<int>(alive_)] {
    if (alive.expired()) return;  // the client is gone; do not touch it
    TimeOutPending(id);
  });
}

void RpcClient::TimeOutPending(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already answered
  PendingCall timed_out = std::move(it->second);
  pending_.erase(it);
  ++timeouts_;
  if (timeouts_metric_) timeouts_metric_->Increment();
  Status error =
      Status::Unavailable("rpc timeout calling " + timed_out.method);
  RetryOrFail(std::move(timed_out), std::move(error));
}

void RpcClient::RetryOrFail(PendingCall call, Status error) {
  if (call.retries_left > 0) {
    --call.retries_left;
    // Exponential backoff with deterministic jitter: double the budget,
    // then stretch by up to +25% so recovering clients desynchronize.
    call.timeout *= 2;
    call.timeout += static_cast<util::Duration>(
        rng_.NextBelow(static_cast<std::uint64_t>(call.timeout) / 4 + 1));
    ++retries_sent_;
    if (retries_metric_) retries_metric_->Increment();
    Dispatch(std::move(call));
    return;
  }
  Complete(std::move(call), std::move(error));
}

void RpcClient::Complete(PendingCall call, Result<XmlNode> result) {
  // Only transport-level failures feed the breaker: an application error
  // (duplicate vote, bad session, ...) proves the server is reachable.
  bool reachable =
      result.ok() ||
      (result.status().code() != StatusCode::kUnavailable &&
       result.status().code() != StatusCode::kDataLoss);
  RecordOutcome(call.server, reachable);
  if (latency_ms_) {
    latency_ms_->Observe(
        static_cast<double>(loop_->Now() - call.started));
  }
  if (!result.ok()) call.span.SetError(result.status().message());
  call.span.Finish();
  call.callback(std::move(result));
}

void RpcClient::RecordOutcome(const std::string& server, bool success) {
  if (!breaker_config_.enabled) return;
  ServerState& state = StateFor(server);
  if (success) {
    state.consecutive_failures = 0;
    state.probe_in_flight = false;
    state.state = BreakerState::kClosed;
    return;
  }
  ++state.consecutive_failures;
  bool probe_failed =
      state.state == BreakerState::kHalfOpen && state.probe_in_flight;
  if (probe_failed ||
      (state.state == BreakerState::kClosed &&
       state.consecutive_failures >= breaker_config_.failure_threshold)) {
    state.state = BreakerState::kOpen;
    state.probe_in_flight = false;
    state.open_until = loop_->Now() + breaker_config_.cooldown;
    ++breaker_opens_;
    if (breaker_opens_metric_) breaker_opens_metric_->Increment();
  }
}

void RpcClient::HandleMessage(const Message& message) {
  auto decoded = proto::DecodeFrame(message.payload);
  if (!decoded.ok() || (decoded->node.name() != "response" &&
                        decoded->node.name() != "batch")) {
    // Corrupted on the wire. For XML frames the request id may still be
    // legible in the mangled payload; if so, fail that call over to the
    // retry path now instead of letting it burn the rest of its timeout.
    // If the id is gone too (always the case for a mangled binary frame),
    // the pending call is covered by its timeout — corruption can never
    // hang a call.
    ++corrupt_responses_;
    if (corrupt_metric_) corrupt_metric_->Increment();
    std::size_t at = message.payload.find("id=\"");
    if (at == std::string::npos) return;
    const char* p = message.payload.c_str() + at + 4;
    char* end = nullptr;
    std::uint64_t id = std::strtoull(p, &end, 10);
    if (end == p) return;
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingCall call = std::move(it->second);
    pending_.erase(it);
    Status error =
        Status::DataLoss("corrupted rpc response for " + call.method);
    RetryOrFail(std::move(call), std::move(error));
    return;
  }
  if (decoded->node.name() == "batch") {
    // The server's one-frame answer to a batch: complete every member.
    for (const XmlNode& child : decoded->node.children()) {
      if (child.name() == "response") HandleResponseNode(child);
    }
    return;
  }
  HandleResponseNode(decoded->node);
}

void RpcClient::HandleResponseNode(const XmlNode& response) {
  auto id_result = util::ParseInt64(response.AttributeOr("id", ""));
  if (!id_result.ok()) return;
  auto it = pending_.find(static_cast<std::uint64_t>(*id_result));
  if (it == pending_.end()) return;  // late or duplicate response
  PendingCall call = std::move(it->second);
  pending_.erase(it);

  if (response.AttributeOr("status", "") == "ok") {
    Complete(std::move(call), Result<XmlNode>(response));
  } else {
    StatusCode code = StatusCodeFromName(response.AttributeOr("code", ""));
    Complete(std::move(call), Status(code, response.text()));
  }
}

}  // namespace pisrep::net
