#ifndef PISREP_NET_FAULT_INJECTOR_H_
#define PISREP_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/event_loop.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/random.h"

namespace pisrep::net {

/// Scriptable fault plane layered on top of SimNetwork.
///
/// The base NetworkConfig models a *healthy* network (fixed latency, uniform
/// jitter, background loss). The injector models *adversity*: partitions,
/// directional per-link loss, message duplication, reordering bursts and
/// payload corruption — everything a reputation client must degrade
/// gracefully under (§3.1: the allow/deny decision happens at the moment of
/// execution, server reachable or not).
///
/// Attach with SimNetwork::AttachFaultInjector; the injector must outlive
/// the network. All randomness is drawn from a private seeded stream so
/// chaos runs are exactly reproducible. Faults can be toggled directly or
/// scheduled as time windows on the event loop.
class FaultInjector {
 public:
  explicit FaultInjector(EventLoop* loop, std::uint64_t seed = 0xfa017);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Partitions ------------------------------------------------------

  /// Cuts the link between `a` and `b` in both directions.
  void Partition(std::string_view a, std::string_view b);

  /// Cuts only the `from`→`to` direction — an asymmetric partition: `to`
  /// still reaches `from`, but anything `from` sends (requests, or the
  /// responses to `to`'s calls) is dropped. Chaos schedules use this to
  /// model one-way link failures that symmetric cuts cannot express.
  void PartitionOneWay(std::string_view from, std::string_view to);

  /// Cuts every link to and from `address` (node failure / partition of a
  /// single server from the whole client population).
  void Isolate(std::string_view address);

  /// Removes all partitions and isolations. Stochastic faults (loss,
  /// duplication, corruption, reorder bursts) are untouched.
  void Heal();

  /// Restores only the `from`→`to` direction (undoes PartitionOneWay, or
  /// half of a Partition).
  void HealLink(std::string_view from, std::string_view to);

  bool IsCut(std::string_view from, std::string_view to) const;

  // --- Stochastic faults -----------------------------------------------

  /// Extra loss probability applied to every message (on top of the
  /// network's own loss_probability).
  void SetLoss(double p) { loss_ = p; }

  /// Directional per-link loss: messages from `from` to `to` are dropped
  /// with probability `p` (overrides the global extra loss when higher).
  void SetLinkLoss(std::string_view from, std::string_view to, double p);
  void ClearLinkLoss() { link_loss_.clear(); }

  /// Probability that a delivered message is delivered twice.
  void SetDuplication(double p) { duplication_ = p; }

  /// Payload corruption: with probability `p` a delivered copy has one bit
  /// flipped or its tail truncated (chosen at random).
  void SetCorruption(double p) { corruption_ = p; }

  /// Reordering: with probability `p` a delivery is delayed by an extra
  /// uniform [0, max_extra] burst, letting later sends overtake it.
  void SetReorderBursts(double p, util::Duration max_extra);

  /// Clears every fault — partitions and stochastic settings alike.
  void Reset();

  // --- Time-windowed schedules -----------------------------------------

  /// Runs `apply` at `start` and `revert` at `end` on the event loop.
  /// Building block for fault schedules; the convenience wrappers below
  /// cover the common cases.
  void ScheduleWindow(util::TimePoint start, util::TimePoint end,
                      std::function<void()> apply,
                      std::function<void()> revert);

  /// Isolates `address` during [start, end).
  void IsolateWindow(util::TimePoint start, util::TimePoint end,
                     std::string address);

  /// Cuts only `from`→`to` during [start, end).
  void PartitionOneWayWindow(util::TimePoint start, util::TimePoint end,
                             std::string from, std::string to);

  /// Applies extra loss / duplication / corruption during [start, end),
  /// then restores the previous values.
  void DegradeWindow(util::TimePoint start, util::TimePoint end, double loss,
                     double duplication, double corruption);

  // --- Hooks used by SimNetwork ----------------------------------------

  /// Decides the fate of one send. Returns true when the message must be
  /// dropped (partition or fault loss).
  bool ShouldDrop(std::string_view from, std::string_view to);

  /// Number of *extra* copies to deliver (0 almost always, 1 when the
  /// duplication fault fires).
  int ExtraCopies();

  /// Possibly corrupts `payload` in place (bit flip or truncation).
  /// Returns true when it did.
  bool MaybeCorrupt(std::string* payload);

  /// Extra delivery latency for one copy (reorder burst), usually 0.
  util::Duration ExtraLatency();

  // --- Counters --------------------------------------------------------

  std::uint64_t dropped_by_fault() const { return dropped_by_fault_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t reordered() const { return reordered_; }

  /// Mirrors the fault counters into `pisrep_net_faults_total{kind=...}`
  /// (null detaches).
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  EventLoop* loop_;
  util::Rng rng_;

  /// Directed link cuts, keyed "from\x1fto"; Partition inserts both
  /// directions, PartitionOneWay exactly one.
  std::unordered_set<std::string> cut_links_;
  std::unordered_set<std::string> isolated_;
  std::unordered_map<std::string, double> link_loss_;

  double loss_ = 0.0;
  double duplication_ = 0.0;
  double corruption_ = 0.0;
  double reorder_probability_ = 0.0;
  util::Duration reorder_max_extra_ = 0;

  std::uint64_t dropped_by_fault_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;

  obs::Counter* dropped_metric_ = nullptr;
  obs::Counter* duplicated_metric_ = nullptr;
  obs::Counter* corrupted_metric_ = nullptr;
  obs::Counter* reordered_metric_ = nullptr;
};

}  // namespace pisrep::net

#endif  // PISREP_NET_FAULT_INJECTOR_H_
