#ifndef PISREP_NET_RPC_H_
#define PISREP_NET_RPC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/binary_codec.h"
#include "util/random.h"
#include "util/status.h"
#include "xml/xml_node.h"

namespace pisrep::net {

/// XML-encoded request/response RPC over the simulated network.
///
/// §3.2: "XML is used as the communication protocol between the client and
/// the server." Wire format:
///
///   <request id="7" method="SubmitRating"> ...params children... </request>
///   <response id="7" status="ok"> ...result children... </response>
///   <response id="7" status="error" code="not_found">message</response>
///
/// Two transport refinements ride on top of that logical schema
/// (DESIGN.md §14), both fully backward compatible:
///
///  - Codec negotiation: the same element tree may travel as a compact
///    binary frame (proto/binary_codec.h). The server sniffs the codec from
///    the frame's first byte and answers in kind, so XML and binary clients
///    coexist on one server with no handshake.
///
///  - Batching: a client may flush N queued calls as one
///    <batch><request/>...</batch> frame; the server answers all of them in
///    one <batch><response/>...</batch> frame. Each inner request keeps its
///    own id, method counters, span and error envelope — a batch is purely
///    a framing optimization, bit-equivalent to N single round trips.
class RpcServer {
 public:
  /// A method takes the request element and returns the result element (its
  /// name is arbitrary; it becomes the children of the response) or an error
  /// status, which is serialized onto the wire.
  using Method =
      std::function<util::Result<xml::XmlNode>(const xml::XmlNode& request)>;

  /// The network must outlive the server.
  RpcServer(SimNetwork* network, std::string address);
  /// Unbinds the address; in-flight deliveries are dropped harmlessly.
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds the server address on the network.
  util::Status Start();

  /// Registers a handler; overwrites any existing handler of that name.
  void RegisterMethod(std::string name, Method method);

  /// Returns a copy of the registered handler (empty function when absent).
  /// Lets an upper layer wrap an existing method — e.g. the cluster's
  /// ownership guard re-registers a routed method around the original.
  Method FindMethod(const std::string& name) const;

  /// When set, the gate is invoked after every handled request with a
  /// closure that transmits the already-built response; the gate decides
  /// *when* to run it (immediately, or after some condition such as
  /// replication reaching the request's mutations). An unset gate sends
  /// synchronously, as before. The gate must eventually run or drop every
  /// closure it receives; pending closures die harmlessly with the gate.
  using ResponseGate =
      std::function<void(const std::string& method, std::function<void()>)>;
  void SetResponseGate(ResponseGate gate);

  const std::string& address() const { return address_; }
  std::uint64_t requests_handled() const { return requests_handled_; }
  std::uint64_t requests_failed() const { return requests_failed_; }
  /// Frames that arrived in the binary codec (requests and batches).
  std::uint64_t binary_requests() const { return binary_requests_; }
  /// Requests that arrived inside a <batch> frame.
  std::uint64_t batched_requests() const { return batched_requests_; }

  /// Successful invocations of one method (operations telemetry).
  std::uint64_t MethodCalls(std::string_view method) const;

  /// Wires per-method request counters, per-code error counters and a
  /// handler-duration histogram into `metrics`, and opens a server-side
  /// child span per request on `tracer` (continuing the trace/span ids
  /// the client codec put on the request). Either may be null. Both must
  /// outlive the server.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

 private:
  void HandleMessage(const Message& message);
  /// Dispatches one logical <request> element and returns its <response>
  /// envelope (status/code/text filled in). Shared by the single-request
  /// and batch paths so both produce byte-identical response elements.
  xml::XmlNode HandleRequestNode(const xml::XmlNode& request);
  obs::Counter* MethodCounter(const std::string& method);
  obs::Counter* ErrorCounter(const std::string& code);

  SimNetwork* network_;
  std::string address_;
  ResponseGate response_gate_;
  std::unordered_map<std::string, Method> methods_;
  std::unordered_map<std::string, std::uint64_t> method_calls_;
  std::uint64_t requests_handled_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t binary_requests_ = 0;
  std::uint64_t batched_requests_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  /// Handle caches so the steady-state path never takes the registry lock.
  std::unordered_map<std::string, obs::Counter*> method_counters_;
  std::unordered_map<std::string, obs::Counter*> error_counters_;
  obs::Histogram* handle_micros_ = nullptr;
  obs::Counter* binary_requests_metric_ = nullptr;
  obs::Counter* batched_requests_metric_ = nullptr;
};

/// Asynchronous RPC client endpoint.
///
/// Failure handling (the client side of graceful degradation):
///  - Timed-out calls are retried with exponential backoff plus
///    deterministic jitter, so a thundering herd of recovering clients does
///    not re-synchronize on the server.
///  - A per-server circuit breaker trips open after a run of consecutive
///    call failures; while open, calls fail fast with kUnavailable instead
///    of burning a full timeout each. After a cooldown one half-open probe
///    is let through; its outcome closes or re-opens the breaker.
///  - Corrupted responses (malformed XML) surface as kDataLoss once retries
///    are exhausted — never a crash, never a silently hung pending call.
class RpcClient {
 public:
  using ResponseCallback = std::function<void(util::Result<xml::XmlNode>)>;

  /// Circuit-breaker tuning (§3.1 availability: the client must answer
  /// allow/deny even when the server cannot).
  struct BreakerConfig {
    bool enabled = true;
    /// Consecutive call failures (timeout-exhausted or data loss) that trip
    /// the breaker open.
    int failure_threshold = 5;
    /// How long the breaker stays open before admitting a half-open probe.
    util::Duration cooldown = 30 * util::kSecond;
  };

  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// The network and loop must outlive the client.
  RpcClient(SimNetwork* network, EventLoop* loop, std::string address,
            std::string server_address);
  /// Unbinds the address; pending callbacks are dropped (never invoked) and
  /// already-scheduled timeout events become no-ops.
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Binds the client address on the network.
  util::Status Start();

  /// How many times a timed-out call is re-sent before failing (timeout
  /// doubled per attempt, plus jitter). Retries give at-least-once
  /// semantics: a request whose *response* was lost may execute twice on
  /// the server, which the pisrep API tolerates (duplicate votes are
  /// rejected, queries are read-only, counters are best-effort).
  void set_max_retries(int retries) { max_retries_ = retries; }
  int max_retries() const { return max_retries_; }

  /// Wire codec for outgoing requests. The server detects the codec per
  /// frame and answers in kind, so this is the whole client-side
  /// negotiation. Default XML (the paper's protocol).
  void set_codec(proto::WireCodec codec) { codec_ = codec; }
  proto::WireCodec codec() const { return codec_; }

  /// Request batching. Between BeginBatch and FlushBatch, Call/CallTo
  /// queue instead of transmitting; FlushBatch groups the queue by server
  /// and ships each group as a single <batch> frame (a group of one goes
  /// out as a plain request). Every queued call keeps its own id, retry
  /// budget and callback; a lost batch frame times out per call and each
  /// call retries *individually* — batching never weakens delivery
  /// semantics, it only amortizes per-frame cost on the happy path.
  void BeginBatch() { batching_ = true; }
  /// Sends the queued calls; returns the number of frames transmitted.
  std::size_t FlushBatch();
  bool batching() const { return batching_; }
  /// Multi-request <batch> frames transmitted so far.
  std::uint64_t batches_sent() const { return batches_sent_; }

  void set_breaker(BreakerConfig config) { breaker_config_ = config; }
  const BreakerConfig& breaker_config() const { return breaker_config_; }
  /// Breaker state for the default server (constructor `server_address`).
  BreakerState breaker_state() const {
    return breaker_state_for(server_address_);
  }
  /// Breaker state for one server. Breaker and backoff bookkeeping is keyed
  /// by server address: a stub talking to several shards keeps independent
  /// failure state per shard, so one dead shard's open breaker never
  /// fast-fails calls to healthy ones.
  BreakerState breaker_state_for(std::string_view server) const;

  /// Issues a call to the default server; `callback` fires exactly once,
  /// with the response body or an error: kUnavailable after all retries
  /// time out (or immediately when the breaker is open), kDataLoss when
  /// every attempt's response arrived corrupted.
  void Call(std::string_view method, xml::XmlNode params,
            ResponseCallback callback,
            util::Duration timeout = 5 * util::kSecond);

  /// Same as Call, but addressed to an explicit server. When the request
  /// already carries `trace`/`span` attributes (a forwarded hop, e.g. the
  /// cluster router), the client span continues that trace as a child
  /// instead of opening a new root.
  void CallTo(std::string_view server, std::string_view method,
              xml::XmlNode params, ResponseCallback callback,
              util::Duration timeout = 5 * util::kSecond);

  /// Mirrors the client counters into the registry, records a sim-time
  /// round-trip latency histogram (Call→Complete, retries included) and
  /// opens one client span per logical call on `tracer`; the span's
  /// trace/span ids travel to the server as request attributes. Either
  /// may be null. Both must outlive the client.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  const std::string& address() const { return address_; }
  std::uint64_t calls_sent() const { return calls_sent_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t retries_sent() const { return retries_sent_; }
  /// Calls rejected synchronously because the breaker was open.
  std::uint64_t fast_failures() const { return fast_failures_; }
  /// Closed→open transitions (including a failed half-open probe).
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  /// Responses that failed to parse as XML (corruption on the wire).
  std::uint64_t corrupt_responses() const { return corrupt_responses_; }

 private:
  struct PendingCall {
    ResponseCallback callback;
    std::string server;  ///< destination address (breaker key)
    std::string method;
    xml::XmlNode request;  ///< re-sent verbatim (with a fresh id) on retry
    int retries_left = 0;
    util::Duration timeout = 0;
    util::TimePoint started = 0;  ///< sim time of the original Call
    obs::Span span;  ///< client span; finishes when the call completes
  };

  /// Per-server circuit-breaker state (keyed by server address).
  struct ServerState {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    util::TimePoint open_until = 0;
    bool probe_in_flight = false;
  };

  ServerState& StateFor(const std::string& server);
  void Dispatch(PendingCall call);
  void HandleMessage(const Message& message);
  /// Completes the pending call addressed by one <response> element
  /// (shared by the single-response and batch-response paths).
  void HandleResponseNode(const xml::XmlNode& response);
  /// Fails the still-pending call `id` over to the retry path (timeout
  /// bookkeeping included); no-op when the call was already answered.
  void TimeOutPending(std::uint64_t id);
  /// Retries `call` with backoff, or completes it with `error` when the
  /// retry budget is exhausted.
  void RetryOrFail(PendingCall call, util::Status error);
  /// Completes a call: runs the breaker bookkeeping, then the callback.
  void Complete(PendingCall call, util::Result<xml::XmlNode> result);
  void RecordOutcome(const std::string& server, bool success);

  SimNetwork* network_;
  EventLoop* loop_;
  std::string address_;
  std::string server_address_;
  /// Liveness token for event-loop callbacks: timeouts capture a weak_ptr
  /// and bail out when the client has been destroyed.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  std::uint64_t next_id_ = 1;
  int max_retries_ = 0;
  proto::WireCodec codec_ = proto::WireCodec::kXml;
  bool batching_ = false;
  std::vector<PendingCall> batch_queue_;
  std::uint64_t batches_sent_ = 0;
  /// Private jitter stream; seeded deterministically so simulations stay
  /// reproducible, decorrelated per client by the address.
  util::Rng rng_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;

  BreakerConfig breaker_config_;
  std::unordered_map<std::string, ServerState> servers_;

  std::uint64_t calls_sent_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_sent_ = 0;
  std::uint64_t fast_failures_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t corrupt_responses_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::Counter* calls_metric_ = nullptr;
  obs::Counter* timeouts_metric_ = nullptr;
  obs::Counter* retries_metric_ = nullptr;
  obs::Counter* fast_failures_metric_ = nullptr;
  obs::Counter* breaker_opens_metric_ = nullptr;
  obs::Counter* corrupt_metric_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;
};

/// Maps a status-code name back to the enum (inverse of StatusCodeName);
/// unknown names map to kInternal.
util::StatusCode StatusCodeFromName(std::string_view name);

}  // namespace pisrep::net

#endif  // PISREP_NET_RPC_H_
