#ifndef PISREP_NET_EVENT_LOOP_H_
#define PISREP_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace pisrep::net {

/// Discrete-event scheduler driving all simulated activity.
///
/// Events execute in (time, insertion-order) order; running an event
/// advances the owned clock to its timestamp. Everything in pisrep that
/// "happens later" — message delivery, the 24-hour aggregation job, a user
/// launching a program tomorrow — is an event on this loop.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  util::SimClock& clock() { return clock_; }
  util::TimePoint Now() const { return clock_.Now(); }

  /// Registers the loop's queue-depth gauge and events-run counter with
  /// `metrics` (null detaches). Safe to call on a shared registry from
  /// several loops — handles are per-name and this loop just updates them.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Schedules `cb` at absolute time `t` (clamped to now when in the past).
  void ScheduleAt(util::TimePoint t, Callback cb);

  /// Schedules `cb` after `delay` from now.
  void ScheduleAfter(util::Duration delay, Callback cb);

  /// Schedules `cb` at `first` and then every `interval` forever. Periodic
  /// work keeps the loop non-empty; bound simulations with RunUntil.
  void SchedulePeriodic(util::TimePoint first, util::Duration interval,
                        Callback cb);

  /// Runs the earliest pending event. Returns false when the queue is empty.
  bool RunOne();

  /// Runs every event with timestamp <= `deadline`, then advances the clock
  /// to `deadline`. Returns the number of events executed.
  std::size_t RunUntil(util::TimePoint deadline);

  /// Runs until the queue is empty or `max_events` executed.
  std::size_t RunAll(std::size_t max_events = 100'000'000);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    util::TimePoint time;
    std::uint64_t seq;
    Callback callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  util::SimClock clock_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Counter* events_run_ = nullptr;
};

}  // namespace pisrep::net

#endif  // PISREP_NET_EVENT_LOOP_H_
