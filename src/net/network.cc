#include "net/network.h"

#include <utility>

#include "net/fault_injector.h"

namespace pisrep::net {

SimNetwork::SimNetwork(EventLoop* loop, NetworkConfig config)
    : loop_(loop), config_(config), rng_(config.seed) {}

util::Status SimNetwork::Bind(std::string_view address, Handler handler) {
  auto [it, inserted] =
      endpoints_.emplace(std::string(address), std::move(handler));
  if (!inserted) {
    return util::Status::AlreadyExists("address already bound: " +
                                       std::string(address));
  }
  return util::Status::Ok();
}

void SimNetwork::Unbind(std::string_view address) {
  endpoints_.erase(std::string(address));
}

bool SimNetwork::IsBound(std::string_view address) const {
  return endpoints_.contains(std::string(address));
}

void SimNetwork::Send(std::string_view from, std::string_view to,
                      std::string payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();
  if (injector_ != nullptr && injector_->ShouldDrop(from, to)) {
    ++messages_dropped_;
    return;
  }
  if (rng_.NextBool(config_.loss_probability)) {
    ++messages_dropped_;
    return;
  }
  Message message{std::string(from), std::string(to), std::move(payload)};
  if (injector_ != nullptr) {
    // Duplication delivers an identical extra copy; each copy corrupts and
    // reorders independently, like distinct packets on a real path.
    int extra = injector_->ExtraCopies();
    for (int i = 0; i < extra; ++i) DeliverCopy(message);
  }
  DeliverCopy(std::move(message));
}

void SimNetwork::DeliverCopy(Message message) {
  util::Duration latency = config_.base_latency;
  if (config_.jitter > 0) {
    latency += static_cast<util::Duration>(
        rng_.NextBelow(static_cast<std::uint64_t>(config_.jitter) + 1));
  }
  if (injector_ != nullptr) {
    injector_->MaybeCorrupt(&message.payload);
    latency += injector_->ExtraLatency();
  }
  loop_->ScheduleAfter(latency, [this, message = std::move(message)] {
    auto it = endpoints_.find(message.to);
    if (it == endpoints_.end()) {
      ++messages_dropped_;
      return;
    }
    ++messages_delivered_;
    it->second(message);
  });
}

}  // namespace pisrep::net
