#ifndef PISREP_NET_NETWORK_H_
#define PISREP_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/event_loop.h"
#include "util/random.h"
#include "util/status.h"

namespace pisrep::net {

/// A datagram in flight between two named endpoints.
struct Message {
  std::string from;
  std::string to;
  std::string payload;
};

/// Latency / loss model for the simulated network.
struct NetworkConfig {
  /// Fixed one-way latency added to every delivery.
  util::Duration base_latency = 20 * util::kMillisecond;
  /// Additional uniform random latency in [0, jitter].
  util::Duration jitter = 10 * util::kMillisecond;
  /// Probability that a message is silently dropped.
  double loss_probability = 0.0;
  /// Seed for the network's private randomness stream.
  std::uint64_t seed = 0x5eed;
};

class FaultInjector;

/// An in-process message-passing network with configurable latency and loss.
///
/// Endpoints register a handler under a unique address; Send schedules an
/// asynchronous delivery on the event loop. This stands in for the paper's
/// TCP/HTTP transport while keeping simulations deterministic. NetworkConfig
/// models the healthy baseline; adversity (partitions, corruption,
/// duplication, reorder bursts) layers on via an attached FaultInjector.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  SimNetwork(EventLoop* loop, NetworkConfig config);

  /// Attaches (or detaches, with nullptr) a fault plane consulted on every
  /// send. The injector must outlive the network or be detached first.
  void AttachFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  /// Registers `address`; fails if it is already bound.
  util::Status Bind(std::string_view address, Handler handler);

  /// Removes an endpoint. Messages already in flight to it are dropped on
  /// arrival.
  void Unbind(std::string_view address);

  bool IsBound(std::string_view address) const;

  /// Queues an asynchronous delivery. Unknown destinations and lossy drops
  /// are not errors at the sender (datagram semantics); they surface as
  /// request timeouts at the RPC layer.
  void Send(std::string_view from, std::string_view to,
            std::string payload);

  /// Counters for tests and reports.
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  /// Schedules one delivery attempt of `message` (a possibly corrupted
  /// copy), after the modelled latency plus any reorder burst.
  void DeliverCopy(Message message);

  EventLoop* loop_;
  NetworkConfig config_;
  util::Rng rng_;
  FaultInjector* injector_ = nullptr;
  std::unordered_map<std::string, Handler> endpoints_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace pisrep::net

#endif  // PISREP_NET_NETWORK_H_
