#include "net/fault_injector.h"

#include <algorithm>

#include "util/logging.h"

namespace pisrep::net {

namespace {

/// Key for one directed link.
std::string LinkKey(std::string_view from, std::string_view to) {
  return std::string(from) + "\x1f" + std::string(to);
}

}  // namespace

FaultInjector::FaultInjector(EventLoop* loop, std::uint64_t seed)
    : loop_(loop), rng_(seed) {}

void FaultInjector::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    dropped_metric_ = nullptr;
    duplicated_metric_ = nullptr;
    corrupted_metric_ = nullptr;
    reordered_metric_ = nullptr;
    return;
  }
  dropped_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_net_faults_total", "kind", "drop"));
  duplicated_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_net_faults_total", "kind", "duplicate"));
  corrupted_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_net_faults_total", "kind", "corrupt"));
  reordered_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_net_faults_total", "kind", "reorder"));
}

void FaultInjector::Partition(std::string_view a, std::string_view b) {
  cut_links_.insert(LinkKey(a, b));
  cut_links_.insert(LinkKey(b, a));
}

void FaultInjector::PartitionOneWay(std::string_view from,
                                    std::string_view to) {
  cut_links_.insert(LinkKey(from, to));
}

void FaultInjector::Isolate(std::string_view address) {
  isolated_.insert(std::string(address));
}

void FaultInjector::Heal() {
  cut_links_.clear();
  isolated_.clear();
}

void FaultInjector::HealLink(std::string_view from, std::string_view to) {
  cut_links_.erase(LinkKey(from, to));
}

bool FaultInjector::IsCut(std::string_view from, std::string_view to) const {
  if (isolated_.contains(std::string(from)) ||
      isolated_.contains(std::string(to))) {
    return true;
  }
  return cut_links_.contains(LinkKey(from, to));
}

void FaultInjector::SetLinkLoss(std::string_view from, std::string_view to,
                                double p) {
  link_loss_[std::string(from) + "\x1f" + std::string(to)] = p;
}

void FaultInjector::SetReorderBursts(double p, util::Duration max_extra) {
  PISREP_CHECK(max_extra >= 0) << "negative reorder burst";
  reorder_probability_ = p;
  reorder_max_extra_ = max_extra;
}

void FaultInjector::Reset() {
  Heal();
  ClearLinkLoss();
  loss_ = 0.0;
  duplication_ = 0.0;
  corruption_ = 0.0;
  reorder_probability_ = 0.0;
  reorder_max_extra_ = 0;
}

void FaultInjector::ScheduleWindow(util::TimePoint start, util::TimePoint end,
                                   std::function<void()> apply,
                                   std::function<void()> revert) {
  PISREP_CHECK(start <= end) << "fault window ends before it starts";
  loop_->ScheduleAt(start, std::move(apply));
  loop_->ScheduleAt(end, std::move(revert));
}

void FaultInjector::IsolateWindow(util::TimePoint start, util::TimePoint end,
                                  std::string address) {
  ScheduleWindow(
      start, end, [this, address] { Isolate(address); },
      [this, address] {
        isolated_.erase(address);
      });
}

void FaultInjector::PartitionOneWayWindow(util::TimePoint start,
                                          util::TimePoint end,
                                          std::string from, std::string to) {
  ScheduleWindow(
      start, end, [this, from, to] { PartitionOneWay(from, to); },
      [this, from, to] { HealLink(from, to); });
}

void FaultInjector::DegradeWindow(util::TimePoint start, util::TimePoint end,
                                  double loss, double duplication,
                                  double corruption) {
  ScheduleWindow(
      start, end,
      [this, loss, duplication, corruption] {
        loss_ = loss;
        duplication_ = duplication;
        corruption_ = corruption;
      },
      [this] {
        loss_ = 0.0;
        duplication_ = 0.0;
        corruption_ = 0.0;
      });
}

bool FaultInjector::ShouldDrop(std::string_view from, std::string_view to) {
  if (IsCut(from, to)) {
    ++dropped_by_fault_;
    if (dropped_metric_) dropped_metric_->Increment();
    return true;
  }
  double p = loss_;
  if (!link_loss_.empty()) {
    auto it =
        link_loss_.find(std::string(from) + "\x1f" + std::string(to));
    if (it != link_loss_.end()) p = std::max(p, it->second);
  }
  if (p > 0.0 && rng_.NextBool(p)) {
    ++dropped_by_fault_;
    if (dropped_metric_) dropped_metric_->Increment();
    return true;
  }
  return false;
}

int FaultInjector::ExtraCopies() {
  if (duplication_ > 0.0 && rng_.NextBool(duplication_)) {
    ++duplicated_;
    if (duplicated_metric_) duplicated_metric_->Increment();
    return 1;
  }
  return 0;
}

bool FaultInjector::MaybeCorrupt(std::string* payload) {
  if (corruption_ <= 0.0 || payload->empty() ||
      !rng_.NextBool(corruption_)) {
    return false;
  }
  ++corrupted_;
  if (corrupted_metric_) corrupted_metric_->Increment();
  if (rng_.NextBool(0.5)) {
    // Bit flip somewhere in the payload.
    std::size_t pos = rng_.NextIndex(payload->size());
    (*payload)[pos] = static_cast<char>(
        static_cast<unsigned char>((*payload)[pos]) ^
        (1u << rng_.NextBelow(8)));
  } else {
    // Truncation: keep a strict prefix.
    payload->resize(rng_.NextIndex(payload->size()));
  }
  return true;
}

util::Duration FaultInjector::ExtraLatency() {
  if (reorder_probability_ <= 0.0 || reorder_max_extra_ <= 0 ||
      !rng_.NextBool(reorder_probability_)) {
    return 0;
  }
  ++reordered_;
  if (reordered_metric_) reordered_metric_->Increment();
  return static_cast<util::Duration>(
      rng_.NextBelow(static_cast<std::uint64_t>(reorder_max_extra_) + 1));
}

}  // namespace pisrep::net
