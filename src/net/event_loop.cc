#include "net/event_loop.h"

#include <memory>
#include <utility>

#include "util/logging.h"

namespace pisrep::net {

void EventLoop::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    pending_gauge_ = nullptr;
    events_run_ = nullptr;
    return;
  }
  pending_gauge_ = metrics->GetGauge("pisrep_net_events_pending");
  events_run_ = metrics->GetCounter("pisrep_net_events_run_total");
  pending_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
}

void EventLoop::ScheduleAt(util::TimePoint t, Callback cb) {
  if (t < clock_.Now()) t = clock_.Now();
  queue_.push(Event{t, next_seq_++, std::move(cb)});
  if (pending_gauge_) {
    pending_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
  }
}

void EventLoop::ScheduleAfter(util::Duration delay, Callback cb) {
  PISREP_CHECK(delay >= 0) << "negative delay";
  ScheduleAt(clock_.Now() + delay, std::move(cb));
}

void EventLoop::SchedulePeriodic(util::TimePoint first,
                                 util::Duration interval, Callback cb) {
  PISREP_CHECK(interval > 0) << "periodic interval must be positive";
  // The wrapper reschedules itself after running the user callback. Only
  // the queued events hold it strongly; the wrapper captures itself weakly,
  // so destroying the loop (whose queue owns the last strong reference)
  // frees the chain instead of leaking a self-referential cycle.
  auto wrapper = std::make_shared<std::function<void(util::TimePoint)>>();
  Callback user_cb = std::move(cb);
  std::weak_ptr<std::function<void(util::TimePoint)>> weak = wrapper;
  *wrapper = [this, interval, user_cb, weak](util::TimePoint at) {
    user_cb();
    util::TimePoint next = at + interval;
    // The currently-running event still holds a strong reference, so the
    // lock always succeeds here; the next event takes over ownership.
    if (auto self = weak.lock()) {
      ScheduleAt(next, [self, next] { (*self)(next); });
    }
  };
  ScheduleAt(first, [wrapper, first] { (*wrapper)(first); });
}

bool EventLoop::RunOne() {
  if (queue_.empty()) return false;
  Event event = queue_.top();
  queue_.pop();
  if (pending_gauge_) {
    pending_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
  }
  if (events_run_) events_run_->Increment();
  clock_.AdvanceTo(event.time);
  event.callback();
  return true;
}

std::size_t EventLoop::RunUntil(util::TimePoint deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    RunOne();
    ++executed;
  }
  if (clock_.Now() < deadline) clock_.AdvanceTo(deadline);
  return executed;
}

std::size_t EventLoop::RunAll(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && RunOne()) ++executed;
  return executed;
}

}  // namespace pisrep::net
