#include "crypto/signing.h"

#include <cstdlib>

#include "util/sha256.h"
#include "util/string_util.h"

namespace pisrep::crypto {

namespace internal_signing {

namespace {

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

}  // namespace

std::uint64_t PowMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool IsPrime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                          19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These witnesses make Miller–Rabin deterministic for all 64-bit inputs.
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                          19ull, 23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = PowMod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace internal_signing

namespace {

using internal_signing::IsPrime;
using internal_signing::PowMod;

constexpr std::uint64_t kPublicExponent = 65537;

/// Random prime p in [2^30, 2^31) with gcd(p-1, e) == 1.
std::uint64_t RandomPrime(util::Rng& rng) {
  for (;;) {
    std::uint64_t candidate =
        (1ull << 30) + rng.NextBelow(1ull << 30);
    candidate |= 1;  // odd
    if (!IsPrime(candidate)) continue;
    if ((candidate - 1) % kPublicExponent == 0) continue;
    return candidate;
  }
}

std::uint64_t ExtendedGcdInverse(std::uint64_t a, std::uint64_t m) {
  // Inverse of a modulo m via extended Euclid (a, m coprime).
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m);
  std::int64_t new_r = static_cast<std::int64_t>(a % m);
  while (new_r != 0) {
    std::int64_t q = r / new_r;
    std::int64_t tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    std::int64_t tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

/// Maps a message to an integer below n via SHA-256.
std::uint64_t DigestBelow(std::string_view message, std::uint64_t n) {
  util::Sha256Digest d = util::Sha256::Hash(message);
  std::uint64_t h = 0;
  for (int i = 0; i < 8; ++i) h = (h << 8) | d.bytes[i];
  return h % n;
}

}  // namespace

std::string PublicKey::ToString() const {
  return util::StrFormat("%016llx:%016llx",
                         static_cast<unsigned long long>(n),
                         static_cast<unsigned long long>(e));
}

util::Result<PublicKey> PublicKey::FromString(std::string_view s) {
  auto parts = util::Split(s, ':');
  if (parts.size() != 2 || parts[0].size() != 16 || parts[1].size() != 16) {
    return util::Status::InvalidArgument("malformed public key: " +
                                         std::string(s));
  }
  PublicKey key;
  char* end = nullptr;
  key.n = std::strtoull(parts[0].c_str(), &end, 16);
  if (end != parts[0].c_str() + 16) {
    return util::Status::InvalidArgument("malformed public key modulus");
  }
  key.e = std::strtoull(parts[1].c_str(), &end, 16);
  if (end != parts[1].c_str() + 16) {
    return util::Status::InvalidArgument("malformed public key exponent");
  }
  return key;
}

KeyPair GenerateKeyPair(util::Rng& rng) {
  std::uint64_t p = RandomPrime(rng);
  std::uint64_t q = RandomPrime(rng);
  while (q == p) q = RandomPrime(rng);
  std::uint64_t n = p * q;
  std::uint64_t phi = (p - 1) * (q - 1);
  std::uint64_t d = ExtendedGcdInverse(kPublicExponent % phi, phi);

  KeyPair pair;
  pair.public_key = PublicKey{n, kPublicExponent};
  pair.private_key = PrivateKey{n, d};
  return pair;
}

Signature Sign(const PrivateKey& key, std::string_view message) {
  return PowMod(DigestBelow(message, key.n), key.d, key.n);
}

bool Verify(const PublicKey& key, std::string_view message,
            Signature signature) {
  if (key.n == 0) return false;
  return PowMod(signature, key.e, key.n) == DigestBelow(message, key.n);
}

std::string KeyFingerprint(const PublicKey& key) {
  util::Sha256Digest digest = util::Sha256::Hash(key.ToString());
  std::string hex = digest.ToHex();
  return hex.substr(0, 16);
}

}  // namespace pisrep::crypto
