#ifndef PISREP_CRYPTO_SIGNING_H_
#define PISREP_CRYPTO_SIGNING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/random.h"
#include "util/status.h"

namespace pisrep::crypto {

/// Public half of a signing key: RSA-style modulus and exponent.
///
/// §4.2 of the paper proposes white-listing software "digitally signed by a
/// trusted vendor e.g., Microsoft or Adobe". Real Authenticode is out of
/// scope, so pisrep implements a miniature textbook-RSA signature scheme
/// (64-bit modulus, Miller–Rabin generated primes). It is cryptographically
/// weak on purpose — the point is that verification requires only public
/// information, which is the property the paper's design depends on.
struct PublicKey {
  std::uint64_t n = 0;  ///< modulus, product of two ~31-bit primes
  std::uint64_t e = 0;  ///< public exponent (65537)

  /// Canonical "n:e" hex rendering, usable as a map key.
  std::string ToString() const;
  /// Parses the ToString form.
  static util::Result<PublicKey> FromString(std::string_view s);

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// Private half of a signing key. Never leaves the signer.
struct PrivateKey {
  std::uint64_t n = 0;
  std::uint64_t d = 0;  ///< private exponent
};

struct KeyPair {
  PublicKey public_key;
  PrivateKey private_key;
};

/// A signature over a message digest.
using Signature = std::uint64_t;

/// Generates a fresh key pair from the deterministic generator, so that
/// simulated vendors have reproducible identities.
KeyPair GenerateKeyPair(util::Rng& rng);

/// Signs `message` with the private key (hash-then-sign over SHA-256).
Signature Sign(const PrivateKey& key, std::string_view message);

/// Verifies that `signature` was produced over `message` by the holder of
/// the private key matching `key`.
bool Verify(const PublicKey& key, std::string_view message,
            Signature signature);

/// Short hex fingerprint (first 8 bytes of SHA-256 over the canonical key
/// rendering) — how audit payloads and the /trust portal page identify a
/// pinned key without printing the whole modulus.
std::string KeyFingerprint(const PublicKey& key);

namespace internal_signing {
/// Modular exponentiation base^exp mod m (128-bit intermediate).
std::uint64_t PowMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);
/// Miller–Rabin primality test, deterministic for 64-bit inputs.
bool IsPrime(std::uint64_t n);
}  // namespace internal_signing

}  // namespace pisrep::crypto

#endif  // PISREP_CRYPTO_SIGNING_H_
