#ifndef PISREP_CRYPTO_TRUST_STORE_H_
#define PISREP_CRYPTO_TRUST_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "crypto/signing.h"
#include "util/status.h"

namespace pisrep::crypto {

/// What a pinned key is allowed to attest to (§4.2 has two signing
/// identities: software vendors white-listing their releases, and experts
/// publishing subscribable advisories).
enum class KeyRole { kVendor, kExpert };

const char* KeyRoleName(KeyRole role);

/// A vendor's code-signing certificate: the binding between a vendor name
/// and a public key, as would be issued by a certificate authority.
struct Certificate {
  std::string vendor;     ///< company name embedded in the certificate
  PublicKey public_key;   ///< the vendor's signing key
  std::int64_t issued_at = 0;  ///< simulation time of issuance
  bool revoked = false;   ///< revocation flag
  KeyRole role = KeyRole::kVendor;  ///< what this key may sign

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// The client's local set of vendor certificates, with a per-vendor trust
/// decision (§4.2: "allows the user to white list and blacklist different
/// companies through their digital signatures").
class TrustStore {
 public:
  enum class VendorTrust { kUnknown, kTrusted, kBlocked };

  TrustStore() = default;

  /// Installs or replaces a certificate for `cert.vendor`.
  void AddCertificate(const Certificate& cert);

  /// Marks the vendor as explicitly trusted (signed software auto-allowed).
  void TrustVendor(std::string_view vendor);
  /// Marks the vendor as explicitly blocked (signed software auto-denied).
  void BlockVendor(std::string_view vendor);
  /// Clears any explicit trust decision.
  void ResetVendor(std::string_view vendor);

  /// The trust decision recorded for the vendor.
  VendorTrust GetTrust(std::string_view vendor) const;

  /// Returns the installed certificate for the vendor.
  util::Result<Certificate> FindCertificate(std::string_view vendor) const;

  /// Marks the vendor's certificate as revoked; signatures from it stop
  /// verifying through VerifySignature.
  util::Status RevokeCertificate(std::string_view vendor);

  /// Verifies `signature` over `message` against the vendor's installed,
  /// unrevoked certificate. Returns false for unknown vendors.
  bool VerifySignature(std::string_view vendor, std::string_view message,
                       Signature signature) const;

  /// Like VerifySignature, but additionally requires the certificate to
  /// carry `role` — an expert key must not white-list software and vice
  /// versa (the server-side gate of the PR 10 trust plane).
  bool VerifySignatureAs(KeyRole role, std::string_view vendor,
                         std::string_view message, Signature signature) const;

  /// All vendors with an explicit kTrusted decision, sorted.
  std::vector<std::string> TrustedVendors() const;

  /// Names of all installed certificates carrying `role`, sorted.
  std::vector<std::string> NamesWithRole(KeyRole role) const;

  std::size_t certificate_count() const { return certificates_.size(); }

 private:
  std::unordered_map<std::string, Certificate> certificates_;
  std::unordered_map<std::string, VendorTrust> trust_;
};

}  // namespace pisrep::crypto

#endif  // PISREP_CRYPTO_TRUST_STORE_H_
