#include "crypto/trust_store.h"

#include <algorithm>

namespace pisrep::crypto {

const char* KeyRoleName(KeyRole role) {
  switch (role) {
    case KeyRole::kVendor:
      return "vendor";
    case KeyRole::kExpert:
      return "expert";
  }
  return "?";
}

void TrustStore::AddCertificate(const Certificate& cert) {
  certificates_[cert.vendor] = cert;
}

void TrustStore::TrustVendor(std::string_view vendor) {
  trust_[std::string(vendor)] = VendorTrust::kTrusted;
}

void TrustStore::BlockVendor(std::string_view vendor) {
  trust_[std::string(vendor)] = VendorTrust::kBlocked;
}

void TrustStore::ResetVendor(std::string_view vendor) {
  trust_.erase(std::string(vendor));
}

TrustStore::VendorTrust TrustStore::GetTrust(std::string_view vendor) const {
  auto it = trust_.find(std::string(vendor));
  return it == trust_.end() ? VendorTrust::kUnknown : it->second;
}

util::Result<Certificate> TrustStore::FindCertificate(
    std::string_view vendor) const {
  auto it = certificates_.find(std::string(vendor));
  if (it == certificates_.end()) {
    return util::Status::NotFound("no certificate for vendor: " +
                                  std::string(vendor));
  }
  return it->second;
}

util::Status TrustStore::RevokeCertificate(std::string_view vendor) {
  auto it = certificates_.find(std::string(vendor));
  if (it == certificates_.end()) {
    return util::Status::NotFound("no certificate for vendor: " +
                                  std::string(vendor));
  }
  it->second.revoked = true;
  return util::Status::Ok();
}

bool TrustStore::VerifySignature(std::string_view vendor,
                                 std::string_view message,
                                 Signature signature) const {
  auto it = certificates_.find(std::string(vendor));
  if (it == certificates_.end() || it->second.revoked) return false;
  return Verify(it->second.public_key, message, signature);
}

bool TrustStore::VerifySignatureAs(KeyRole role, std::string_view vendor,
                                   std::string_view message,
                                   Signature signature) const {
  auto it = certificates_.find(std::string(vendor));
  if (it == certificates_.end() || it->second.revoked) return false;
  if (it->second.role != role) return false;
  return Verify(it->second.public_key, message, signature);
}

std::vector<std::string> TrustStore::TrustedVendors() const {
  std::vector<std::string> out;
  for (const auto& [vendor, decision] : trust_) {
    if (decision == VendorTrust::kTrusted) out.push_back(vendor);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> TrustStore::NamesWithRole(KeyRole role) const {
  std::vector<std::string> out;
  for (const auto& [name, cert] : certificates_) {
    if (cert.role == role) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pisrep::crypto
