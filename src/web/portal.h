#ifndef PISREP_WEB_PORTAL_H_
#define PISREP_WEB_PORTAL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "server/reputation_server.h"
#include "util/status.h"

namespace pisrep::web {

/// The §3 web interface: "an extension to the GUI client, where users e.g.
/// can read more information about some particular software program or
/// vendor along with all the comments that have been submitted", with
/// "more possibilities in searching the information stored in the
/// database."
///
/// The portal renders server state into HTML pages and routes URL paths:
///
///   /                      front page (totals + navigation)
///   /software/<sha1-hex>   one program: metadata, score, behaviours,
///                          every approved comment with its remark balance
///   /vendor/<name>         one vendor: derived score + software catalogue
///   /search?q=<query>      case-insensitive file-name search
///   /top                   best-rated programs
///   /worst                 worst-rated programs (the PIS wall of shame)
///   /stats                 deployment statistics
///   /metrics               live runtime metrics, Prometheus-style text
///   /metrics.json          the same metrics as JSON
///
/// Read-only by design: votes and remarks are submitted through the client
/// application; the web side only presents.
///
/// The portal reads one server *or* a whole shard cluster: the provider
/// returns every live backend, and pages merge across them
/// deterministically (software rows live on exactly one shard; vendor
/// scores merge weighted by software count; top/worst lists merge by
/// score, digest-tie-broken). A provider lets the backend set change under
/// the portal — a shard mid-failover simply drops out of a page render.
class WebPortal {
 public:
  using ServerProvider =
      std::function<std::vector<server::ReputationServer*>()>;

  /// Single-server portal. The server must outlive the portal.
  explicit WebPortal(server::ReputationServer* server,
                     std::size_t list_limit = 25)
      : provider_([server] {
          return std::vector<server::ReputationServer*>{server};
        }),
        list_limit_(list_limit) {}

  /// Multi-shard portal: `provider` is polled per page render and returns
  /// the live shard primaries (nulls are skipped). Every returned server
  /// must stay alive for the duration of one Handle call.
  explicit WebPortal(ServerProvider provider, std::size_t list_limit = 25)
      : provider_(std::move(provider)), list_limit_(list_limit) {}

  /// Routes a request path to the matching page. Unknown paths and
  /// malformed ids produce kNotFound / kInvalidArgument.
  util::Result<std::string> Handle(std::string_view path) const;

  // Individual page renderers (also used directly by tests).
  std::string HomePage() const;
  util::Result<std::string> SoftwarePage(const core::SoftwareId& id) const;
  util::Result<std::string> VendorPage(std::string_view vendor) const;
  std::string SearchPage(std::string_view query) const;
  std::string TopListPage(bool best) const;
  std::string StatsPage() const;
  /// The signed trust plane: pinned vendor/expert keys, verified-manifest
  /// count, signature accept/reject totals, and per-shard audit-chain
  /// health (length, head hash, checkpoints).
  std::string TrustPage() const;
  /// Text (`json == false`) or JSON exposition of the server's metrics
  /// registry; kUnavailable when no registry is attached.
  util::Result<std::string> MetricsPage(bool json) const;

  /// Decodes %XX escapes and '+' in a URL query component.
  static std::string UrlDecode(std::string_view encoded);

 private:
  /// The live backends this render (nulls filtered out).
  std::vector<server::ReputationServer*> Shards() const;
  /// The shard whose registry holds `id`, or null.
  server::ReputationServer* OwnerOf(const core::SoftwareId& id) const;
  /// Cross-shard vendor mean, weighted by per-shard software counts (the
  /// same merge the cluster router serves over RPC).
  util::Result<core::VendorScore> MergedVendorScore(
      const std::vector<server::ReputationServer*>& shards,
      const core::VendorId& vendor) const;

  ServerProvider provider_;
  std::size_t list_limit_;
};

}  // namespace pisrep::web

#endif  // PISREP_WEB_PORTAL_H_
