#include "web/portal.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/export.h"
#include "util/hex.h"
#include "util/string_util.h"
#include "web/html.h"

namespace pisrep::web {

namespace {

using core::SoftwareId;
using util::Result;
using util::Status;
using util::StrFormat;

/// Shared page chrome.
void PageHeader(std::string_view title, HtmlBuilder& html) {
  html.Open("html").Open("head");
  html.Element("title", std::string(title) + " - softwareputation");
  html.Close();  // head
  html.Open("body");
  html.Element("h1", title);
  html.Open("p");
  html.Link("/", "home").Text(" | ");
  html.Link("/top", "best rated").Text(" | ");
  html.Link("/worst", "worst rated").Text(" | ");
  html.Link("/stats", "statistics");
  html.Close();  // p
}

std::string ScoreText(const core::SoftwareScore& score) {
  return StrFormat("%.1f/10 (%d votes)", score.score, score.vote_count);
}

Result<SoftwareId> ParseIdHex(std::string_view hex) {
  SoftwareId id;
  PISREP_ASSIGN_OR_RETURN(auto bytes, util::HexDecode(hex));
  if (bytes.size() != id.bytes.size()) {
    return Status::InvalidArgument("software id must be 40 hex characters");
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) id.bytes[i] = bytes[i];
  return id;
}

}  // namespace

std::string WebPortal::UrlDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    char c = encoded[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < encoded.size()) {
      auto decoded = util::HexDecode(encoded.substr(i + 1, 2));
      if (decoded.ok() && decoded->size() == 1) {
        out.push_back(static_cast<char>((*decoded)[0]));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> WebPortal::Handle(std::string_view path) const {
  if (path == "/" || path.empty()) return HomePage();
  if (path == "/top") return TopListPage(/*best=*/true);
  if (path == "/worst") return TopListPage(/*best=*/false);
  if (path == "/stats") return StatsPage();
  if (path == "/metrics") return MetricsPage(/*json=*/false);
  if (path == "/metrics.json") return MetricsPage(/*json=*/true);
  if (util::StartsWith(path, "/software/")) {
    PISREP_ASSIGN_OR_RETURN(SoftwareId id,
                            ParseIdHex(path.substr(strlen("/software/"))));
    return SoftwarePage(id);
  }
  if (util::StartsWith(path, "/vendor/")) {
    return VendorPage(UrlDecode(path.substr(strlen("/vendor/"))));
  }
  if (util::StartsWith(path, "/search?q=")) {
    return SearchPage(UrlDecode(path.substr(strlen("/search?q="))));
  }
  return Status::NotFound("no such page: " + std::string(path));
}

std::string WebPortal::HomePage() const {
  HtmlBuilder html;
  PageHeader("Software reputation portal", html);
  html.Open("p")
      .Text("Community ratings for the software on your computer. ")
      .Text(StrFormat(
          "%zu programs tracked, %zu votes from %zu members.",
          server_->registry().SoftwareCount(),
          server_->votes().TotalVotes(),
          server_->accounts().AccountCount()))
      .Close();
  html.Open("form", {{"action", "/search"}, {"method", "get"}});
  html.Open("input", {{"name", "q"}, {"placeholder", "file name..."}});
  html.Close();
  html.Close();  // form
  return html.Finish();
}

Result<std::string> WebPortal::SoftwarePage(const SoftwareId& id) const {
  PISREP_ASSIGN_OR_RETURN(core::SoftwareMeta meta,
                          server_->registry().GetSoftware(id));
  HtmlBuilder html;
  PageHeader(meta.file_name, html);

  html.Open("table");
  html.TableRow({"SHA-1 id", id.ToHex()});
  html.TableRow({"file size", StrFormat("%lld bytes",
                                        static_cast<long long>(
                                            meta.file_size))});
  html.TableRow({"version", meta.version});
  if (meta.company.empty()) {
    // §3.3: an absent company name is itself a PIS signal — say so.
    html.TableRow({"company", "(none — treat with suspicion)"});
  } else {
    html.TableRow({"company", meta.company});
  }
  auto score = server_->registry().GetScore(id);
  html.TableRow({"community score",
                 score.ok() ? ScoreText(*score) : "not yet rated"});
  if (!meta.company.empty()) {
    auto vendor = server_->registry().GetVendorScore(meta.company);
    if (vendor.ok()) {
      html.TableRow({"vendor score",
                     StrFormat("%.1f/10 over %d programs", vendor->score,
                               vendor->software_count)});
    }
  }
  core::BehaviorSet behaviors = server_->registry().ReportedBehaviors(
      id, server_->config().behavior_report_threshold);
  html.TableRow({"reported behaviours",
                 behaviors == core::kNoBehaviors
                     ? "none"
                     : core::BehaviorSetToString(behaviors)});
  html.TableRow({"community run count",
                 std::to_string(server_->registry().RunCount(id))});
  html.Close();  // table

  // §3: the web interface shows "all the comments that have been
  // submitted" (approved ones), with their meta-moderation balance.
  html.Element("h2", "comments");
  std::vector<server::StoredRating> votes =
      server_->votes().VotesForSoftware(id);
  std::sort(votes.begin(), votes.end(),
            [](const server::StoredRating& a, const server::StoredRating& b) {
              return a.record.submitted_at > b.record.submitted_at;
            });
  html.Open("ul");
  for (const server::StoredRating& vote : votes) {
    if (!vote.approved || vote.record.comment.empty()) continue;
    std::int64_t balance =
        server_->votes().RemarkBalance(vote.record.user, id);
    html.Open("li")
        .Text(StrFormat("[%d/10, helpfulness %+lld] ", vote.record.score,
                        static_cast<long long>(balance)))
        .Text(vote.record.comment)
        .Close();
  }
  html.Close();  // ul
  return html.Finish();
}

Result<std::string> WebPortal::VendorPage(std::string_view vendor) const {
  std::string name(vendor);
  std::vector<core::SoftwareMeta> catalogue =
      server_->registry().SoftwareByVendor(name);
  if (catalogue.empty()) {
    return Status::NotFound("no software registered for vendor: " + name);
  }
  HtmlBuilder html;
  PageHeader("Vendor: " + name, html);
  auto vendor_score = server_->registry().GetVendorScore(name);
  if (vendor_score.ok()) {
    html.Element("p", StrFormat("derived vendor score: %.1f/10 over %d "
                                "rated programs",
                                vendor_score->score,
                                vendor_score->software_count));
  }
  html.Open("table");
  html.TableRow({"file name", "version", "score"}, "th");
  for (const core::SoftwareMeta& meta : catalogue) {
    auto score = server_->registry().GetScore(meta.id);
    html.Open("tr");
    html.Open("td");
    html.Link("/software/" + meta.id.ToHex(), meta.file_name);
    html.Close();
    html.Element("td", meta.version);
    html.Element("td", score.ok() ? ScoreText(*score) : "unrated");
    html.Close();  // tr
  }
  html.Close();  // table
  return html.Finish();
}

std::string WebPortal::SearchPage(std::string_view query) const {
  HtmlBuilder html;
  PageHeader("Search: " + std::string(query), html);
  std::vector<core::SoftwareMeta> hits =
      server_->registry().SearchByName(query);
  html.Element("p", StrFormat("%zu result(s)", hits.size()));
  html.Open("ul");
  std::size_t shown = 0;
  for (const core::SoftwareMeta& meta : hits) {
    if (shown++ >= list_limit_) break;
    html.Open("li");
    html.Link("/software/" + meta.id.ToHex(), meta.file_name);
    html.Text(meta.company.empty() ? " (no company)"
                                   : " by " + meta.company);
    html.Close();
  }
  html.Close();  // ul
  return html.Finish();
}

std::string WebPortal::TopListPage(bool best) const {
  // Served straight off the ordered score index.
  std::vector<core::SoftwareScore> scores =
      server_->registry().TopScored(list_limit_, best);

  HtmlBuilder html;
  PageHeader(best ? "Best rated software" : "Worst rated software", html);
  html.Open("ol");
  for (const core::SoftwareScore& score : scores) {
    auto meta = server_->registry().GetSoftware(score.software);
    if (!meta.ok()) continue;
    html.Open("li");
    html.Link("/software/" + meta->id.ToHex(), meta->file_name);
    html.Text(" — " + ScoreText(score));
    html.Close();
  }
  html.Close();  // ol
  return html.Finish();
}

std::string WebPortal::StatsPage() const {
  HtmlBuilder html;
  PageHeader("Deployment statistics", html);
  const server::ServerStats& stats = server_->stats();
  html.Open("table");
  html.TableRow({"registered members",
                 std::to_string(server_->accounts().AccountCount())});
  html.TableRow({"tracked programs",
                 std::to_string(server_->registry().SoftwareCount())});
  html.TableRow({"votes", std::to_string(server_->votes().TotalVotes())});
  html.TableRow({"comment remarks",
                 std::to_string(server_->votes().TotalRemarks())});
  html.TableRow({"queries served", std::to_string(stats.queries)});
  html.TableRow({"duplicate votes rejected",
                 std::to_string(stats.votes_rejected_duplicate)});
  html.TableRow({"flood-limited votes",
                 std::to_string(stats.votes_rejected_flood)});
  html.TableRow({"registrations rejected",
                 std::to_string(stats.registrations_rejected)});
  html.Close();
  return html.Finish();
}

Result<std::string> WebPortal::MetricsPage(bool json) const {
  // Raw exposition, not HTML: the consumers are scrapers and tooling.
  const obs::MetricsRegistry* metrics = server_->metrics();
  if (metrics == nullptr) {
    return Status::Unavailable("no metrics registry attached");
  }
  return json ? obs::RenderJson(*metrics) : obs::RenderText(*metrics);
}

}  // namespace pisrep::web
