#include "web/portal.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/export.h"
#include "util/hex.h"
#include "util/string_util.h"
#include "web/html.h"

namespace pisrep::web {

namespace {

using core::SoftwareId;
using util::Result;
using util::Status;
using util::StrFormat;

/// Shared page chrome.
void PageHeader(std::string_view title, HtmlBuilder& html) {
  html.Open("html").Open("head");
  html.Element("title", std::string(title) + " - softwareputation");
  html.Close();  // head
  html.Open("body");
  html.Element("h1", title);
  html.Open("p");
  html.Link("/", "home").Text(" | ");
  html.Link("/top", "best rated").Text(" | ");
  html.Link("/worst", "worst rated").Text(" | ");
  html.Link("/stats", "statistics").Text(" | ");
  html.Link("/trust", "trust");
  html.Close();  // p
}

std::string ScoreText(const core::SoftwareScore& score) {
  return StrFormat("%.1f/10 (%d votes)", score.score, score.vote_count);
}

Result<SoftwareId> ParseIdHex(std::string_view hex) {
  SoftwareId id;
  PISREP_ASSIGN_OR_RETURN(auto bytes, util::HexDecode(hex));
  if (bytes.size() != id.bytes.size()) {
    return Status::InvalidArgument("software id must be 40 hex characters");
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) id.bytes[i] = bytes[i];
  return id;
}

}  // namespace

std::vector<server::ReputationServer*> WebPortal::Shards() const {
  std::vector<server::ReputationServer*> shards = provider_();
  shards.erase(std::remove(shards.begin(), shards.end(), nullptr),
               shards.end());
  return shards;
}

server::ReputationServer* WebPortal::OwnerOf(const SoftwareId& id) const {
  // A software row lives on exactly one shard (digest partitioning), so
  // probing in shard order finds the owner without knowing the ring.
  for (server::ReputationServer* shard : Shards()) {
    if (shard->registry().HasSoftware(id)) return shard;
  }
  return nullptr;
}

Result<core::VendorScore> WebPortal::MergedVendorScore(
    const std::vector<server::ReputationServer*>& shards,
    const core::VendorId& vendor) const {
  double weighted_sum = 0.0;
  int total_count = 0;
  util::TimePoint computed_at = 0;
  for (server::ReputationServer* shard : shards) {
    auto leg = shard->registry().GetVendorScore(vendor);
    if (!leg.ok() || leg->software_count <= 0) continue;
    weighted_sum += leg->score * leg->software_count;
    total_count += leg->software_count;
    computed_at = std::max(computed_at, leg->computed_at);
  }
  if (total_count == 0) {
    return Status::NotFound("vendor has no scored software");
  }
  core::VendorScore merged;
  merged.vendor = vendor;
  merged.score = weighted_sum / total_count;
  merged.software_count = total_count;
  merged.computed_at = computed_at;
  return merged;
}

std::string WebPortal::UrlDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    char c = encoded[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < encoded.size()) {
      auto decoded = util::HexDecode(encoded.substr(i + 1, 2));
      if (decoded.ok() && decoded->size() == 1) {
        out.push_back(static_cast<char>((*decoded)[0]));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> WebPortal::Handle(std::string_view path) const {
  if (path == "/" || path.empty()) return HomePage();
  if (path == "/top") return TopListPage(/*best=*/true);
  if (path == "/worst") return TopListPage(/*best=*/false);
  if (path == "/stats") return StatsPage();
  if (path == "/trust") return TrustPage();
  if (path == "/metrics") return MetricsPage(/*json=*/false);
  if (path == "/metrics.json") return MetricsPage(/*json=*/true);
  if (util::StartsWith(path, "/software/")) {
    PISREP_ASSIGN_OR_RETURN(SoftwareId id,
                            ParseIdHex(path.substr(strlen("/software/"))));
    return SoftwarePage(id);
  }
  if (util::StartsWith(path, "/vendor/")) {
    return VendorPage(UrlDecode(path.substr(strlen("/vendor/"))));
  }
  if (util::StartsWith(path, "/search?q=")) {
    return SearchPage(UrlDecode(path.substr(strlen("/search?q="))));
  }
  return Status::NotFound("no such page: " + std::string(path));
}

std::string WebPortal::HomePage() const {
  std::vector<server::ReputationServer*> shards = Shards();
  std::size_t programs = 0;
  std::size_t votes = 0;
  // Accounts exist on every shard (broadcast registration); count once.
  std::size_t members = shards.empty() ? 0 : shards[0]->accounts().AccountCount();
  for (server::ReputationServer* shard : shards) {
    programs += shard->registry().SoftwareCount();
    votes += shard->votes().TotalVotes();
  }
  HtmlBuilder html;
  PageHeader("Software reputation portal", html);
  html.Open("p")
      .Text("Community ratings for the software on your computer. ")
      .Text(StrFormat("%zu programs tracked, %zu votes from %zu members.",
                      programs, votes, members))
      .Close();
  html.Open("form", {{"action", "/search"}, {"method", "get"}});
  html.Open("input", {{"name", "q"}, {"placeholder", "file name..."}});
  html.Close();
  html.Close();  // form
  return html.Finish();
}

Result<std::string> WebPortal::SoftwarePage(const SoftwareId& id) const {
  server::ReputationServer* owner = OwnerOf(id);
  if (owner == nullptr) {
    return Status::NotFound("software not registered: " + id.ToHex());
  }
  PISREP_ASSIGN_OR_RETURN(core::SoftwareMeta meta,
                          owner->registry().GetSoftware(id));
  HtmlBuilder html;
  PageHeader(meta.file_name, html);

  html.Open("table");
  html.TableRow({"SHA-1 id", id.ToHex()});
  html.TableRow({"file size", StrFormat("%lld bytes",
                                        static_cast<long long>(
                                            meta.file_size))});
  html.TableRow({"version", meta.version});
  if (meta.company.empty()) {
    // §3.3: an absent company name is itself a PIS signal — say so.
    html.TableRow({"company", "(none — treat with suspicion)"});
  } else {
    html.TableRow({"company", meta.company});
  }
  auto score = owner->registry().GetScore(id);
  html.TableRow({"community score",
                 score.ok() ? ScoreText(*score) : "not yet rated"});
  if (!meta.company.empty()) {
    // The vendor's catalogue spans shards; show the cluster-wide score.
    auto vendor = MergedVendorScore(Shards(), meta.company);
    if (vendor.ok()) {
      html.TableRow({"vendor score",
                     StrFormat("%.1f/10 over %d programs", vendor->score,
                               vendor->software_count)});
    }
  }
  core::BehaviorSet behaviors = owner->registry().ReportedBehaviors(
      id, owner->config().behavior_report_threshold);
  html.TableRow({"reported behaviours",
                 behaviors == core::kNoBehaviors
                     ? "none"
                     : core::BehaviorSetToString(behaviors)});
  html.TableRow({"community run count",
                 std::to_string(owner->registry().RunCount(id))});
  html.Close();  // table

  // §3: the web interface shows "all the comments that have been
  // submitted" (approved ones), with their meta-moderation balance.
  html.Element("h2", "comments");
  std::vector<server::StoredRating> votes =
      owner->votes().VotesForSoftware(id);
  std::sort(votes.begin(), votes.end(),
            [](const server::StoredRating& a, const server::StoredRating& b) {
              return a.record.submitted_at > b.record.submitted_at;
            });
  html.Open("ul");
  for (const server::StoredRating& vote : votes) {
    if (!vote.approved || vote.record.comment.empty()) continue;
    std::int64_t balance = owner->votes().RemarkBalance(vote.record.user, id);
    html.Open("li")
        .Text(StrFormat("[%d/10, helpfulness %+lld] ", vote.record.score,
                        static_cast<long long>(balance)))
        .Text(vote.record.comment)
        .Close();
  }
  html.Close();  // ul
  return html.Finish();
}

Result<std::string> WebPortal::VendorPage(std::string_view vendor) const {
  std::string name(vendor);
  std::vector<server::ReputationServer*> shards = Shards();
  // The catalogue is partitioned by digest; concatenate the per-shard
  // slices and order them deterministically regardless of sharding.
  std::vector<std::pair<server::ReputationServer*, core::SoftwareMeta>>
      catalogue;
  for (server::ReputationServer* shard : shards) {
    for (core::SoftwareMeta& meta : shard->registry().SoftwareByVendor(name)) {
      catalogue.emplace_back(shard, std::move(meta));
    }
  }
  if (catalogue.empty()) {
    return Status::NotFound("no software registered for vendor: " + name);
  }
  std::sort(catalogue.begin(), catalogue.end(),
            [](const auto& a, const auto& b) {
              if (a.second.file_name != b.second.file_name) {
                return a.second.file_name < b.second.file_name;
              }
              return a.second.id.ToHex() < b.second.id.ToHex();
            });
  HtmlBuilder html;
  PageHeader("Vendor: " + name, html);
  auto vendor_score = MergedVendorScore(shards, name);
  if (vendor_score.ok()) {
    html.Element("p", StrFormat("derived vendor score: %.1f/10 over %d "
                                "rated programs",
                                vendor_score->score,
                                vendor_score->software_count));
  }
  html.Open("table");
  html.TableRow({"file name", "version", "score"}, "th");
  for (const auto& [shard, meta] : catalogue) {
    auto score = shard->registry().GetScore(meta.id);
    html.Open("tr");
    html.Open("td");
    html.Link("/software/" + meta.id.ToHex(), meta.file_name);
    html.Close();
    html.Element("td", meta.version);
    html.Element("td", score.ok() ? ScoreText(*score) : "unrated");
    html.Close();  // tr
  }
  html.Close();  // table
  return html.Finish();
}

std::string WebPortal::SearchPage(std::string_view query) const {
  HtmlBuilder html;
  PageHeader("Search: " + std::string(query), html);
  std::vector<core::SoftwareMeta> hits;
  for (server::ReputationServer* shard : Shards()) {
    for (core::SoftwareMeta& meta : shard->registry().SearchByName(query)) {
      hits.push_back(std::move(meta));
    }
  }
  // Deterministic cross-shard order: by name, digest as tie-break.
  std::sort(hits.begin(), hits.end(),
            [](const core::SoftwareMeta& a, const core::SoftwareMeta& b) {
              if (a.file_name != b.file_name) return a.file_name < b.file_name;
              return a.id.ToHex() < b.id.ToHex();
            });
  html.Element("p", StrFormat("%zu result(s)", hits.size()));
  html.Open("ul");
  std::size_t shown = 0;
  for (const core::SoftwareMeta& meta : hits) {
    if (shown++ >= list_limit_) break;
    html.Open("li");
    html.Link("/software/" + meta.id.ToHex(), meta.file_name);
    html.Text(meta.company.empty() ? " (no company)"
                                   : " by " + meta.company);
    html.Close();
  }
  html.Close();  // ul
  return html.Finish();
}

std::string WebPortal::TopListPage(bool best) const {
  // Each shard serves its own top slice off the ordered score index; the
  // merge keeps the best `list_limit_` overall. Deterministic order:
  // score (descending for /top, ascending for /worst), digest ascending
  // as tie-break — independent of shard count and iteration order.
  std::vector<std::pair<server::ReputationServer*, core::SoftwareScore>>
      merged;
  for (server::ReputationServer* shard : Shards()) {
    for (core::SoftwareScore& score :
         shard->registry().TopScored(list_limit_, best)) {
      merged.emplace_back(shard, std::move(score));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [best](const auto& a, const auto& b) {
              if (a.second.score != b.second.score) {
                return best ? a.second.score > b.second.score
                            : a.second.score < b.second.score;
              }
              return a.second.software.ToHex() < b.second.software.ToHex();
            });
  if (merged.size() > list_limit_) merged.resize(list_limit_);

  HtmlBuilder html;
  PageHeader(best ? "Best rated software" : "Worst rated software", html);
  html.Open("ol");
  for (const auto& [shard, score] : merged) {
    auto meta = shard->registry().GetSoftware(score.software);
    if (!meta.ok()) continue;
    html.Open("li");
    html.Link("/software/" + meta->id.ToHex(), meta->file_name);
    html.Text(" — " + ScoreText(score));
    html.Close();
  }
  html.Close();  // ol
  return html.Finish();
}

std::string WebPortal::StatsPage() const {
  std::vector<server::ReputationServer*> shards = Shards();
  server::ServerStats stats;
  std::size_t members = shards.empty() ? 0 : shards[0]->accounts().AccountCount();
  std::size_t programs = 0;
  std::size_t votes = 0;
  std::size_t remarks = 0;
  for (server::ReputationServer* shard : shards) {
    programs += shard->registry().SoftwareCount();
    votes += shard->votes().TotalVotes();
    remarks += shard->votes().TotalRemarks();
    stats.queries += shard->stats().queries;
    stats.votes_rejected_duplicate += shard->stats().votes_rejected_duplicate;
    stats.votes_rejected_flood += shard->stats().votes_rejected_flood;
    stats.registrations_rejected += shard->stats().registrations_rejected;
  }
  HtmlBuilder html;
  PageHeader("Deployment statistics", html);
  html.Open("table");
  html.TableRow({"registered members", std::to_string(members)});
  html.TableRow({"tracked programs", std::to_string(programs)});
  html.TableRow({"votes", std::to_string(votes)});
  html.TableRow({"comment remarks", std::to_string(remarks)});
  html.TableRow({"queries served", std::to_string(stats.queries)});
  html.TableRow({"duplicate votes rejected",
                 std::to_string(stats.votes_rejected_duplicate)});
  html.TableRow({"flood-limited votes",
                 std::to_string(stats.votes_rejected_flood)});
  html.TableRow({"registrations rejected",
                 std::to_string(stats.registrations_rejected)});
  html.Close();
  return html.Finish();
}

std::string WebPortal::TrustPage() const {
  std::vector<server::ReputationServer*> shards = Shards();
  HtmlBuilder html;
  PageHeader("Trust plane", html);

  // Pinned keys are broadcast state — identical on every shard; render the
  // first live backend's store.
  if (!shards.empty()) {
    crypto::TrustStore& keys = shards[0]->trust_keys();
    html.Element("h2", "Pinned signing keys");
    html.Open("table");
    html.TableRow({"role", "name", "key fingerprint"});
    for (crypto::KeyRole role :
         {crypto::KeyRole::kVendor, crypto::KeyRole::kExpert}) {
      for (const std::string& name : keys.NamesWithRole(role)) {
        auto certificate = keys.FindCertificate(name);
        if (!certificate.ok()) continue;
        html.TableRow({crypto::KeyRoleName(role), name,
                       crypto::KeyFingerprint(certificate->public_key)});
      }
    }
    html.Close();
  }

  std::uint64_t manifests = 0;
  std::uint64_t advisories = 0;
  std::uint64_t rejected = 0;
  for (server::ReputationServer* shard : shards) {
    manifests += shard->stats().manifests_accepted;
    advisories += shard->stats().advisories_accepted;
    rejected += shard->stats().signatures_rejected;
  }
  html.Element("h2", "Signed statements");
  html.Open("table");
  html.TableRow({"manifests accepted", std::to_string(manifests)});
  html.TableRow({"advisories accepted", std::to_string(advisories)});
  html.TableRow({"signatures rejected", std::to_string(rejected)});
  html.Close();

  html.Element("h2", "Audit chains");
  html.Open("table");
  html.TableRow({"shard", "entries", "head hash", "checkpoints"});
  int ordinal = 0;
  for (server::ReputationServer* shard : shards) {
    trust::AuditLog* audit = shard->audit();
    if (audit == nullptr) {
      html.TableRow({std::to_string(ordinal++), "disabled", "-", "-"});
      continue;
    }
    html.TableRow({std::to_string(ordinal++),
                   std::to_string(audit->head_index()), audit->head_hash(),
                   std::to_string(audit->checkpoint_count())});
  }
  html.Close();
  return html.Finish();
}

Result<std::string> WebPortal::MetricsPage(bool json) const {
  // Raw exposition, not HTML: the consumers are scrapers and tooling. All
  // shards share one registry in a cluster; the first live backend with
  // one attached serves it.
  for (server::ReputationServer* shard : Shards()) {
    const obs::MetricsRegistry* metrics = shard->metrics();
    if (metrics != nullptr) {
      return json ? obs::RenderJson(*metrics) : obs::RenderText(*metrics);
    }
  }
  return Status::Unavailable("no metrics registry attached");
}

}  // namespace pisrep::web
