#ifndef PISREP_WEB_HTML_H_
#define PISREP_WEB_HTML_H_

#include <string>
#include <string_view>
#include <vector>

namespace pisrep::web {

/// Escapes text for HTML element content and attribute values.
std::string EscapeHtml(std::string_view text);

/// Minimal streaming HTML builder used by the portal's page renderers.
/// Produces well-formed, properly escaped markup; tags are closed in LIFO
/// order and Finish() checks that nothing is left open.
class HtmlBuilder {
 public:
  HtmlBuilder() = default;

  /// Opens `<tag>`; the optional attribute list is (name, value) pairs.
  HtmlBuilder& Open(std::string_view tag,
                    std::initializer_list<
                        std::pair<std::string_view, std::string_view>>
                        attributes = {});

  /// Closes the most recently opened tag.
  HtmlBuilder& Close();

  /// Appends escaped text content.
  HtmlBuilder& Text(std::string_view text);

  /// Convenience: `<tag>text</tag>`.
  HtmlBuilder& Element(std::string_view tag, std::string_view text);

  /// Convenience: a table row of escaped cells with the given cell tag.
  HtmlBuilder& TableRow(const std::vector<std::string>& cells,
                        std::string_view cell_tag = "td");

  /// Convenience: `<a href="href">text</a>`.
  HtmlBuilder& Link(std::string_view href, std::string_view text);

  /// Closes any remaining open tags and returns the document.
  std::string Finish();

 private:
  std::string out_;
  std::vector<std::string> open_tags_;
};

}  // namespace pisrep::web

#endif  // PISREP_WEB_HTML_H_
