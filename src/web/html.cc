#include "web/html.h"

namespace pisrep::web {

std::string EscapeHtml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&#39;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

HtmlBuilder& HtmlBuilder::Open(
    std::string_view tag,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attributes) {
  out_ += "<";
  out_ += tag;
  for (const auto& [name, value] : attributes) {
    out_ += " ";
    out_ += name;
    out_ += "=\"";
    out_ += EscapeHtml(value);
    out_ += "\"";
  }
  out_ += ">";
  open_tags_.emplace_back(tag);
  return *this;
}

HtmlBuilder& HtmlBuilder::Close() {
  if (!open_tags_.empty()) {
    out_ += "</";
    out_ += open_tags_.back();
    out_ += ">";
    open_tags_.pop_back();
  }
  return *this;
}

HtmlBuilder& HtmlBuilder::Text(std::string_view text) {
  out_ += EscapeHtml(text);
  return *this;
}

HtmlBuilder& HtmlBuilder::Element(std::string_view tag,
                                  std::string_view text) {
  Open(tag);
  Text(text);
  return Close();
}

HtmlBuilder& HtmlBuilder::TableRow(const std::vector<std::string>& cells,
                                   std::string_view cell_tag) {
  Open("tr");
  for (const std::string& cell : cells) {
    Element(cell_tag, cell);
  }
  return Close();
}

HtmlBuilder& HtmlBuilder::Link(std::string_view href,
                               std::string_view text) {
  Open("a", {{"href", href}});
  Text(text);
  return Close();
}

std::string HtmlBuilder::Finish() {
  while (!open_tags_.empty()) Close();
  return std::move(out_);
}

}  // namespace pisrep::web
