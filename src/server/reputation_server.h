#ifndef PISREP_SERVER_REPUTATION_SERVER_H_
#define PISREP_SERVER_REPUTATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/behavior.h"
#include "core/types.h"
#include "crypto/signing.h"
#include "crypto/trust_store.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "obs/snapshot_logger.h"
#include "obs/trace.h"
#include "proto/wire.h"
#include "server/account_manager.h"
#include "server/aggregation_job.h"
#include "server/bootstrap.h"
#include "server/feeds.h"
#include "server/flood_guard.h"
#include "server/moderation.h"
#include "server/score_snapshot.h"
#include "server/software_registry.h"
#include "server/vote_store.h"
#include "storage/database.h"
#include "trust/audit_log.h"
#include "trust/manifest_store.h"
#include "trust/signed_statement.h"
#include "util/thread_pool.h"

namespace pisrep::server {

/// An activation e-mail in the simulated mailbox.
struct ActivationMail {
  std::string username;
  std::string token;
};

/// Everything the client displays about a pending software travels over the
/// wire, so the struct lives in proto/; the alias keeps the historical
/// server-side spelling.
using SoftwareInfo = proto::SoftwareInfo;

/// Operation counters for reports and benches.
struct ServerStats {
  std::uint64_t registrations = 0;
  std::uint64_t registrations_rejected = 0;
  std::uint64_t logins = 0;
  std::uint64_t queries = 0;
  /// Queries answered straight from the published snapshot / forced onto
  /// the slow path by a post-publication mutation (subset of `queries`).
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  std::uint64_t votes_accepted = 0;
  std::uint64_t votes_rejected_duplicate = 0;
  std::uint64_t votes_rejected_flood = 0;
  std::uint64_t remarks_accepted = 0;
  /// Remarks rejected because the rater's account is younger than one
  /// aggregation window — its trust factor has never been recomputed, so
  /// its meta-moderation weight is unearned (PR 10 regression fix).
  std::uint64_t remarks_rejected_young = 0;
  std::uint64_t manifests_accepted = 0;
  std::uint64_t advisories_accepted = 0;
  /// Signed statements whose signature failed verification.
  std::uint64_t signatures_rejected = 0;
};

/// Reserved publisher id for expert advisory feeds: advisories arrive
/// signed rather than through a logged-in session, so their feeds are
/// owned by this system account (negative, hence never a real account id;
/// no session can authenticate as it, so only the signed-advisory path
/// publishes into these feeds).
inline constexpr core::UserId kExpertPublisher = -424242;

/// The reputation-system server (§3.2): accounts, votes, comment remarks,
/// software/vendor registry, daily aggregation, flood protection,
/// moderation, bootstrap import and expert feeds — exposed both as a native
/// in-process API (used by fast simulations and tests) and as XML RPC over
/// the simulated network (used by the client library, §3.2's protocol).
class ReputationServer {
 public:
  struct Config {
    AccountManager::Config accounts;
    FloodGuard::Config flood;
    /// When true, comments require administrator approval before other
    /// users see them (§2.1, third mitigation).
    bool moderation_enabled = false;
    /// Max comments returned per software query.
    std::size_t max_comments_per_query = 10;
    /// Behaviours are surfaced once this many raters reported them.
    int behavior_report_threshold = 2;
    /// How often the aggregation job runs (§3.2: 24 h). Exposed for the
    /// staleness-vs-cost ablation.
    util::Duration aggregation_period = core::kAggregationPeriod;
    /// Ablation switch: weigh votes by trust factor (§3.2) or not.
    bool trust_weighting = true;
    /// §5 future work: pseudonymous voting. When true, ratings are stored
    /// under a per-(user, software) pseudonym derived with `pseudonym_secret`
    /// instead of the account id — votes on different programs cannot be
    /// linked to each other or to an account (cf. the paper's idemix
    /// suggestion), while the one-vote-per-software property is preserved.
    /// The voter's trust factor is snapshotted into the vote, and comments
    /// lose meta-moderation (remarks need linkable authorship).
    bool pseudonymous_votes = false;
    std::string pseudonym_secret = "pisrep-pseudonym-secret";
    /// Worker threads for the aggregation compute fan-out. 0 keeps the
    /// job on the calling thread (deterministic single-threaded default
    /// for simulations; results are identical either way).
    std::size_t aggregation_workers = 0;
    /// Every Nth aggregation run is widened to a full sweep (drift
    /// guard); 0 disables the periodic guard. Per-server (and therefore
    /// per-shard in a cluster): shards of different sizes can sweep on
    /// different cadences.
    std::uint64_t aggregation_full_sweep_every =
        AggregationJob::kDefaultFullSweepEvery;
    /// Standing escape hatch: when true, every aggregation run is a full
    /// sweep. Per-shard config like the cadence above; default off keeps
    /// single-server output bit-identical.
    bool aggregation_force_full_sweep = false;
    /// Epoch-snapshot read path (DESIGN.md §14). When true the server
    /// publishes an immutable ScoreSnapshot at construction and after
    /// every aggregation run; QuerySoftware serves from it — no mutex, no
    /// store walk — whenever no content mutation happened since
    /// publication, and falls back to the live stores otherwise (so
    /// answers stay bit-identical to the historical behaviour either
    /// way). QuerySoftwareSnapshot additionally offers the always-snapshot
    /// thread-safe path for concurrent readers.
    bool snapshot_reads = true;
    /// How often the tiered storage engine's eviction schedule runs
    /// (storage::Database::TierTick: fault promotion, age/LRU demotion,
    /// cold-store GC) when the database is tiered and a loop is attached.
    /// 0 disables the schedule (TierTick can still be driven manually).
    util::Duration tier_tick_period = util::kHour;
    /// Upper bound on score rows pinned resident under the published
    /// snapshot; recomputed ids beyond it stay demotable (they fault back
    /// in on demand).
    std::size_t max_pinned_scores = 10000;
    /// Observability (optional, both null by default — instrumented paths
    /// then cost one branch each). Neither is owned; both must outlive the
    /// server. The registry feeds the `/metrics` portal endpoint, the
    /// tracer records RPC and aggregation spans.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    /// When > 0 (and a loop and registry are present), a metrics digest is
    /// logged at kInfo every period of *sim* time.
    util::Duration metrics_snapshot_period = 0;
    /// Signed trust plane (PR 10, DESIGN.md §16).
    struct TrustOptions {
      /// Append every accepted vote / remark / moderation decision /
      /// signed statement to the hash-chained audit log.
      bool audit_log = true;
      /// Sign a head checkpoint every N audit appends (0 disables).
      std::size_t checkpoint_every = 256;
      /// The server's audit-checkpoint signing keys. When left unset a
      /// deterministic pair is generated so single-server setups work out
      /// of the box; deployments pin their own.
      crypto::KeyPair audit_keys;
      /// Vendor and expert public keys pinned at startup; signed
      /// manifests and advisories verify against these (and only these).
      std::vector<crypto::Certificate> pinned_certificates;
    } trust;
  };

  /// The database must outlive the server. The loop is used for the daily
  /// aggregation schedule and may be null for purely manual operation.
  ReputationServer(storage::Database* db, net::EventLoop* loop,
                   Config config);

  // ------------------------------------------------------------------
  // Native API
  // ------------------------------------------------------------------

  /// Issues a registration puzzle (client must solve it before Register).
  /// A non-empty `forced_nonce` (cluster router broadcast) is used as the
  /// puzzle nonce instead of a random one — see FloodGuard::IssuePuzzle.
  Puzzle RequestPuzzle(std::string_view forced_nonce = {});

  /// Registers an account. On success the activation token travels via the
  /// simulated e-mail system (FetchMail), never via the RPC response.
  util::Status Register(std::string_view source, std::string_view username,
                        std::string_view password, std::string_view email,
                        std::string_view puzzle_nonce,
                        std::string_view puzzle_solution,
                        util::TimePoint now);

  /// Pops the pending activation mail for `email`, if any.
  util::Result<ActivationMail> FetchMail(std::string_view email);

  util::Status Activate(std::string_view username, std::string_view token);

  util::Result<std::string> Login(std::string_view username,
                                  std::string_view password,
                                  util::TimePoint now);

  /// Looks up everything known about a software id.
  util::Result<SoftwareInfo> QuerySoftware(std::string_view session,
                                           const core::SoftwareId& id);

  /// Lock-free QuerySoftware against the published epoch snapshot: safe to
  /// call from any thread concurrently with writers on the loop thread.
  /// Serves whatever epoch is current (answers may trail unaggregated
  /// mutations until the next publication — RCU semantics); fails
  /// kUnavailable before the first publication. Touches no mutex, no event
  /// loop and no store; the only allocation is the response copy.
  util::Result<SoftwareInfo> QuerySoftwareSnapshot(
      std::string_view session, const core::SoftwareId& id) const;

  /// The published snapshot, or null before the first publication. Readers
  /// hold the shared_ptr while reading and thereby pin their epoch.
  std::shared_ptr<const ScoreSnapshot> CurrentSnapshot() const {
    return snapshot_.Current();
  }

  /// Rebuilds and publishes the snapshot from current store contents.
  /// Called automatically at construction and after every aggregation
  /// run; exposed for benches that mutate stores directly. No-op when
  /// `snapshot_reads` is off.
  void PublishSnapshot();

  /// Runs one tiered-storage eviction pass now (the scheduled tick calls
  /// this; exposed for tests and manual operation). No-op when the
  /// database is untiered.
  void TierTickNow();

  /// Re-exports the pisrep_storage_* metrics (tier gauges, cold-store and
  /// compaction counters) from the database's current counters. Called
  /// automatically after every tier tick; no-op without a metrics
  /// registry.
  void UpdateStorageMetrics();

  /// Score rows currently pinned resident for the published snapshot.
  std::size_t pinned_score_count() const { return pinned_scores_.size(); }

  /// Calls answered by QuerySoftwareSnapshot (its own counter: the shared
  /// ServerStats are deliberately not touched from concurrent readers).
  std::uint64_t snapshot_queries() const {
    return snapshot_queries_.load(std::memory_order_relaxed);
  }

  /// Submits a rating (registering the software from `meta` if new).
  util::Status SubmitRating(std::string_view session,
                            const core::SoftwareMeta& meta, int score,
                            std::string_view comment,
                            core::BehaviorSet behaviors, util::TimePoint now);

  /// §3.1 run statistics: records `count` anonymous executions of
  /// `software`. The digest need not be registered yet; counters attach to
  /// the id and surface once the software is known.
  util::Status ReportExecutions(std::string_view session,
                                const core::SoftwareId& software,
                                std::int64_t count);

  /// Submits a remark on the comment `author` left on `software`; adjusts
  /// the author's trust factor per §3.2.
  util::Status SubmitRemark(std::string_view session, core::UserId author,
                            const core::SoftwareId& software, bool positive,
                            util::TimePoint now);

  util::Result<core::VendorScore> QueryVendor(std::string_view session,
                                              const core::VendorId& vendor);

  /// Accepts a vendor-signed software manifest (PR 10). The signature IS
  /// the authentication: it must verify against a pinned vendor-role key,
  /// no session required. Verified manifests annotate QuerySoftware
  /// answers with the (vendor_signed, signed_vendor) facts.
  util::Status SubmitManifest(const trust::SoftwareManifest& manifest);

  /// Accepts an expert-signed advisory (PR 10) and republishes it through
  /// the ordinary feed plumbing under a feed named after the expert —
  /// clients subscribed to the expert pick it up over QueryFeed,
  /// expert-flag included.
  util::Status PublishAdvisory(const trust::ExpertAdvisory& advisory);

  util::Status CreateFeed(std::string_view session, std::string_view name,
                          std::string_view description);
  util::Status PublishFeedEntry(std::string_view session,
                                const FeedEntry& entry);
  util::Result<FeedEntry> QueryFeed(std::string_view session,
                                    std::string_view feed,
                                    const core::SoftwareId& software);

  // ------------------------------------------------------------------
  // RPC adapter
  // ------------------------------------------------------------------

  /// Binds the XML RPC front-end at `address` on `network`.
  util::Status AttachRpc(net::SimNetwork* network, std::string address);

  /// Simulates a crash/shutdown: unbinds the RPC front-end (clients see
  /// timeouts, exactly as with a dead process) and cancels the periodic
  /// aggregation. Durable state lives in the database; in-memory sessions
  /// are lost, as a real restart would lose them. "Restarting" is opening
  /// a new ReputationServer over the same database (whose WAL replay —
  /// with salvage, see storage::Database::OpenOptions — is the recovery
  /// path), after which clients re-login.
  void Stop();

  // ------------------------------------------------------------------
  // Component access (administration, benches, tests)
  // ------------------------------------------------------------------

  AccountManager& accounts() { return accounts_; }
  crypto::TrustStore& trust_keys() { return trust_keys_; }
  trust::ManifestStore& manifests() { return manifests_; }
  /// The audit log, or null when Config::trust.audit_log is off.
  trust::AuditLog* audit() { return audit_.get(); }
  /// Public half of the audit-checkpoint signing key (what tools/audit
  /// verifies checkpoints against).
  const crypto::PublicKey& audit_public_key() const {
    return config_.trust.audit_keys.public_key;
  }
  VoteStore& votes() { return votes_; }
  SoftwareRegistry& registry() { return registry_; }
  FloodGuard& flood_guard() { return flood_; }
  ModerationQueue& moderation() { return moderation_; }
  FeedStore& feeds() { return feeds_; }
  AggregationJob& aggregation() { return aggregation_; }
  BootstrapImporter& bootstrap() { return bootstrap_; }
  const ServerStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  /// The RPC front-end while attached (null otherwise). Cluster shards
  /// register extra methods (heartbeats, replication control) and install
  /// the replication response gate through this.
  net::RpcServer* rpc_server() { return rpc_.get(); }
  /// The attached metrics registry, or null (drives the web portal's
  /// /metrics endpoint).
  obs::MetricsRegistry* metrics() const { return config_.metrics; }

  util::TimePoint Now() const;

  /// The unlinkable per-(user, software) pseudonym used when
  /// `pseudonymous_votes` is on. Always negative. Exposed for tests.
  core::UserId PseudonymFor(core::UserId user,
                            const core::SoftwareId& software) const;

 private:
  void RegisterRpcMethods();
  /// Swaps the snapshot pin set to this run's recomputed score rows.
  void RepinScores(const AggregationStats& stats);
  /// Appends to the audit log (no-op when disabled), writes the periodic
  /// signed checkpoint, and refreshes the pisrep_trust_* gauges. Every
  /// accepted mutation routes through here — the single audit choke point.
  void AuditAppend(std::string_view kind, std::string_view payload);
  /// Adds the verified-manifest facts to a QuerySoftware answer.
  void AnnotateManifest(SoftwareInfo* info) const;

  Config config_;
  storage::Database* db_;
  net::EventLoop* loop_;
  /// Declared before aggregation_ so the pool outlives the job that uses
  /// it. Null when aggregation_workers == 0.
  std::unique_ptr<util::ThreadPool> aggregation_pool_;
  AccountManager accounts_;
  SoftwareRegistry registry_;
  VoteStore votes_;
  FloodGuard flood_;
  ModerationQueue moderation_;
  FeedStore feeds_;
  /// Signed trust plane (PR 10): pinned vendor/expert keys, verified
  /// manifests, and the hash-chained audit log (null when disabled).
  crypto::TrustStore trust_keys_;
  trust::ManifestStore manifests_;
  std::unique_ptr<trust::AuditLog> audit_;
  AggregationJob aggregation_;
  BootstrapImporter bootstrap_;
  std::unordered_map<std::string, ActivationMail> mailbox_;
  std::unique_ptr<net::RpcServer> rpc_;
  ServerStats stats_;
  /// Epoch-snapshot read path (DESIGN.md §14). The publisher is the only
  /// cross-thread surface; everything feeding it runs on the loop thread.
  SnapshotPublisher snapshot_;
  std::uint64_t snapshot_epoch_ = 0;
  /// QuerySoftwareSnapshot call counter (relaxed: it is a statistic).
  mutable std::atomic<std::uint64_t> snapshot_queries_{0};
  obs::Gauge* snapshot_age_gauge_ = nullptr;
  obs::Gauge* snapshot_epoch_gauge_ = nullptr;
  obs::Counter* snapshot_hits_metric_ = nullptr;
  obs::Counter* snapshot_misses_metric_ = nullptr;
  obs::Counter* trust_sig_verified_metric_ = nullptr;
  obs::Counter* trust_sig_rejected_metric_ = nullptr;
  obs::Counter* trust_audit_appends_metric_ = nullptr;
  obs::Counter* trust_checkpoints_metric_ = nullptr;
  obs::Gauge* trust_chain_length_gauge_ = nullptr;
  obs::Gauge* trust_checkpoint_age_gauge_ = nullptr;
  std::unique_ptr<obs::SnapshotLogger> snapshot_logger_;
  /// Liveness token for the snapshot-logger schedule (same pattern as the
  /// aggregation job): Stop() resets it and queued ticks become no-ops.
  std::shared_ptr<int> snapshot_token_;
  /// Liveness token for the tier-tick schedule.
  std::shared_ptr<int> tier_token_;
  /// Score rows pinned under the current snapshot (swapped by RepinScores
  /// after each aggregation run).
  std::vector<core::SoftwareId> pinned_scores_;
  /// Counter baselines for the monotonic pisrep_storage_* exports (the
  /// registry's counters only increment; the database reports totals).
  storage::DatabaseTierStats storage_seen_;
  std::size_t compactions_seen_ = 0;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_REPUTATION_SERVER_H_
