#include "server/account_manager.h"

#include <algorithm>
#include <utility>

#include "util/hmac.h"
#include "util/logging.h"
#include "util/sha256.h"
#include "util/string_util.h"

namespace pisrep::server {

namespace {

using storage::Row;
using storage::SchemaBuilder;
using storage::Value;
using util::Result;
using util::Status;

std::string HashPassword(std::string_view salt, std::string_view password) {
  util::Sha256 hasher;
  hasher.Update(salt);
  hasher.Update(password);
  return hasher.Finish().ToHex();
}

}  // namespace

AccountManager::AccountManager(storage::Database* db, Config config)
    : db_(db), config_(std::move(config)), rng_(config_.seed) {
  if (!db_->HasTable("users")) {
    Status status = db_->CreateTable(SchemaBuilder("users")
                                         .Int("id")
                                         .Str("username")
                                         .Str("password_hash")
                                         .Str("password_salt")
                                         .Str("email_hash")
                                         .Int("joined_at")
                                         .Int("last_login")
                                         .Boolean("activated")
                                         .Real("trust_factor")
                                         .PrimaryKey("id")
                                         .Index("username")
                                         .Index("email_hash")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  if (!db_->HasTable("activations")) {
    Status status = db_->CreateTable(SchemaBuilder("activations")
                                         .Str("username")
                                         .Str("token")
                                         .PrimaryKey("username")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  users_ = db_->GetTable("users").value();
  activations_ = db_->GetTable("activations").value();
  // Resume the id sequence after recovery.
  users_->ForEach([this](const Row& row) {
    next_user_id_ = std::max(next_user_id_, row[0].AsInt() + 1);
  });
}

std::string AccountManager::HashEmail(std::string_view email) const {
  return util::HmacSha256Hex(config_.email_pepper,
                             util::ToLower(util::Trim(email)));
}

Result<std::string> AccountManager::Register(std::string_view username,
                                             std::string_view password,
                                             std::string_view email,
                                             util::TimePoint now) {
  std::string uname(util::Trim(username));
  if (uname.empty() || uname.size() > 64) {
    return Status::InvalidArgument("username must be 1..64 characters");
  }
  if (password.size() < 4) {
    return Status::InvalidArgument("password too short");
  }
  if (util::Trim(email).empty() ||
      email.find('@') == std::string_view::npos) {
    return Status::InvalidArgument("a valid e-mail address is required");
  }

  auto taken = users_->FindByIndex("username", Value::Str(uname));
  if (taken.ok() && !taken->empty()) {
    return Status::AlreadyExists("username taken: " + uname);
  }
  // §3.2: "it is possible to sign up only once per e-mail address."
  std::string email_hash = HashEmail(email);
  auto email_used = users_->FindByIndex("email_hash", Value::Str(email_hash));
  if (email_used.ok() && !email_used->empty()) {
    return Status::AlreadyExists("e-mail address already registered");
  }

  Account account;
  account.id = next_user_id_++;
  account.username = uname;
  account.password_salt = rng_.NextToken(16);
  account.password_hash = HashPassword(account.password_salt, password);
  account.email_hash = email_hash;
  account.joined_at = now;
  account.last_login = 0;
  account.activated = !config_.require_activation;
  account.trust_factor = core::kMinTrust;
  PISREP_RETURN_IF_ERROR(users_->Insert(RowFromAccount(account)));

  std::string token = MintToken("activation", uname, 24);
  if (config_.require_activation) {
    PISREP_RETURN_IF_ERROR(activations_->Upsert(
        Row{Value::Str(uname), Value::Str(token)}));
  }
  return token;
}

Status AccountManager::Activate(std::string_view username,
                                std::string_view token) {
  std::string uname(util::Trim(username));
  auto pending = activations_->Get(Value::Str(uname));
  if (!pending.ok()) {
    return Status::NotFound("no pending activation for " + uname);
  }
  if ((*pending)[1].AsStr() != token) {
    return Status::PermissionDenied("bad activation token");
  }
  PISREP_ASSIGN_OR_RETURN(Account account, GetAccountByUsername(uname));
  account.activated = true;
  PISREP_RETURN_IF_ERROR(users_->Upsert(RowFromAccount(account)));
  return activations_->Delete(Value::Str(uname));
}

Result<std::string> AccountManager::Login(std::string_view username,
                                          std::string_view password,
                                          util::TimePoint now) {
  auto account_result = GetAccountByUsername(username);
  if (!account_result.ok()) {
    // Uniform error to avoid a username oracle.
    return Status::Unauthenticated("bad credentials");
  }
  Account account = *std::move(account_result);
  if (HashPassword(account.password_salt, password) !=
      account.password_hash) {
    return Status::Unauthenticated("bad credentials");
  }
  if (!account.activated) {
    return Status::FailedPrecondition("account not activated");
  }
  account.last_login = now;
  PISREP_RETURN_IF_ERROR(users_->Upsert(RowFromAccount(account)));

  std::string session = MintToken("session", account.username, 32);
  sessions_[session] = account.id;
  PublishSessions();
  return session;
}

std::string AccountManager::MintToken(std::string_view purpose,
                                      std::string_view username,
                                      std::size_t rng_bytes) {
  if (!config_.deterministic_tokens) return rng_.NextToken(rng_bytes);
  return util::HmacSha256Hex(config_.email_pepper + "|" +
                                 std::string(purpose),
                             std::string(username));
}

Result<core::UserId> AccountManager::Authenticate(
    std::string_view session) const {
  auto it = sessions_.find(std::string(session));
  if (it == sessions_.end()) {
    return Status::Unauthenticated("invalid session");
  }
  return it->second;
}

void AccountManager::Logout(std::string_view session) {
  sessions_.erase(std::string(session));
  PublishSessions();
}

void AccountManager::PublishSessions() {
  shared_sessions_.Store(std::make_shared<const SessionTable>(sessions_));
}

Result<core::UserId> AccountManager::AuthenticateShared(
    std::string_view session) const {
  std::shared_ptr<const SessionTable> table = shared_sessions_.Load();
  if (table == nullptr) {
    return Status::Unauthenticated("invalid session");
  }
  auto it = table->find(std::string(session));
  if (it == table->end()) {
    return Status::Unauthenticated("invalid session");
  }
  return it->second;
}

Result<Account> AccountManager::GetAccount(core::UserId id) const {
  PISREP_ASSIGN_OR_RETURN(Row row, users_->Get(Value::Int(id)));
  return AccountFromRow(row);
}

Result<Account> AccountManager::GetAccountByUsername(
    std::string_view username) const {
  auto rows = users_->FindByIndex(
      "username", Value::Str(std::string(util::Trim(username))));
  if (!rows.ok() || rows->empty()) {
    return Status::NotFound("no such user: " + std::string(username));
  }
  return AccountFromRow((*rows)[0]);
}

double AccountManager::TrustFactor(core::UserId id) const {
  auto account = GetAccount(id);
  return account.ok() ? account->trust_factor : core::kMinTrust;
}

Result<double> AccountManager::ApplyRemark(core::UserId id, bool positive,
                                           util::TimePoint now) {
  PISREP_ASSIGN_OR_RETURN(Account account, GetAccount(id));
  core::TrustState state{account.trust_factor, account.joined_at};
  double updated = positive
                       ? core::TrustEngine::ApplyPositiveRemark(state, now)
                       : core::TrustEngine::ApplyNegativeRemark(state, now);
  bool changed = updated != account.trust_factor;
  account.trust_factor = updated;
  PISREP_RETURN_IF_ERROR(users_->Upsert(RowFromAccount(account)));
  if (changed) {
    // Capped remarks (weekly growth limit, floor/ceiling) that leave the
    // factor untouched do not dirty the account.
    trust_changes_.emplace_back(++trust_generation_, id);
  }
  return updated;
}

std::vector<core::UserId> AccountManager::TrustChangedSince(
    std::uint64_t after) const {
  std::vector<core::UserId> out;
  std::unordered_map<core::UserId, bool> seen;
  for (const auto& [generation, user] : trust_changes_) {
    if (generation <= after) continue;
    if (!seen.emplace(user, true).second) continue;
    out.push_back(user);
  }
  return out;
}

void AccountManager::PruneTrustChangesBefore(std::uint64_t upto) {
  trust_changes_.erase(
      std::remove_if(trust_changes_.begin(), trust_changes_.end(),
                     [upto](const std::pair<std::uint64_t, core::UserId>& e) {
                       return e.first <= upto;
                     }),
      trust_changes_.end());
}

std::unordered_map<core::UserId, double> AccountManager::AllTrustFactors()
    const {
  std::unordered_map<core::UserId, double> factors;
  factors.reserve(users_->size());
  users_->ForEach([&](const Row& row) {
    factors.emplace(row[0].AsInt(), row[8].AsReal());
  });
  return factors;
}

std::size_t AccountManager::AccountCount() const { return users_->size(); }

std::vector<core::UserId> AccountManager::AllUserIds() const {
  std::vector<core::UserId> ids;
  ids.reserve(users_->size());
  users_->ForEach([&](const Row& row) { ids.push_back(row[0].AsInt()); });
  return ids;
}

Result<Account> AccountManager::AccountFromRow(const Row& row) const {
  Account account;
  account.id = row[0].AsInt();
  account.username = row[1].AsStr();
  account.password_hash = row[2].AsStr();
  account.password_salt = row[3].AsStr();
  account.email_hash = row[4].AsStr();
  account.joined_at = row[5].AsInt();
  account.last_login = row[6].AsInt();
  account.activated = row[7].AsBool();
  account.trust_factor = row[8].AsReal();
  return account;
}

storage::Row AccountManager::RowFromAccount(const Account& account) const {
  return Row{
      Value::Int(account.id),
      Value::Str(account.username),
      Value::Str(account.password_hash),
      Value::Str(account.password_salt),
      Value::Str(account.email_hash),
      Value::Int(account.joined_at),
      Value::Int(account.last_login),
      Value::Boolean(account.activated),
      Value::Real(account.trust_factor),
  };
}

}  // namespace pisrep::server
