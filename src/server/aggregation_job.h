#ifndef PISREP_SERVER_AGGREGATION_JOB_H_
#define PISREP_SERVER_AGGREGATION_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/rating_aggregator.h"
#include "net/event_loop.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/account_manager.h"
#include "server/software_registry.h"
#include "server/vote_store.h"
#include "util/thread_pool.h"

namespace pisrep::server {

/// Instrumentation for one aggregation run (logged, exposed for tests and
/// the A4 benchmark).
struct AggregationStats {
  std::uint64_t run = 0;        ///< 1-based run counter
  bool full_sweep = false;      ///< true when every rated software was redone
  std::size_t candidates = 0;   ///< distinct software with >= 1 vote
  std::size_t recomputed = 0;   ///< software whose score was recomputed
  std::size_t skipped = 0;      ///< candidates - recomputed (clean entries)
  std::size_t dirty_votes = 0;  ///< dirtied by SubmitRating / SetApproved
  std::size_t dirty_trust = 0;  ///< dirtied via a voter's trust change
  std::size_t dirty_priors = 0; ///< dirtied by a bootstrap-prior write
  std::size_t vendors_recomputed = 0;
  std::size_t shards = 1;       ///< parallel chunks the compute fanned over
  std::int64_t wall_micros = 0; ///< real elapsed time (instrumentation only)
  /// Software whose score write landed this run, in write order. Filled
  /// only when AggregationJob::set_collect_recomputed is on (the tiered
  /// server pins these rows resident under the published snapshot);
  /// otherwise left empty so untiered runs pay nothing.
  std::vector<core::SoftwareId> recomputed_ids;

  /// The kInfo log line for this run. The metrics emission and the log
  /// derive from the same snapshot via this single formatter, so the two
  /// surfaces can never disagree (asserted in aggregation_incremental_test).
  std::string Summary() const;
};

/// The score recomputation job (§3.2: "Software ratings are calculated at
/// fixed points in time (currently once in every 24-hour period). During
/// this work users' trust factors are taken into consideration").
///
/// The paper recomputes everything every 24 h; at millions of votes that
/// makes the recompute cost — not the period — the scaling limit. This job
/// is therefore *incremental*: each run recomputes only the union of
///
///   - software touched by SubmitRating / SetApproved (VoteStore dirty set),
///   - software voted on (linkably) by accounts whose trust factor changed
///     since the previous run (AccountManager trust generation, mapped back
///     through VotesByUser; pseudonymous votes carry frozen weights and are
///     immune to trust changes),
///   - software whose bootstrap prior was rewritten (SoftwareRegistry),
///
/// and vendor scores only for vendors owning a recomputed title. A
/// `full_sweep` escape hatch, a forced full sweep every Nth run
/// (set_full_sweep_every), and an unconditional full sweep on a job's first
/// run (dirty state is in-memory and lost on restart) guard against drift.
///
/// Parallelism: per-software gather+aggregate is read-only over the
/// database and fans out across a util::ThreadPool when one is attached;
/// every write (PutScore / PutVendorScore) happens on the calling thread —
/// storage::Database stays single-writer, and results are byte-identical
/// to the sequential path because per-software arithmetic order never
/// changes.
class AggregationJob {
 public:
  /// Every Nth scheduled run is widened to a full sweep by default.
  static constexpr std::uint64_t kDefaultFullSweepEvery = 16;

  AggregationJob(SoftwareRegistry* registry, VoteStore* votes,
                 AccountManager* accounts);

  /// Ablation switch: when false, every vote weighs 1 regardless of the
  /// voter's trust factor (the §2.1 "unweighted" baseline).
  void set_trust_weighting(bool enabled) { trust_weighting_ = enabled; }
  bool trust_weighting() const { return trust_weighting_; }

  /// Attaches a worker pool for the compute fan-out (not owned; must
  /// outlive the job or be detached with nullptr). Null means compute
  /// inline on the calling thread.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Forces a full sweep every `n` runs; 0 disables the periodic guard
  /// (the first run and the explicit escape hatch still sweep fully).
  void set_full_sweep_every(std::uint64_t n) { full_sweep_every_ = n; }
  std::uint64_t full_sweep_every() const { return full_sweep_every_; }

  /// When on, each run records the ids it recomputed in
  /// AggregationStats::recomputed_ids (consumed by the tiered server's
  /// snapshot-pinning hook). Off by default — the vector can be large.
  void set_collect_recomputed(bool collect) { collect_recomputed_ = collect; }
  bool collect_recomputed() const { return collect_recomputed_; }

  /// Standing escape hatch: while set, *every* run (scheduled or manual)
  /// is a full sweep, regardless of `full_sweep_every`. This used to exist
  /// only as RunOnce's call-site argument; as configuration it can differ
  /// per shard in a cluster (a small shard can afford to always sweep,
  /// a big one cannot). Default off — output is bit-identical to before.
  void set_force_full_sweep(bool force) { force_full_sweep_ = force; }
  bool force_full_sweep() const { return force_full_sweep_; }

  /// Recomputes scores as of `now` — incrementally, unless `full_sweep`
  /// asks for the paper's recompute-everything behaviour. Returns the
  /// number of software entries whose score was recomputed.
  std::size_t RunOnce(util::TimePoint now, bool full_sweep = false);

  /// Stats for the most recent RunOnce.
  const AggregationStats& last_stats() const { return stats_; }

  /// Hook invoked on the calling thread at the end of every completed run
  /// (scheduled and manual), after all score/vendor writes have landed.
  /// The reputation server publishes its read-path snapshot from here, so
  /// publication can never observe a half-written run.
  void set_post_run(std::function<void(const AggregationStats&)> hook) {
    post_run_ = std::move(hook);
  }

  /// After each run the AggregationStats snapshot is folded into run /
  /// sweep / recompute counters and a run-duration histogram on `metrics`,
  /// and the run executes under an `aggregation.run` root span on
  /// `tracer`. Either may be null; both must outlive the job.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// Installs the job on the loop, first run after one period. The job
  /// reschedules itself after each run; CancelSchedule (or destroying the
  /// job) stops the chain. Calling Schedule again replaces any existing
  /// schedule. Scheduled runs are incremental (with the periodic forced
  /// full sweep).
  void Schedule(net::EventLoop* loop,
                util::Duration period = core::kAggregationPeriod);

  /// Stops the periodic schedule. Already-queued loop events become
  /// no-ops, so this is safe to call at any point (server shutdown).
  void CancelSchedule() { schedule_token_.reset(); }

  bool scheduled() const { return schedule_token_ != nullptr; }

  std::uint64_t runs() const { return runs_; }

 private:
  void ScheduleNext();
  /// Adds the freshly finished run's stats_ to the registry counters.
  void EmitStats();

  SoftwareRegistry* registry_;
  VoteStore* votes_;
  AccountManager* accounts_;
  bool trust_weighting_ = true;
  util::ThreadPool* pool_ = nullptr;
  std::uint64_t full_sweep_every_ = kDefaultFullSweepEvery;
  bool force_full_sweep_ = false;
  bool collect_recomputed_ = false;
  /// Trust generation already folded into scores by previous runs.
  std::uint64_t trust_generation_seen_ = 0;
  std::uint64_t runs_ = 0;
  AggregationStats stats_;
  std::function<void(const AggregationStats&)> post_run_;
  net::EventLoop* loop_ = nullptr;
  util::Duration period_ = 0;
  /// Liveness token: queued loop callbacks hold a weak_ptr and fire only
  /// while this schedule (and this job) is still alive.
  std::shared_ptr<int> schedule_token_;

  obs::Tracer* tracer_ = nullptr;
  obs::Counter* runs_metric_ = nullptr;
  obs::Counter* full_sweeps_metric_ = nullptr;
  obs::Counter* recomputed_metric_ = nullptr;
  obs::Counter* skipped_metric_ = nullptr;
  obs::Counter* dirty_votes_metric_ = nullptr;
  obs::Counter* dirty_trust_metric_ = nullptr;
  obs::Counter* dirty_priors_metric_ = nullptr;
  obs::Counter* vendors_metric_ = nullptr;
  obs::Histogram* run_micros_ = nullptr;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_AGGREGATION_JOB_H_
