#ifndef PISREP_SERVER_AGGREGATION_JOB_H_
#define PISREP_SERVER_AGGREGATION_JOB_H_

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "core/rating_aggregator.h"
#include "net/event_loop.h"
#include "server/account_manager.h"
#include "server/software_registry.h"
#include "server/vote_store.h"

namespace pisrep::server {

/// The daily score recomputation (§3.2: "Software ratings are calculated at
/// fixed points in time (currently once in every 24-hour period). During
/// this work users' trust factors are taken into consideration").
///
/// Each run:
///   1. for every rated software: gathers votes, weights each by the
///      voter's *current* trust factor, blends in any bootstrap prior, and
///      stores the SoftwareScore;
///   2. for every vendor with scored software: stores the vendor mean.
class AggregationJob {
 public:
  AggregationJob(SoftwareRegistry* registry, VoteStore* votes,
                 AccountManager* accounts);

  /// Ablation switch: when false, every vote weighs 1 regardless of the
  /// voter's trust factor (the §2.1 "unweighted" baseline).
  void set_trust_weighting(bool enabled) { trust_weighting_ = enabled; }
  bool trust_weighting() const { return trust_weighting_; }

  /// Recomputes all scores as of `now`. Returns the number of software
  /// entries whose score was recomputed.
  std::size_t RunOnce(util::TimePoint now);

  /// Installs the job on the loop, first run after one period. The job
  /// reschedules itself after each run; CancelSchedule (or destroying the
  /// job) stops the chain. Calling Schedule again replaces any existing
  /// schedule.
  void Schedule(net::EventLoop* loop,
                util::Duration period = core::kAggregationPeriod);

  /// Stops the periodic schedule. Already-queued loop events become
  /// no-ops, so this is safe to call at any point (server shutdown).
  void CancelSchedule() { schedule_token_.reset(); }

  bool scheduled() const { return schedule_token_ != nullptr; }

  std::uint64_t runs() const { return runs_; }

 private:
  void ScheduleNext();

  SoftwareRegistry* registry_;
  VoteStore* votes_;
  AccountManager* accounts_;
  bool trust_weighting_ = true;
  std::uint64_t runs_ = 0;
  net::EventLoop* loop_ = nullptr;
  util::Duration period_ = 0;
  /// Liveness token: queued loop callbacks hold a weak_ptr and fire only
  /// while this schedule (and this job) is still alive.
  std::shared_ptr<int> schedule_token_;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_AGGREGATION_JOB_H_
