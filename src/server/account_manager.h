#ifndef PISREP_SERVER_ACCOUNT_MANAGER_H_
#define PISREP_SERVER_ACCOUNT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/trust.h"
#include "core/types.h"
#include "storage/database.h"
#include "util/atomic_shared_ptr.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace pisrep::server {

/// Everything the server knows about an account. Deliberately minimal
/// (§2.2/§3.2): "The only data stored in the database about the user is a
/// username, hashed password and a hashed e-mail address, as well as
/// timestamps" — no IP addresses, no plaintext e-mail.
struct Account {
  core::UserId id = 0;
  std::string username;
  std::string password_hash;  ///< hex SHA-256(salt || password)
  std::string password_salt;
  std::string email_hash;     ///< hex HMAC-SHA256(pepper, lowercased e-mail)
  util::TimePoint joined_at = 0;
  util::TimePoint last_login = 0;
  bool activated = false;
  double trust_factor = core::kMinTrust;
};

/// Registration / authentication / trust bookkeeping.
///
/// Key privacy mechanism (§2.2): the e-mail address is stored only as an
/// HMAC under a server-side secret ("concatenating the e-mail address with a
/// secret string before calculating the hash, rendering brute force attack
/// ... computationally impossible as long as the secret string is kept
/// secret"). Uniqueness of the hash enforces one account per address.
class AccountManager {
 public:
  struct Config {
    /// Server-side secret mixed into every e-mail hash.
    std::string email_pepper = "pisrep-pepper";
    /// When false, accounts are active immediately (used by simulations
    /// that do not model mailboxes).
    bool require_activation = true;
    /// Seed for token generation.
    std::uint64_t seed = 0xacc0;
    /// Cluster mode: derive activation and session tokens from the pepper
    /// and username (HMAC) instead of the RNG stream. Every shard given
    /// the same pepper then mints the *same* tokens for the same user, so
    /// a token issued by any shard is valid on all of them — a shared-
    /// secret stand-in for a distributed session store, robust to one
    /// shard failing over and losing its RNG position. Leave false for a
    /// standalone server: unpredictable tokens are strictly safer.
    bool deterministic_tokens = false;
  };

  AccountManager(storage::Database* db, Config config);

  /// Creates an inactive account and returns the activation token that the
  /// (simulated) e-mail would carry. Fails when the username or the e-mail
  /// address is already taken.
  util::Result<std::string> Register(std::string_view username,
                                     std::string_view password,
                                     std::string_view email,
                                     util::TimePoint now);

  /// Completes registration using the token from the activation e-mail.
  util::Status Activate(std::string_view username, std::string_view token);

  /// Verifies credentials and returns a session token. Inactive accounts
  /// cannot log in.
  util::Result<std::string> Login(std::string_view username,
                                  std::string_view password,
                                  util::TimePoint now);

  /// Resolves a session token to the logged-in account id.
  util::Result<core::UserId> Authenticate(std::string_view session) const;

  /// Thread-safe session lookup against the copy-on-write session table
  /// republished by Login/Logout/DropSessions. The snapshot read path
  /// authenticates through this so concurrent readers never race the
  /// mutable map; answers may trail an in-flight Login by one publication,
  /// exactly like the score snapshot itself (DESIGN.md §14).
  util::Result<core::UserId> AuthenticateShared(
      std::string_view session) const;

  /// Invalidates a session token.
  void Logout(std::string_view session);

  /// Invalidates every session (what a process restart does to in-memory
  /// session state); accounts are untouched. Clients must log in again.
  void DropSessions() {
    sessions_.clear();
    PublishSessions();
  }

  util::Result<Account> GetAccount(core::UserId id) const;
  util::Result<Account> GetAccountByUsername(std::string_view username) const;

  /// Current trust factor (1 when the account is unknown, matching the
  /// weight a brand-new user would carry).
  double TrustFactor(core::UserId id) const;

  /// Every account's current trust factor in one table scan, without
  /// materializing Account rows. Bulk alternative to per-vote TrustFactor
  /// calls for the aggregation sweep: O(accounts) instead of O(votes) row
  /// copies, and the resulting map is safe to read from worker threads.
  std::unordered_map<core::UserId, double> AllTrustFactors() const;

  /// Applies a meta-moderation remark to the user's trust factor, honoring
  /// the §3.2 growth schedule. Returns the new factor.
  util::Result<double> ApplyRemark(core::UserId id, bool positive,
                                   util::TimePoint now);

  /// Monotonic counter bumped every time some account's trust factor
  /// actually changes. The aggregation job snapshots it to ask, next run,
  /// "whose weight moved since I last looked?".
  std::uint64_t trust_generation() const { return trust_generation_; }

  /// Accounts whose trust factor changed in generations (after, now],
  /// deduplicated, in change order. Pure query; see
  /// PruneTrustChangesBefore for reclaiming the log.
  std::vector<core::UserId> TrustChangedSince(std::uint64_t after) const;

  /// Drops change-log entries with generation <= upto (called by the
  /// consumer once a run has folded them in, bounding log growth).
  void PruneTrustChangesBefore(std::uint64_t upto);

  std::size_t AccountCount() const;
  std::vector<core::UserId> AllUserIds() const;

  /// The peppered e-mail hash, exposed for tests and audits.
  std::string HashEmail(std::string_view email) const;

 private:
  util::Result<Account> AccountFromRow(const storage::Row& row) const;
  storage::Row RowFromAccount(const Account& account) const;
  /// Token minting: RNG hex by default, HMAC-derived when
  /// `deterministic_tokens` is on (`purpose` domain-separates activation
  /// from session tokens).
  std::string MintToken(std::string_view purpose, std::string_view username,
                        std::size_t rng_bytes);
  /// Swaps a fresh immutable copy of sessions_ into shared_sessions_.
  /// Called by every session mutation; sessions are rare (one per login)
  /// next to queries, so the copy is cheap where it matters.
  void PublishSessions();

  storage::Database* db_;
  Config config_;
  util::Rng rng_;
  storage::Table* users_;
  storage::Table* activations_;
  std::unordered_map<std::string, core::UserId> sessions_;
  /// Immutable published view of sessions_ for lock-free concurrent
  /// readers (null until the first mutation publishes an empty table).
  using SessionTable = std::unordered_map<std::string, core::UserId>;
  util::AtomicSharedPtr<const SessionTable> shared_sessions_;
  core::UserId next_user_id_ = 1;
  /// Trust-change log for incremental aggregation: (generation, account).
  /// In-memory only — like sessions, it does not survive a restart, which
  /// is safe because the aggregation job's first run after construction is
  /// always a full sweep.
  std::uint64_t trust_generation_ = 0;
  std::vector<std::pair<std::uint64_t, core::UserId>> trust_changes_;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_ACCOUNT_MANAGER_H_
