#ifndef PISREP_SERVER_VOTE_STORE_H_
#define PISREP_SERVER_VOTE_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/types.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/status.h"

namespace pisrep::server {

/// A rating together with its moderation state.
struct StoredRating {
  core::RatingRecord record;
  bool approved = true;  ///< comment visible to other users
  /// Voter's trust factor snapshotted at vote time. 0 means "not
  /// snapshotted": the aggregator looks the live factor up by account id.
  /// Pseudonymous votes (whose user field is an unlinkable pseudonym) carry
  /// a positive snapshot instead.
  double trust_snapshot = 0.0;
};

/// A meta-moderation remark: `rater` judged the comment that `author` left
/// on `software` as helpful (positive) or not (§3.2: "positive for a good,
/// clear and useful comment or negative for a coloured, non-sense or
/// meaningless comment").
struct Remark {
  core::UserId rater = 0;
  core::UserId author = 0;
  core::SoftwareId software;
  bool positive = true;
  util::TimePoint submitted_at = 0;
};

/// Persistent store of votes, comments, and comment remarks.
///
/// Invariant (§2.1): "the server must ensure that each user only votes for
/// a software program exactly once" — enforced by the primary key
/// user:software. Similarly each user may remark on a given comment once.
class VoteStore {
 public:
  explicit VoteStore(storage::Database* db);

  /// Records a vote. `approved` is the initial moderation state (false when
  /// an administrator must review the comment first, §2.1 third approach).
  /// `trust_snapshot` > 0 freezes the voter's weight at vote time (used by
  /// pseudonymous voting, where the account id is not recoverable later).
  util::Status SubmitRating(const core::RatingRecord& record,
                            bool approved = true,
                            double trust_snapshot = 0.0);

  bool HasVoted(core::UserId user, const core::SoftwareId& software) const;

  /// All votes cast on `software` (regardless of comment approval — scores
  /// count every vote; moderation only gates comment visibility).
  std::vector<StoredRating> VotesForSoftware(
      const core::SoftwareId& software) const;

  /// Visits the scoring-relevant fields of every vote on `software` without
  /// materializing StoredRating (no comment/key string copies). This is the
  /// aggregation hot path: it runs once per vote per recompute, possibly
  /// from worker threads, so it must not allocate per vote.
  void ForEachVoteOn(
      const core::SoftwareId& software,
      const std::function<void(core::UserId user, int score,
                               double trust_snapshot)>& fn) const;

  /// All votes cast by `user`.
  std::vector<StoredRating> VotesByUser(core::UserId user) const;

  /// Approved comments for display, newest first, at most `limit`.
  std::vector<core::RatingRecord> VisibleComments(
      const core::SoftwareId& software, std::size_t limit) const;

  /// Flips the moderation state of the comment `author` left on `software`.
  util::Status SetApproved(core::UserId author,
                           const core::SoftwareId& software, bool approved);

  /// Records a remark; one per (rater, author, software). The caller is
  /// responsible for routing the trust-factor consequence to the account
  /// manager.
  util::Status SubmitRemark(const Remark& remark);

  bool HasRemarked(core::UserId rater, core::UserId author,
                   const core::SoftwareId& software) const;

  /// Net remark balance (positives − negatives) for a comment.
  std::int64_t RemarkBalance(core::UserId author,
                             const core::SoftwareId& software) const;

  /// Distinct software ids that have at least one vote, in first-vote
  /// order. Served from a cache maintained on every SubmitRating (and
  /// rebuilt from the table on recovery), not by scanning all votes.
  std::vector<core::SoftwareId> RatedSoftware() const;

  /// Number of distinct software ids with at least one vote. O(1).
  std::size_t RatedSoftwareCount() const { return rated_order_.size(); }

  /// Number of votes cast on `software`. O(1).
  std::size_t VoteCountFor(const core::SoftwareId& software) const;

  /// Incremental-aggregation support: software ids touched by
  /// SubmitRating / SetApproved since the last call, in first-touch order.
  /// Consuming clears the set.
  std::vector<core::SoftwareId> TakeDirtySoftware();

  /// Software ids currently marked dirty (not consumed).
  std::size_t DirtySoftwareCount() const { return dirty_order_.size(); }

  /// Monotonic counter bumped by every successful mutation that can change
  /// a QuerySoftware answer (new vote, comment moderation flip). Remarks
  /// deliberately do not bump it: their effect on answers arrives only via
  /// the next aggregation run. Pairs with
  /// SoftwareRegistry::content_generation for snapshot-freshness checks.
  std::uint64_t content_generation() const { return content_generation_; }

  std::size_t TotalVotes() const;
  std::size_t TotalRemarks() const;

  /// Wires accepted-vote / accepted-remark counters and the dirty-pending
  /// gauge into `metrics` (null detaches).
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  static std::string VoteKey(core::UserId user,
                             const core::SoftwareId& software);
  static std::string CommentKey(core::UserId author,
                                const core::SoftwareId& software);

  void MarkDirty(const std::string& software_hex);

  storage::Database* db_;
  /// Tier-aware facades (DESIGN.md §15): pass-throughs when the table is
  /// untiered, transparent hot/cold access when it is. Reads must go
  /// through them — the raw Table holds only the resident subset.
  storage::TieredTable* ratings_;
  storage::TieredTable* remarks_;
  /// Distinct voted software, insertion-ordered + counted. Maintained by
  /// SubmitRating; seeded from the ratings table in the constructor so a
  /// recovered database starts consistent.
  std::vector<std::string> rated_order_;
  std::unordered_map<std::string, std::size_t> votes_per_software_;
  /// Dirty set for incremental aggregation (hex ids, first-touch order).
  std::vector<std::string> dirty_order_;
  std::unordered_set<std::string> dirty_set_;
  std::uint64_t content_generation_ = 0;

  obs::Counter* votes_metric_ = nullptr;
  obs::Counter* remarks_metric_ = nullptr;
  obs::Gauge* dirty_gauge_ = nullptr;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_VOTE_STORE_H_
