#include "server/aggregation_job.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/logging.h"

namespace pisrep::server {

std::string AggregationStats::Summary() const {
  return "aggregation run " + std::to_string(run) +
         (full_sweep ? " (full sweep)" : " (incremental)") + ": recomputed " +
         std::to_string(recomputed) + "/" + std::to_string(candidates) +
         " software (dirty: votes=" + std::to_string(dirty_votes) +
         " trust=" + std::to_string(dirty_trust) +
         " priors=" + std::to_string(dirty_priors) + "), " +
         std::to_string(vendors_recomputed) +
         " vendors, shards=" + std::to_string(shards) + ", " +
         std::to_string(wall_micros) + "us";
}

AggregationJob::AggregationJob(SoftwareRegistry* registry, VoteStore* votes,
                               AccountManager* accounts)
    : registry_(registry), votes_(votes), accounts_(accounts) {}

void AggregationJob::AttachObservability(obs::MetricsRegistry* metrics,
                                         obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    runs_metric_ = nullptr;
    full_sweeps_metric_ = nullptr;
    recomputed_metric_ = nullptr;
    skipped_metric_ = nullptr;
    dirty_votes_metric_ = nullptr;
    dirty_trust_metric_ = nullptr;
    dirty_priors_metric_ = nullptr;
    vendors_metric_ = nullptr;
    run_micros_ = nullptr;
    return;
  }
  runs_metric_ = metrics->GetCounter("pisrep_server_aggregation_runs_total");
  full_sweeps_metric_ =
      metrics->GetCounter("pisrep_server_aggregation_full_sweeps_total");
  recomputed_metric_ =
      metrics->GetCounter("pisrep_server_aggregation_recomputed_total");
  skipped_metric_ =
      metrics->GetCounter("pisrep_server_aggregation_skipped_total");
  dirty_votes_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_server_aggregation_dirty_total", "kind",
                     "votes"));
  dirty_trust_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_server_aggregation_dirty_total", "kind",
                     "trust"));
  dirty_priors_metric_ = metrics->GetCounter(
      obs::WithLabel("pisrep_server_aggregation_dirty_total", "kind",
                     "priors"));
  vendors_metric_ = metrics->GetCounter(
      "pisrep_server_aggregation_vendors_recomputed_total");
  // Wall-clock-valued (instrumentation only): same caveat as
  // stats_.wall_micros, which it mirrors.
  run_micros_ = metrics->GetHistogram(
      "pisrep_server_aggregation_run_micros",
      {100.0, 1000.0, 10000.0, 100000.0, 1000000.0});
}

void AggregationJob::EmitStats() {
  // Every figure below comes from the same stats_ snapshot that Summary()
  // formats into the log line, so the two surfaces cannot diverge.
  if (runs_metric_ == nullptr) return;
  runs_metric_->Increment();
  if (stats_.full_sweep) full_sweeps_metric_->Increment();
  recomputed_metric_->Increment(stats_.recomputed);
  skipped_metric_->Increment(stats_.skipped);
  dirty_votes_metric_->Increment(stats_.dirty_votes);
  dirty_trust_metric_->Increment(stats_.dirty_trust);
  dirty_priors_metric_->Increment(stats_.dirty_priors);
  vendors_metric_->Increment(stats_.vendors_recomputed);
  run_micros_->Observe(static_cast<double>(stats_.wall_micros));
}

std::size_t AggregationJob::RunOnce(util::TimePoint now, bool full_sweep) {
  ++runs_;
  // Root span: aggregation runs are loop events, not RPC handlers, so
  // there is no inbound trace to continue.
  obs::Span span;
  if (tracer_ != nullptr) span = tracer_->StartSpan("aggregation.run");
  const std::int64_t started = util::MonotonicMicros();
  // The first run after construction is always a full sweep: dirty state is
  // in-memory and did not observe whatever happened before a restart.
  const bool sweep =
      full_sweep || force_full_sweep_ || runs_ == 1 ||
      (full_sweep_every_ != 0 && runs_ % full_sweep_every_ == 0);

  // Consume every dirty source even when sweeping, so the next incremental
  // run starts from a clean slate instead of redoing already-swept work.
  std::vector<core::SoftwareId> dirty_votes = votes_->TakeDirtySoftware();
  std::vector<core::SoftwareId> dirty_priors = registry_->TakeDirtyPriors();
  const std::uint64_t trust_generation = accounts_->trust_generation();
  std::vector<core::UserId> trust_changed =
      accounts_->TrustChangedSince(trust_generation_seen_);
  trust_generation_seen_ = trust_generation;
  accounts_->PruneTrustChangesBefore(trust_generation);

  stats_ = AggregationStats{};
  stats_.run = runs_;
  stats_.full_sweep = sweep;
  stats_.candidates = votes_->RatedSoftwareCount();
  stats_.dirty_votes = dirty_votes.size();
  stats_.dirty_priors = dirty_priors.size();

  // Target assembly. Incremental targets are deduplicated in a fixed order
  // (vote-dirty, then trust-dirty, then prior-dirty) so repeated runs over
  // the same dirt recompute in the same sequence. Ids without votes are
  // skipped: a full sweep would not touch them either (RatedSoftware), so
  // skipping keeps the two modes byte-identical.
  std::vector<core::SoftwareId> targets;
  if (sweep) {
    targets = votes_->RatedSoftware();
  } else {
    std::unordered_set<std::string> seen;
    auto add = [&](const core::SoftwareId& id) {
      if (votes_->VoteCountFor(id) == 0) return false;
      if (!seen.insert(id.ToHex()).second) return false;
      targets.push_back(id);
      return true;
    };
    for (const core::SoftwareId& id : dirty_votes) add(id);
    if (trust_weighting_) {
      // A trust change re-weighs only *linkable* votes; pseudonymous votes
      // carry a frozen snapshot and are immune (§3.2).
      for (core::UserId user : trust_changed) {
        for (const StoredRating& stored : votes_->VotesByUser(user)) {
          if (stored.trust_snapshot > 0.0) continue;
          if (add(stored.record.software)) ++stats_.dirty_trust;
        }
      }
    }
    for (const core::SoftwareId& id : dirty_priors) add(id);
  }

  // When the run will touch more votes than there are accounts, snapshot
  // every trust factor in one users-table scan up front. Per-vote
  // TrustFactor() copies a full account row (five string columns) per call;
  // under the pool those copies all contend on the allocator and eat the
  // parallel speedup. The map holds the same live values a per-vote lookup
  // would see (nothing mutates accounts mid-run), so output is unchanged.
  std::unordered_map<core::UserId, double> trust_cache;
  bool use_trust_cache = false;
  if (trust_weighting_) {
    std::size_t vote_work = 0;
    for (const core::SoftwareId& id : targets) {
      vote_work += votes_->VoteCountFor(id);
    }
    if (vote_work >= accounts_->AccountCount()) {
      trust_cache = accounts_->AllTrustFactors();
      use_trust_cache = true;
    }
  }

  // Phase 1 — pure compute, fanned out across the pool when one is
  // attached. Workers only *read* (votes, trust factors, priors) and write
  // disjoint slots of a pre-sized results vector; per-software arithmetic
  // order never changes, so parallel output is bit-identical to serial.
  auto compute = [&](const core::SoftwareId& software) {
    std::vector<core::WeightedVote> weighted;
    weighted.reserve(votes_->VoteCountFor(software) + 1);
    votes_->ForEachVoteOn(
        software, [&](core::UserId user, int score, double trust_snapshot) {
          // Pseudonymous votes carry their weight frozen at vote time;
          // linkable votes use the voter's *current* trust factor (§3.2).
          // The ablation switch flattens everything to 1.
          double weight = 1.0;
          if (trust_weighting_) {
            if (trust_snapshot > 0.0) {
              weight = trust_snapshot;
            } else if (use_trust_cache) {
              auto it = trust_cache.find(user);
              // A miss means the voter has no account row; fall through to
              // TrustFactor so the unknown-user default stays in one place.
              weight = it != trust_cache.end() ? it->second
                                               : accounts_->TrustFactor(user);
            } else {
              weight = accounts_->TrustFactor(user);
            }
          }
          weighted.push_back(
              core::WeightedVote{static_cast<double>(score), weight});
        });
    // Blend the bootstrap prior (§2.1 second approach) as synthetic weight:
    // imported scores behave like an existing body of votes, so a handful
    // of novice ratings become "one out of many, rather than the one and
    // only".
    auto [boot_score, boot_weight] = registry_->GetBootstrapPrior(software);
    if (boot_weight > 0.0) {
      weighted.push_back(core::WeightedVote{boot_score, boot_weight});
    }
    core::SoftwareScore score =
        core::RatingAggregator::Aggregate(software, weighted, now);
    if (boot_weight > 0.0) {
      // The prior is not a community vote; do not count it as one.
      score.vote_count -= 1;
    }
    return score;
  };

  std::vector<core::SoftwareScore> results(targets.size());
  if (pool_ != nullptr && targets.size() > 1) {
    std::size_t shards = std::min(targets.size(), pool_->size());
    std::size_t chunk = (targets.size() + shards - 1) / shards;
    stats_.shards = (targets.size() + chunk - 1) / chunk;
    pool_->ParallelFor(targets.size(),
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = compute(targets[i]);
                         }
                       });
  } else {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      results[i] = compute(targets[i]);
    }
  }

  // Phase 2 — writes, sequential on the calling thread in target order
  // (storage::Database is single-writer).
  std::size_t recomputed = 0;
  if (collect_recomputed_) stats_.recomputed_ids.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    util::Status put = registry_->PutScore(results[i]);
    if (!put.ok()) {
      PISREP_LOG(kWarning) << "aggregation: PutScore("
                           << targets[i].ToHex() << ") failed: " << put;
      continue;
    }
    ++recomputed;
    if (collect_recomputed_) stats_.recomputed_ids.push_back(targets[i]);
  }
  stats_.recomputed = recomputed;
  stats_.skipped = stats_.candidates - std::min(stats_.candidates,
                                                targets.size());

  // Vendor scores: mean over the vendor's scored software (§3.2). Both
  // modes gather through SoftwareByVendor so the floating-point summation
  // order is identical whether a vendor was reached by a sweep or by one
  // dirty title.
  std::vector<core::VendorId> vendors;
  std::unordered_set<std::string> vendor_seen;
  auto add_vendor = [&](const core::SoftwareId& software) {
    auto meta = registry_->GetSoftware(software);
    if (!meta.ok() || meta->company.empty()) return;
    if (!vendor_seen.insert(meta->company).second) return;
    vendors.push_back(meta->company);
  };
  if (sweep) {
    for (const core::SoftwareId& software : registry_->AllSoftware()) {
      add_vendor(software);
    }
  } else {
    for (const core::SoftwareId& software : targets) add_vendor(software);
    // A rewritten prior on a zero-vote title never enters `targets` (its
    // visible row was updated by PutBootstrapPrior directly), but the
    // vendor mean reads that row — the vendor is dirty even though no
    // software score was recomputed.
    for (const core::SoftwareId& software : dirty_priors) {
      add_vendor(software);
    }
  }
  for (const core::VendorId& vendor : vendors) {
    std::vector<core::SoftwareScore> scores;
    for (const core::SoftwareMeta& meta :
         registry_->SoftwareByVendor(vendor)) {
      auto score = registry_->GetScore(meta.id);
      if (score.ok()) scores.push_back(*score);
    }
    if (scores.empty()) continue;
    util::Status put = registry_->PutVendorScore(
        core::RatingAggregator::AggregateVendor(vendor, scores, now));
    if (!put.ok()) {
      PISREP_LOG(kWarning) << "aggregation: PutVendorScore(" << vendor
                           << ") failed: " << put;
      continue;
    }
    ++stats_.vendors_recomputed;
  }

  stats_.wall_micros = util::MonotonicMicros() - started;
  EmitStats();
  PISREP_LOG(kInfo) << stats_.Summary();
  span.Finish();
  // Post-run hook (snapshot publication): runs on the calling thread, once
  // every write of this run is in the stores, for scheduled and manual
  // runs alike.
  if (post_run_) post_run_(stats_);
  return recomputed;
}

void AggregationJob::Schedule(net::EventLoop* loop, util::Duration period) {
  CancelSchedule();
  loop_ = loop;
  period_ = period;
  schedule_token_ = std::make_shared<int>(0);
  ScheduleNext();
}

void AggregationJob::ScheduleNext() {
  // A self-rescheduling chain (not SchedulePeriodic): each link checks the
  // token, so cancellation — including destruction of the job — turns any
  // still-queued event into a no-op instead of a dangling call.
  loop_->ScheduleAfter(
      period_, [this, token = std::weak_ptr<int>(schedule_token_)] {
        if (token.expired()) return;
        RunOnce(loop_->Now());
        ScheduleNext();
      });
}

}  // namespace pisrep::server
