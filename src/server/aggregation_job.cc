#include "server/aggregation_job.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace pisrep::server {

AggregationJob::AggregationJob(SoftwareRegistry* registry, VoteStore* votes,
                               AccountManager* accounts)
    : registry_(registry), votes_(votes), accounts_(accounts) {}

std::size_t AggregationJob::RunOnce(util::TimePoint now) {
  ++runs_;
  std::size_t recomputed = 0;

  for (const core::SoftwareId& software : votes_->RatedSoftware()) {
    std::vector<core::WeightedVote> weighted;
    for (const StoredRating& stored : votes_->VotesForSoftware(software)) {
      // Pseudonymous votes carry their weight frozen at vote time; linkable
      // votes use the voter's *current* trust factor (§3.2). The ablation
      // switch flattens everything to 1.
      double weight = 1.0;
      if (trust_weighting_) {
        weight = stored.trust_snapshot > 0.0
                     ? stored.trust_snapshot
                     : accounts_->TrustFactor(stored.record.user);
      }
      weighted.push_back(core::WeightedVote{
          static_cast<double>(stored.record.score), weight});
    }
    // Blend the bootstrap prior (§2.1 second approach) as synthetic weight:
    // imported scores behave like an existing body of votes, so a handful
    // of novice ratings become "one out of many, rather than the one and
    // only".
    auto [boot_score, boot_weight] = registry_->GetBootstrapPrior(software);
    if (boot_weight > 0.0) {
      weighted.push_back(core::WeightedVote{boot_score, boot_weight});
    }
    core::SoftwareScore score =
        core::RatingAggregator::Aggregate(software, weighted, now);
    if (boot_weight > 0.0) {
      // The prior is not a community vote; do not count it as one.
      score.vote_count -= 1;
    }
    util::Status put = registry_->PutScore(score);
    if (!put.ok()) {
      PISREP_LOG(kWarning) << "aggregation: PutScore(" << software.ToHex()
                           << ") failed: " << put;
      continue;
    }
    ++recomputed;
  }

  // Vendor scores: mean over the vendor's scored software (§3.2).
  std::unordered_map<std::string, std::vector<core::SoftwareScore>>
      by_vendor;
  for (const core::SoftwareId& software : registry_->AllSoftware()) {
    auto meta = registry_->GetSoftware(software);
    if (!meta.ok() || meta->company.empty()) continue;
    auto score = registry_->GetScore(software);
    if (!score.ok()) continue;
    by_vendor[meta->company].push_back(*score);
  }
  for (const auto& [vendor, scores] : by_vendor) {
    util::Status put = registry_->PutVendorScore(
        core::RatingAggregator::AggregateVendor(vendor, scores, now));
    if (!put.ok()) {
      PISREP_LOG(kWarning) << "aggregation: PutVendorScore(" << vendor
                           << ") failed: " << put;
    }
  }
  return recomputed;
}

void AggregationJob::Schedule(net::EventLoop* loop, util::Duration period) {
  CancelSchedule();
  loop_ = loop;
  period_ = period;
  schedule_token_ = std::make_shared<int>(0);
  ScheduleNext();
}

void AggregationJob::ScheduleNext() {
  // A self-rescheduling chain (not SchedulePeriodic): each link checks the
  // token, so cancellation — including destruction of the job — turns any
  // still-queued event into a no-op instead of a dangling call.
  loop_->ScheduleAfter(
      period_, [this, token = std::weak_ptr<int>(schedule_token_)] {
        if (token.expired()) return;
        RunOnce(loop_->Now());
        ScheduleNext();
      });
}

}  // namespace pisrep::server
