#include "server/flood_guard.h"

#include "util/string_util.h"

namespace pisrep::server {

namespace {
using util::Status;
}  // namespace

FloodGuard::FloodGuard(Config config)
    : config_(config), rng_(config.seed) {}

void FloodGuard::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    puzzle_rejections_ = nullptr;
    registration_rejections_ = nullptr;
    vote_rejections_ = nullptr;
    return;
  }
  puzzle_rejections_ = metrics->GetCounter(
      obs::WithLabel("pisrep_server_flood_rejections_total", "kind",
                     "puzzle"));
  registration_rejections_ = metrics->GetCounter(
      obs::WithLabel("pisrep_server_flood_rejections_total", "kind",
                     "registration"));
  vote_rejections_ = metrics->GetCounter(
      obs::WithLabel("pisrep_server_flood_rejections_total", "kind",
                     "vote"));
}

Puzzle FloodGuard::IssuePuzzle(std::string_view forced_nonce) {
  Puzzle puzzle;
  puzzle.nonce =
      forced_nonce.empty() ? rng_.NextToken(16) : std::string(forced_nonce);
  puzzle.difficulty_bits = config_.registration_puzzle_bits;
  outstanding_puzzles_[puzzle.nonce] = puzzle.difficulty_bits;
  return puzzle;
}

Status FloodGuard::CheckPuzzle(std::string_view nonce,
                               std::string_view solution) {
  if (config_.registration_puzzle_bits == 0) return Status::Ok();
  auto it = outstanding_puzzles_.find(std::string(nonce));
  if (it == outstanding_puzzles_.end()) {
    if (puzzle_rejections_) puzzle_rejections_->Increment();
    return Status::PermissionDenied("unknown or already-used puzzle nonce");
  }
  int difficulty = it->second;
  if (!SolutionValid(nonce, solution, difficulty)) {
    if (puzzle_rejections_) puzzle_rejections_->Increment();
    return Status::PermissionDenied("puzzle solution does not verify");
  }
  outstanding_puzzles_.erase(it);
  return Status::Ok();
}

bool FloodGuard::SolutionValid(std::string_view nonce,
                               std::string_view solution,
                               int difficulty_bits) {
  return proto::PuzzleSolutionValid(nonce, solution, difficulty_bits);
}

std::string FloodGuard::SolvePuzzle(const Puzzle& puzzle,
                                    std::uint64_t* attempts) {
  return proto::SolvePuzzle(puzzle, attempts);
}

Status FloodGuard::CheckRegistrationAllowed(std::string_view source,
                                            util::TimePoint now) {
  if (config_.max_registrations_per_source_per_day == 0) return Status::Ok();
  auto it = registrations_.find(std::string(source));
  if (it == registrations_.end()) return Status::Ok();
  if (it->second.day != util::DayIndex(now)) return Status::Ok();
  if (it->second.count < config_.max_registrations_per_source_per_day) {
    return Status::Ok();
  }
  if (registration_rejections_) registration_rejections_->Increment();
  return Status::ResourceExhausted(
      "registration limit reached for this source today");
}

void FloodGuard::RecordRegistration(std::string_view source,
                                    util::TimePoint now) {
  DayCounter& counter = registrations_[std::string(source)];
  std::int64_t day = util::DayIndex(now);
  if (counter.day != day) {
    counter.day = day;
    counter.count = 0;
  }
  ++counter.count;
}

Status FloodGuard::CheckVoteAllowed(core::UserId user, util::TimePoint now) {
  if (config_.max_votes_per_user_per_day == 0) return Status::Ok();
  auto it = votes_.find(user);
  if (it == votes_.end()) return Status::Ok();
  if (it->second.day != util::DayIndex(now)) return Status::Ok();
  if (it->second.count < config_.max_votes_per_user_per_day) {
    return Status::Ok();
  }
  if (vote_rejections_) vote_rejections_->Increment();
  return Status::ResourceExhausted(util::StrFormat(
      "vote limit (%d/day) reached", config_.max_votes_per_user_per_day));
}

void FloodGuard::RecordVote(core::UserId user, util::TimePoint now) {
  DayCounter& counter = votes_[user];
  std::int64_t day = util::DayIndex(now);
  if (counter.day != day) {
    counter.day = day;
    counter.count = 0;
  }
  ++counter.count;
}

}  // namespace pisrep::server
