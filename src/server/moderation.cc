#include "server/moderation.h"

namespace pisrep::server {

namespace {
using util::Result;
using util::Status;
}  // namespace

void ModerationQueue::Enqueue(PendingComment comment) {
  queue_.push_back(std::move(comment));
}

Result<PendingComment> ModerationQueue::Peek() const {
  if (queue_.empty()) return Status::NotFound("moderation queue is empty");
  return queue_.front();
}

Status ModerationQueue::ApproveNext() {
  if (queue_.empty()) return Status::NotFound("moderation queue is empty");
  PendingComment comment = queue_.front();
  queue_.pop_front();
  ++approved_;
  Status status = votes_->SetApproved(comment.author, comment.software, true);
  if (status.ok() && observer_) observer_(comment, true);
  return status;
}

Status ModerationQueue::RejectNext() {
  if (queue_.empty()) return Status::NotFound("moderation queue is empty");
  PendingComment comment = queue_.front();
  queue_.pop_front();
  ++rejected_;
  if (observer_) observer_(comment, false);
  // The comment row stays unapproved; nothing to write.
  return Status::Ok();
}

}  // namespace pisrep::server
