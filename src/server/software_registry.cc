#include "server/software_registry.h"

#include <utility>

#include "util/hex.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::server {

namespace {

using core::SoftwareId;
using storage::Row;
using storage::SchemaBuilder;
using storage::Table;
using storage::Value;
using util::Result;
using util::Status;

Status EnsureTable(storage::Database* db, const storage::TableSchema& schema) {
  if (db->HasTable(schema.table_name())) return Status::Ok();
  return db->CreateTable(schema);
}

core::SoftwareMeta MetaFromRow(const Row& row) {
  core::SoftwareMeta meta;
  auto decoded = util::HexDecode(row[0].AsStr());
  PISREP_CHECK(decoded.ok() && decoded->size() == meta.id.bytes.size())
      << "corrupt software id in registry";
  for (std::size_t i = 0; i < meta.id.bytes.size(); ++i) {
    meta.id.bytes[i] = (*decoded)[i];
  }
  meta.file_name = row[1].AsStr();
  meta.file_size = row[2].AsInt();
  meta.company = row[3].AsStr();
  meta.version = row[4].AsStr();
  return meta;
}

}  // namespace

SoftwareRegistry::SoftwareRegistry(storage::Database* db) : db_(db) {
  Status status = EnsureTable(
      db_, SchemaBuilder("software")
               .Str("id")
               .Str("file_name")
               .Int("file_size")
               .Str("company")
               .Str("version")
               .PrimaryKey("id")
               .Index("company")
               .Build());
  PISREP_CHECK(status.ok()) << status.ToString();
  status = EnsureTable(db_, SchemaBuilder("software_scores")
                                .Str("id")
                                .Real("score")
                                .Int("vote_count")
                                .Real("weight_sum")
                                .Int("computed_at")
                                .Real("bootstrap_score")
                                .Real("bootstrap_weight")
                                .PrimaryKey("id")
                                .OrderedIndex("score")
                                .Build());
  PISREP_CHECK(status.ok()) << status.ToString();
  status = EnsureTable(db_, SchemaBuilder("vendor_scores")
                                .Str("vendor")
                                .Real("score")
                                .Int("software_count")
                                .Int("computed_at")
                                .PrimaryKey("vendor")
                                .Build());
  PISREP_CHECK(status.ok()) << status.ToString();
  status = EnsureTable(db_, SchemaBuilder("behavior_reports")
                                .Str("key")
                                .Str("software")
                                .Str("behavior")
                                .Int("report_count")
                                .PrimaryKey("key")
                                .Index("software")
                                .Build());
  PISREP_CHECK(status.ok()) << status.ToString();

  status = EnsureTable(db_, SchemaBuilder("run_stats")
                                .Str("id")
                                .Int("total_runs")
                                .PrimaryKey("id")
                                .Build());
  PISREP_CHECK(status.ok()) << status.ToString();

  software_ = db_->GetTiered("software").value();
  scores_ = db_->GetTiered("software_scores").value();
  vendor_scores_ = db_->GetTiered("vendor_scores").value();
  behavior_reports_ = db_->GetTiered("behavior_reports").value();
  run_stats_ = db_->GetTiered("run_stats").value();
}

Status SoftwareRegistry::RegisterSoftware(const core::SoftwareMeta& meta) {
  std::string id_hex = meta.id.ToHex();
  auto existing = software_->Get(Value::Str(id_hex));
  if (existing.ok()) {
    core::SoftwareMeta current = MetaFromRow(*existing);
    if (current == meta) return Status::Ok();
    return Status::AlreadyExists(
        "software " + id_hex + " registered with different metadata");
  }
  Status inserted = software_->Insert(Row{
      Value::Str(id_hex),
      Value::Str(meta.file_name),
      Value::Int(meta.file_size),
      Value::Str(meta.company),
      Value::Str(meta.version),
  });
  if (inserted.ok()) ++content_generation_;
  return inserted;
}

bool SoftwareRegistry::HasSoftware(const SoftwareId& id) const {
  return software_->Contains(Value::Str(id.ToHex()));
}

Result<core::SoftwareMeta> SoftwareRegistry::GetSoftware(
    const SoftwareId& id) const {
  PISREP_ASSIGN_OR_RETURN(Row row, software_->Get(Value::Str(id.ToHex())));
  return MetaFromRow(row);
}

std::vector<core::SoftwareMeta> SoftwareRegistry::SoftwareByVendor(
    const core::VendorId& vendor) const {
  auto rows = software_->FindByIndex("company", Value::Str(vendor));
  std::vector<core::SoftwareMeta> out;
  if (!rows.ok()) return out;
  out.reserve(rows->size());
  for (const Row& row : *rows) out.push_back(MetaFromRow(row));
  return out;
}

std::vector<SoftwareId> SoftwareRegistry::AllSoftware() const {
  std::vector<SoftwareId> out;
  out.reserve(software_->size());
  software_->ForEach([&](const Row& row) {
    out.push_back(MetaFromRow(row).id);
  });
  return out;
}

std::size_t SoftwareRegistry::SoftwareCount() const {
  return software_->size();
}

std::vector<core::SoftwareMeta> SoftwareRegistry::SearchByName(
    std::string_view query) const {
  std::string needle = util::ToLower(util::Trim(query));
  std::vector<core::SoftwareMeta> out;
  if (needle.empty()) return out;
  software_->ForEach([&](const Row& row) {
    if (util::ToLower(row[1].AsStr()).find(needle) != std::string::npos) {
      out.push_back(MetaFromRow(row));
    }
  });
  return out;
}

std::vector<core::VendorScore> SoftwareRegistry::AllVendorScores() const {
  std::vector<core::VendorScore> out;
  vendor_scores_->ForEach([&](const Row& row) {
    core::VendorScore score;
    score.vendor = row[0].AsStr();
    score.score = row[1].AsReal();
    score.software_count = static_cast<int>(row[2].AsInt());
    score.computed_at = row[3].AsInt();
    out.push_back(std::move(score));
  });
  return out;
}

Status SoftwareRegistry::PutScore(const core::SoftwareScore& score) {
  std::string id_hex = score.software.ToHex();
  auto [boot_score, boot_weight] = GetBootstrapPrior(score.software);
  Status put = scores_->Upsert(Row{
      Value::Str(id_hex),
      Value::Real(score.score),
      Value::Int(score.vote_count),
      Value::Real(score.weight_sum),
      Value::Int(score.computed_at),
      Value::Real(boot_score),
      Value::Real(boot_weight),
  });
  if (put.ok()) ++content_generation_;
  return put;
}

Result<core::SoftwareScore> SoftwareRegistry::GetScore(
    const SoftwareId& id) const {
  PISREP_ASSIGN_OR_RETURN(Row row, scores_->Get(Value::Str(id.ToHex())));
  core::SoftwareScore score;
  score.software = id;
  score.score = row[1].AsReal();
  score.vote_count = static_cast<int>(row[2].AsInt());
  score.weight_sum = row[3].AsReal();
  score.computed_at = row[4].AsInt();
  return score;
}

std::vector<core::SoftwareScore> SoftwareRegistry::TopScored(
    std::size_t limit, bool best) const {
  std::vector<core::SoftwareScore> out;
  // Ordered traversal; zero-vote rows (bootstrap-only priors) are filtered
  // out, so walk as far as needed.
  auto rows = scores_->ScanOrdered("score", /*ascending=*/!best,
                                   scores_->size());
  if (!rows.ok()) return out;
  for (const Row& row : *rows) {
    if (out.size() >= limit) break;
    if (row[2].AsInt() == 0) continue;
    core::SoftwareScore score;
    auto decoded = util::HexDecode(row[0].AsStr());
    if (!decoded.ok() || decoded->size() != score.software.bytes.size()) {
      continue;
    }
    for (std::size_t i = 0; i < decoded->size(); ++i) {
      score.software.bytes[i] = (*decoded)[i];
    }
    score.score = row[1].AsReal();
    score.vote_count = static_cast<int>(row[2].AsInt());
    score.weight_sum = row[3].AsReal();
    score.computed_at = row[4].AsInt();
    out.push_back(std::move(score));
  }
  return out;
}

Status SoftwareRegistry::PutBootstrapPrior(const SoftwareId& id,
                                           double score, double weight) {
  std::string id_hex = id.ToHex();
  auto existing = scores_->Get(Value::Str(id_hex));
  if (existing.ok()) {
    Row row = *existing;
    row[5] = Value::Real(score);
    row[6] = Value::Real(weight);
    PISREP_RETURN_IF_ERROR(scores_->Upsert(std::move(row)));
  } else {
    // No aggregated score yet: the prior *is* the visible score.
    PISREP_RETURN_IF_ERROR(scores_->Upsert(Row{
        Value::Str(id_hex),
        Value::Real(score),
        Value::Int(0),
        Value::Real(weight),
        Value::Int(0),
        Value::Real(score),
        Value::Real(weight),
    }));
  }
  if (dirty_prior_set_.insert(id_hex).second) {
    dirty_prior_order_.push_back(id_hex);
  }
  ++content_generation_;
  return Status::Ok();
}

std::pair<double, double> SoftwareRegistry::GetBootstrapPrior(
    const SoftwareId& id) const {
  auto row = scores_->Get(Value::Str(id.ToHex()));
  if (!row.ok()) return {0.0, 0.0};
  return {(*row)[5].AsReal(), (*row)[6].AsReal()};
}

std::vector<SoftwareId> SoftwareRegistry::TakeDirtyPriors() {
  std::vector<SoftwareId> out;
  out.reserve(dirty_prior_order_.size());
  for (const std::string& hex : dirty_prior_order_) {
    auto decoded = util::HexDecode(hex);
    SoftwareId id;
    PISREP_CHECK(decoded.ok() && decoded->size() == id.bytes.size())
        << "corrupt software id in dirty-prior set";
    for (std::size_t i = 0; i < id.bytes.size(); ++i) {
      id.bytes[i] = (*decoded)[i];
    }
    out.push_back(id);
  }
  dirty_prior_order_.clear();
  dirty_prior_set_.clear();
  return out;
}

Status SoftwareRegistry::PutVendorScore(const core::VendorScore& score) {
  Status put = vendor_scores_->Upsert(Row{
      Value::Str(score.vendor),
      Value::Real(score.score),
      Value::Int(score.software_count),
      Value::Int(score.computed_at),
  });
  if (put.ok()) ++content_generation_;
  return put;
}

Result<core::VendorScore> SoftwareRegistry::GetVendorScore(
    const core::VendorId& vendor) const {
  PISREP_ASSIGN_OR_RETURN(Row row, vendor_scores_->Get(Value::Str(vendor)));
  core::VendorScore score;
  score.vendor = vendor;
  score.score = row[1].AsReal();
  score.software_count = static_cast<int>(row[2].AsInt());
  score.computed_at = row[3].AsInt();
  return score;
}

Status SoftwareRegistry::ReportBehaviors(const SoftwareId& id,
                                         core::BehaviorSet behaviors,
                                         int count) {
  if (count <= 0) {
    return Status::InvalidArgument("behavior report count must be positive");
  }
  std::string id_hex = id.ToHex();
  for (core::Behavior b : core::AllBehaviors()) {
    if (!core::HasBehavior(behaviors, b)) continue;
    std::string key = id_hex + ":" + core::BehaviorName(b);
    auto existing = behavior_reports_->Get(Value::Str(key));
    std::int64_t existing_count = existing.ok() ? (*existing)[3].AsInt() : 0;
    PISREP_RETURN_IF_ERROR(behavior_reports_->Upsert(Row{
        Value::Str(key),
        Value::Str(id_hex),
        Value::Str(core::BehaviorName(b)),
        Value::Int(existing_count + count),
    }));
    ++content_generation_;
  }
  return Status::Ok();
}

core::BehaviorSet SoftwareRegistry::ReportedBehaviors(
    const SoftwareId& id, int min_reports) const {
  core::BehaviorSet set = core::kNoBehaviors;
  auto rows =
      behavior_reports_->FindByIndex("software", Value::Str(id.ToHex()));
  if (!rows.ok()) return set;
  for (const Row& row : *rows) {
    if (row[3].AsInt() < min_reports) continue;
    auto behavior = core::BehaviorFromName(row[2].AsStr());
    if (behavior.ok()) set = core::WithBehavior(set, *behavior);
  }
  return set;
}

Status SoftwareRegistry::AddRuns(const SoftwareId& id, std::int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument("run count must be positive");
  }
  std::string id_hex = id.ToHex();
  auto existing = run_stats_->Get(Value::Str(id_hex));
  std::int64_t total = existing.ok() ? (*existing)[1].AsInt() : 0;
  Status put = run_stats_->Upsert(
      Row{Value::Str(id_hex), Value::Int(total + count)});
  if (put.ok()) ++content_generation_;
  return put;
}

std::int64_t SoftwareRegistry::RunCount(const SoftwareId& id) const {
  auto row = run_stats_->Get(Value::Str(id.ToHex()));
  return row.ok() ? (*row)[1].AsInt() : 0;
}

std::vector<std::pair<SoftwareId, std::int64_t>>
SoftwareRegistry::AllRunCounts() const {
  std::vector<std::pair<SoftwareId, std::int64_t>> out;
  out.reserve(run_stats_->size());
  run_stats_->ForEach([&](const Row& row) {
    SoftwareId id;
    auto decoded = util::HexDecode(row[0].AsStr());
    PISREP_CHECK(decoded.ok() && decoded->size() == id.bytes.size())
        << "corrupt software id in run stats";
    for (std::size_t i = 0; i < id.bytes.size(); ++i) {
      id.bytes[i] = (*decoded)[i];
    }
    out.emplace_back(id, row[1].AsInt());
  });
  return out;
}

void SoftwareRegistry::PinScores(const std::vector<SoftwareId>& ids) {
  if (!scores_->tiered()) return;
  for (const SoftwareId& id : ids) {
    Status pinned = scores_->Pin(Value::Str(id.ToHex()));
    // kNotFound is expected (row deleted since the pin set was chosen);
    // anything else is a cold-store IO failure worth surfacing.
    if (!pinned.ok() && pinned.code() != util::StatusCode::kNotFound) {
      PISREP_LOG(kWarning) << "pin score " << id.ToHex()
                           << " failed: " << pinned;
    }
  }
}

void SoftwareRegistry::UnpinScores(const std::vector<SoftwareId>& ids) {
  if (!scores_->tiered()) return;
  for (const SoftwareId& id : ids) {
    Status unpinned = scores_->Unpin(Value::Str(id.ToHex()));
    if (!unpinned.ok() && unpinned.code() != util::StatusCode::kNotFound) {
      PISREP_LOG(kWarning) << "unpin score " << id.ToHex()
                           << " failed: " << unpinned;
    }
  }
}

std::int64_t SoftwareRegistry::BehaviorReportCount(
    const SoftwareId& id, core::Behavior behavior) const {
  std::string key = id.ToHex() + ":" + core::BehaviorName(behavior);
  auto row = behavior_reports_->Get(Value::Str(key));
  return row.ok() ? (*row)[3].AsInt() : 0;
}

}  // namespace pisrep::server
