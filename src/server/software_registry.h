#ifndef PISREP_SERVER_SOFTWARE_REGISTRY_H_
#define PISREP_SERVER_SOFTWARE_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/behavior.h"
#include "core/types.h"
#include "storage/database.h"
#include "util/status.h"

namespace pisrep::server {

/// Persistent registry of software executables, vendors, aggregated scores
/// and community behaviour reports (§3.3).
///
/// Backed by four tables in the embedded database:
///   software(id, file_name, file_size, company, version)
///   software_scores(id, score, vote_count, weight_sum, computed_at,
///                   bootstrap_score, bootstrap_weight)
///   vendor_scores(vendor, score, software_count, computed_at)
///   behavior_reports(key, software, behavior, report_count)
class SoftwareRegistry {
 public:
  /// Creates the backing tables if absent. The database must outlive the
  /// registry.
  explicit SoftwareRegistry(storage::Database* db);

  /// Registers an executable. Re-registering the same digest with identical
  /// metadata is a no-op; conflicting metadata for an existing digest fails
  /// (the digest covers the file content, so this indicates a client bug).
  util::Status RegisterSoftware(const core::SoftwareMeta& meta);

  bool HasSoftware(const core::SoftwareId& id) const;
  util::Result<core::SoftwareMeta> GetSoftware(
      const core::SoftwareId& id) const;

  /// All registered software produced by `vendor` (company-name match).
  std::vector<core::SoftwareMeta> SoftwareByVendor(
      const core::VendorId& vendor) const;

  /// All registered software ids.
  std::vector<core::SoftwareId> AllSoftware() const;
  std::size_t SoftwareCount() const;

  /// Case-insensitive substring search over file names (the §3 web
  /// interface's search box).
  std::vector<core::SoftwareMeta> SearchByName(std::string_view query) const;

  /// Every computed vendor score.
  std::vector<core::VendorScore> AllVendorScores() const;

  /// Aggregated score access (written by the aggregation job).
  util::Status PutScore(const core::SoftwareScore& score);
  util::Result<core::SoftwareScore> GetScore(const core::SoftwareId& id) const;

  /// The `limit` best (or worst) scored software with at least one vote,
  /// via the ordered score index — no full scan.
  std::vector<core::SoftwareScore> TopScored(std::size_t limit,
                                             bool best) const;

  /// Bootstrap prior (§2.1): a pre-seeded score with synthetic weight that
  /// the aggregation job blends with real votes.
  util::Status PutBootstrapPrior(const core::SoftwareId& id, double score,
                                 double weight);
  /// Returns {score, weight}; weight 0 when no prior exists.
  std::pair<double, double> GetBootstrapPrior(const core::SoftwareId& id) const;

  /// Software whose bootstrap prior changed since the last call, in
  /// change order (incremental-aggregation input). Consuming clears it.
  std::vector<core::SoftwareId> TakeDirtyPriors();

  std::size_t DirtyPriorCount() const { return dirty_prior_order_.size(); }

  util::Status PutVendorScore(const core::VendorScore& score);
  util::Result<core::VendorScore> GetVendorScore(
      const core::VendorId& vendor) const;

  /// Community behaviour reporting: each submitted rating may flag observed
  /// behaviours; reports are counted per (software, behavior). `count`
  /// lets high-confidence sources (e.g. the §5 runtime analyzer's "hard
  /// evidence") weigh as several independent reports.
  util::Status ReportBehaviors(const core::SoftwareId& id,
                               core::BehaviorSet behaviors, int count = 1);

  /// Behaviours reported by at least `min_reports` raters.
  core::BehaviorSet ReportedBehaviors(const core::SoftwareId& id,
                                      int min_reports = 1) const;

  /// §3.1 "run statistics": anonymous community execution counters. Clients
  /// batch-report how often they launched a program; the totals are shown
  /// alongside ratings ("how widely used is this?").
  util::Status AddRuns(const core::SoftwareId& id, std::int64_t count);
  std::int64_t RunCount(const core::SoftwareId& id) const;

  /// Every digest with a run counter, whether or not the software is
  /// registered (run stats attach to the bare digest). Snapshot
  /// materialization input.
  std::vector<std::pair<core::SoftwareId, std::int64_t>> AllRunCounts() const;

  /// Monotonic counter bumped by every successful mutation that can change
  /// a QuerySoftware or QueryVendor answer (metadata, scores, priors,
  /// behaviour reports, run counters). The snapshot read path compares it
  /// against the generation recorded at publication to decide whether the
  /// published snapshot still reflects current content.
  std::uint64_t content_generation() const { return content_generation_; }

  /// Number of reports for one behaviour.
  std::int64_t BehaviorReportCount(const core::SoftwareId& id,
                                   core::Behavior behavior) const;

  /// Pins the score rows of `ids` resident in the hot tier (DESIGN.md §15)
  /// — the live ScoreSnapshot references them, so they must not be
  /// demoted under it. Refcounted; every PinScores must be paired with an
  /// UnpinScores of the same ids. Unknown ids are skipped (a score row
  /// can be deleted by shard migration between aggregation runs). No-ops
  /// when the scores table is untiered.
  void PinScores(const std::vector<core::SoftwareId>& ids);
  void UnpinScores(const std::vector<core::SoftwareId>& ids);

 private:
  storage::Database* db_;
  /// Tier-aware facades (DESIGN.md §15): pass-throughs when the table is
  /// untiered, transparent hot/cold access when it is. Reads must go
  /// through them — the raw Table holds only the resident subset.
  storage::TieredTable* software_;
  storage::TieredTable* scores_;
  storage::TieredTable* vendor_scores_;
  storage::TieredTable* behavior_reports_;
  storage::TieredTable* run_stats_;
  /// Priors written since the aggregation job last consumed them
  /// (hex ids, first-touch order).
  std::vector<std::string> dirty_prior_order_;
  std::unordered_set<std::string> dirty_prior_set_;
  std::uint64_t content_generation_ = 0;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_SOFTWARE_REGISTRY_H_
