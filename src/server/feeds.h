#ifndef PISREP_SERVER_FEEDS_H_
#define PISREP_SERVER_FEEDS_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/behavior.h"
#include "core/types.h"
#include "proto/wire.h"
#include "storage/database.h"
#include "util/status.h"

namespace pisrep::server {

/// Feed entries travel over the client/server wire, so the struct lives in
/// proto/; the alias keeps the historical server-side spelling.
using FeedEntry = proto::FeedEntry;

/// §4.2 improvement: "allowing for instance organisations or groups of
/// technically skilled individuals to publish their software ratings and
/// other feedback within the reputation system", which users can subscribe
/// to instead of (or alongside) crowd scores.
class FeedStore {
 public:
  explicit FeedStore(storage::Database* db);

  /// Creates a feed owned by `publisher` (an account id).
  util::Status CreateFeed(std::string_view name, core::UserId publisher,
                          std::string_view description);

  bool HasFeed(std::string_view name) const;

  /// The feed's owner; only the owner may publish into it.
  util::Result<core::UserId> FeedPublisher(std::string_view name) const;

  /// Publishes or updates the feed's assessment of a software.
  util::Status Publish(const FeedEntry& entry, core::UserId publisher);

  /// The feed's assessment of one software, if any.
  util::Result<FeedEntry> Lookup(std::string_view feed,
                                 const core::SoftwareId& software) const;

  /// Every entry in a feed.
  std::vector<FeedEntry> Entries(std::string_view feed) const;

  std::vector<std::string> FeedNames() const;

 private:
  storage::Database* db_;
  storage::Table* feeds_;
  storage::Table* entries_;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_FEEDS_H_
