#include "server/reputation_server.h"

#include <algorithm>
#include <utility>

#include "util/hex.h"
#include "util/hmac.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "xml/xml_node.h"

namespace pisrep::server {

namespace {

using core::SoftwareId;
using util::Result;
using util::Status;
using xml::XmlNode;

Result<SoftwareId> SoftwareIdFromHex(std::string_view hex) {
  SoftwareId id;
  PISREP_ASSIGN_OR_RETURN(auto bytes, util::HexDecode(hex));
  if (bytes.size() != id.bytes.size()) {
    return Status::InvalidArgument("software id must be 40 hex characters");
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) id.bytes[i] = bytes[i];
  return id;
}

Result<core::SoftwareMeta> MetaFromXml(const XmlNode& node) {
  core::SoftwareMeta meta;
  PISREP_ASSIGN_OR_RETURN(std::string id_hex, node.Attribute("id"));
  PISREP_ASSIGN_OR_RETURN(meta.id, SoftwareIdFromHex(id_hex));
  meta.file_name = node.AttributeOr("file_name", "");
  auto size = util::ParseInt64(node.AttributeOr("file_size", "0"));
  meta.file_size = size.ok() ? *size : 0;
  meta.company = node.AttributeOr("company", "");
  meta.version = node.AttributeOr("version", "");
  return meta;
}

}  // namespace

ReputationServer::ReputationServer(storage::Database* db,
                                   net::EventLoop* loop, Config config)
    : config_(std::move(config)),
      db_(db),
      loop_(loop),
      accounts_(db, config_.accounts),
      registry_(db),
      votes_(db),
      flood_(config_.flood),
      moderation_(&votes_),
      feeds_(db),
      manifests_(db),
      aggregation_(&registry_, &votes_, &accounts_),
      bootstrap_(&registry_) {
  aggregation_.set_trust_weighting(config_.trust_weighting);
  aggregation_.set_full_sweep_every(config_.aggregation_full_sweep_every);
  aggregation_.set_force_full_sweep(config_.aggregation_force_full_sweep);
  if (config_.aggregation_workers > 0) {
    aggregation_pool_ =
        std::make_unique<util::ThreadPool>(config_.aggregation_workers);
    aggregation_.set_thread_pool(aggregation_pool_.get());
  }
  if (config_.metrics != nullptr || config_.tracer != nullptr) {
    votes_.AttachMetrics(config_.metrics);
    flood_.AttachMetrics(config_.metrics);
    aggregation_.AttachObservability(config_.metrics, config_.tracer);
    if (loop_ != nullptr && config_.metrics != nullptr) {
      loop_->AttachMetrics(config_.metrics);
    }
  }
  if (loop_ != nullptr) {
    aggregation_.Schedule(loop_, config_.aggregation_period);
  }
  // Signed trust plane (PR 10). A server without explicit audit keys gets
  // a deterministic pair so checkpoints always verify in tests and
  // single-node setups; real deployments pin their own through Config.
  if (config_.trust.audit_keys.public_key.n == 0) {
    util::Rng audit_rng(0x5ec5e701d);
    config_.trust.audit_keys = crypto::GenerateKeyPair(audit_rng);
  }
  for (const crypto::Certificate& cert : config_.trust.pinned_certificates) {
    trust_keys_.AddCertificate(cert);
  }
  if (config_.trust.audit_log) {
    audit_ = std::make_unique<trust::AuditLog>(db_);
  }
  moderation_.SetObserver([this](const PendingComment& comment,
                                 bool approved) {
    AuditAppend("moderation",
                std::string(approved ? "approve" : "reject") +
                    " author=" + std::to_string(comment.author) +
                    " software=" + comment.software.ToHex());
  });
  if (config_.metrics != nullptr) {
    snapshot_age_gauge_ =
        config_.metrics->GetGauge("pisrep_server_query_snapshot_age");
    snapshot_epoch_gauge_ =
        config_.metrics->GetGauge("pisrep_server_snapshot_epoch");
    snapshot_hits_metric_ =
        config_.metrics->GetCounter("pisrep_server_snapshot_hits_total");
    snapshot_misses_metric_ =
        config_.metrics->GetCounter("pisrep_server_snapshot_misses_total");
    trust_sig_verified_metric_ = config_.metrics->GetCounter(
        "pisrep_trust_signatures_verified_total");
    trust_sig_rejected_metric_ = config_.metrics->GetCounter(
        "pisrep_trust_signatures_rejected_total");
    trust_audit_appends_metric_ =
        config_.metrics->GetCounter("pisrep_trust_audit_appends_total");
    trust_checkpoints_metric_ =
        config_.metrics->GetCounter("pisrep_trust_checkpoints_total");
    trust_chain_length_gauge_ =
        config_.metrics->GetGauge("pisrep_trust_audit_chain_length");
    trust_checkpoint_age_gauge_ =
        config_.metrics->GetGauge("pisrep_trust_checkpoint_age");
    if (audit_ != nullptr && trust_chain_length_gauge_ != nullptr) {
      trust_chain_length_gauge_->Set(
          static_cast<std::int64_t>(audit_->head_index()));
    }
  }
  // Epoch publication (DESIGN.md §14): one snapshot over the recovered
  // database now, then one after every aggregation run — the post-run hook
  // fires after all of the run's writes, for scheduled and manual runs.
  // On a tiered database the hook also swaps the snapshot pin set so the
  // rows the published snapshot references stay resident (§15).
  if (db_->tier_enabled()) aggregation_.set_collect_recomputed(true);
  aggregation_.set_post_run([this](const AggregationStats& stats) {
    PublishSnapshot();
    RepinScores(stats);
  });
  PublishSnapshot();
  UpdateStorageMetrics();
  if (loop_ != nullptr && db_->tier_enabled() &&
      config_.tier_tick_period > 0) {
    tier_token_ = std::make_shared<int>(0);
    loop_->SchedulePeriodic(
        loop_->Now() + config_.tier_tick_period, config_.tier_tick_period,
        [this, token = std::weak_ptr<int>(tier_token_)] {
          if (token.expired()) return;
          TierTickNow();
        });
  }
  if (loop_ != nullptr && config_.metrics != nullptr &&
      config_.metrics_snapshot_period > 0) {
    snapshot_logger_ = std::make_unique<obs::SnapshotLogger>(
        config_.metrics, config_.metrics_snapshot_period);
    snapshot_token_ = std::make_shared<int>(0);
    // Tick at the snapshot period; the logger itself also rate-limits, so
    // a duplicate schedule could never double-log.
    loop_->SchedulePeriodic(
        loop_->Now() + config_.metrics_snapshot_period,
        config_.metrics_snapshot_period,
        [this, token = std::weak_ptr<int>(snapshot_token_)] {
          if (token.expired()) return;
          snapshot_logger_->Tick(loop_->Now());
        });
  }
}

util::TimePoint ReputationServer::Now() const {
  return loop_ != nullptr ? loop_->Now() : 0;
}

Puzzle ReputationServer::RequestPuzzle(std::string_view forced_nonce) {
  return flood_.IssuePuzzle(forced_nonce);
}

Status ReputationServer::Register(std::string_view source,
                                  std::string_view username,
                                  std::string_view password,
                                  std::string_view email,
                                  std::string_view puzzle_nonce,
                                  std::string_view puzzle_solution,
                                  util::TimePoint now) {
  Status allowed = flood_.CheckRegistrationAllowed(source, now);
  if (!allowed.ok()) {
    ++stats_.registrations_rejected;
    return allowed;
  }
  Status puzzle_ok = flood_.CheckPuzzle(puzzle_nonce, puzzle_solution);
  if (!puzzle_ok.ok()) {
    ++stats_.registrations_rejected;
    return puzzle_ok;
  }
  auto token = accounts_.Register(username, password, email, now);
  if (!token.ok()) {
    ++stats_.registrations_rejected;
    return token.status();
  }
  flood_.RecordRegistration(source, now);
  ++stats_.registrations;
  if (config_.accounts.require_activation) {
    // Deliver the activation token via the simulated e-mail system; it must
    // never travel back over the registration channel (that would let bots
    // skip the valid-mailbox requirement, §2.1).
    mailbox_[util::ToLower(util::Trim(email))] =
        ActivationMail{std::string(util::Trim(username)), *token};
  }
  return Status::Ok();
}

Result<ActivationMail> ReputationServer::FetchMail(std::string_view email) {
  auto it = mailbox_.find(util::ToLower(util::Trim(email)));
  if (it == mailbox_.end()) {
    return Status::NotFound("no mail for this address");
  }
  ActivationMail mail = it->second;
  mailbox_.erase(it);
  return mail;
}

Status ReputationServer::Activate(std::string_view username,
                                  std::string_view token) {
  return accounts_.Activate(username, token);
}

Result<std::string> ReputationServer::Login(std::string_view username,
                                            std::string_view password,
                                            util::TimePoint now) {
  auto session = accounts_.Login(username, password, now);
  if (session.ok()) ++stats_.logins;
  return session;
}

Result<SoftwareInfo> ReputationServer::QuerySoftware(
    std::string_view session, const SoftwareId& id) {
  PISREP_RETURN_IF_ERROR(accounts_.Authenticate(session).status());
  ++stats_.queries;

  if (config_.snapshot_reads) {
    std::shared_ptr<const ScoreSnapshot> snapshot = snapshot_.Current();
    if (snapshot != nullptr &&
        snapshot->registry_generation == registry_.content_generation() &&
        snapshot->votes_generation == votes_.content_generation()) {
      // Nothing changed since publication: the snapshot answer is
      // bit-identical to what the store walk below would produce, minus
      // the walk. Any mutation bumps a generation and forces the slow
      // path until the next publication re-arms the gate.
      ++stats_.snapshot_hits;
      if (snapshot_hits_metric_) snapshot_hits_metric_->Increment();
      if (snapshot_age_gauge_) {
        snapshot_age_gauge_->Set(Now() - snapshot->published_at);
      }
      SoftwareInfo info = LookupSnapshotInfo(*snapshot, id);
      AnnotateManifest(&info);
      return info;
    }
    ++stats_.snapshot_misses;
    if (snapshot_misses_metric_) snapshot_misses_metric_->Increment();
  }

  SoftwareInfo info;
  // Run statistics attach to the digest and exist even before the first
  // rating registers the software.
  info.run_count = registry_.RunCount(id);
  auto meta = registry_.GetSoftware(id);
  if (!meta.ok()) {
    info.meta.id = id;
    info.known = false;
    AnnotateManifest(&info);
    return info;
  }
  info.meta = *meta;
  info.known = true;
  auto score = registry_.GetScore(id);
  if (score.ok()) info.score = *score;
  if (!info.meta.company.empty()) {
    auto vendor = registry_.GetVendorScore(info.meta.company);
    if (vendor.ok()) info.vendor_score = *vendor;
  }
  info.reported_behaviors =
      registry_.ReportedBehaviors(id, config_.behavior_report_threshold);
  info.comments = votes_.VisibleComments(id, config_.max_comments_per_query);
  AnnotateManifest(&info);
  return info;
}

Result<SoftwareInfo> ReputationServer::QuerySoftwareSnapshot(
    std::string_view session, const SoftwareId& id) const {
  // Lock-free from the first instruction: the COW session table and the
  // published snapshot are both read through one acquire load each, and
  // the snapshot shared_ptr pins the epoch for the whole read.
  PISREP_RETURN_IF_ERROR(accounts_.AuthenticateShared(session).status());
  std::shared_ptr<const ScoreSnapshot> snapshot = snapshot_.Current();
  if (snapshot == nullptr) {
    return util::Status::Unavailable("no score snapshot published");
  }
  snapshot_queries_.fetch_add(1, std::memory_order_relaxed);
  if (snapshot_hits_metric_) snapshot_hits_metric_->Increment();
  SoftwareInfo info = LookupSnapshotInfo(*snapshot, id);
  AnnotateManifest(&info);
  return info;
}

void ReputationServer::PublishSnapshot() {
  if (!config_.snapshot_reads) return;
  SnapshotBuildOptions options;
  options.max_comments_per_query = config_.max_comments_per_query;
  options.behavior_report_threshold = config_.behavior_report_threshold;
  std::shared_ptr<const ScoreSnapshot> snapshot = BuildScoreSnapshot(
      registry_, votes_, options, ++snapshot_epoch_, Now());
  snapshot_.Publish(snapshot);
  if (snapshot_epoch_gauge_) {
    snapshot_epoch_gauge_->Set(static_cast<std::int64_t>(snapshot->epoch));
  }
  if (snapshot_age_gauge_) snapshot_age_gauge_->Set(0);
}

void ReputationServer::TierTickNow() {
  if (!db_->tier_enabled()) return;
  Status ticked = db_->TierTick(Now());
  if (!ticked.ok()) {
    PISREP_LOG(kWarning) << "tier tick failed: " << ticked;
  }
  UpdateStorageMetrics();
}

void ReputationServer::RepinScores(const AggregationStats& stats) {
  if (!db_->tier_enabled()) return;
  registry_.UnpinScores(pinned_scores_);
  pinned_scores_ = stats.recomputed_ids;
  if (pinned_scores_.size() > config_.max_pinned_scores) {
    pinned_scores_.resize(config_.max_pinned_scores);
  }
  registry_.PinScores(pinned_scores_);
}

void ReputationServer::UpdateStorageMetrics() {
  if (config_.metrics == nullptr) return;
  obs::MetricsRegistry* metrics = config_.metrics;
  // WAL compaction counters exist for every durable database, tiered or
  // not (the seed of the pisrep_storage_* family).
  metrics->GetGauge("pisrep_storage_wal_frames_since_compaction")
      ->Set(static_cast<std::int64_t>(db_->FramesSinceCompaction()));
  std::size_t compactions = db_->compactions();
  metrics->GetCounter("pisrep_storage_compactions_total")
      ->Increment(compactions - compactions_seen_);
  compactions_seen_ = compactions;
  if (!db_->tier_enabled()) return;
  storage::DatabaseTierStats now = db_->TierStats();
  metrics->GetGauge("pisrep_storage_hot_rows")
      ->Set(static_cast<std::int64_t>(now.hot_rows));
  metrics->GetGauge("pisrep_storage_cold_rows")
      ->Set(static_cast<std::int64_t>(now.cold_rows));
  metrics->GetGauge("pisrep_storage_pinned_rows")
      ->Set(static_cast<std::int64_t>(now.pinned_rows));
  metrics->GetGauge("pisrep_storage_resident_bytes")
      ->Set(static_cast<std::int64_t>(now.resident_bytes));
  metrics->GetGauge("pisrep_storage_cold_file_bytes")
      ->Set(static_cast<std::int64_t>(now.cold_file_bytes));
  metrics->GetGauge("pisrep_storage_cold_dead_bytes")
      ->Set(static_cast<std::int64_t>(now.cold_dead_bytes));
  metrics->GetCounter("pisrep_storage_hits_total")
      ->Increment(now.hits - storage_seen_.hits);
  metrics->GetCounter("pisrep_storage_faults_total")
      ->Increment(now.faults - storage_seen_.faults);
  metrics->GetCounter("pisrep_storage_promotions_total")
      ->Increment(now.promotions - storage_seen_.promotions);
  metrics->GetCounter("pisrep_storage_demotions_total")
      ->Increment(now.demotions - storage_seen_.demotions);
  metrics->GetCounter("pisrep_storage_cold_reads_total")
      ->Increment(now.cold_reads - storage_seen_.cold_reads);
  metrics->GetCounter("pisrep_storage_cold_appends_total")
      ->Increment(now.cold_appends - storage_seen_.cold_appends);
  metrics->GetCounter("pisrep_storage_gc_runs_total")
      ->Increment(now.gc_runs - storage_seen_.gc_runs);
  metrics->GetCounter("pisrep_storage_gc_reclaimed_bytes_total")
      ->Increment(now.gc_reclaimed_bytes - storage_seen_.gc_reclaimed_bytes);
  storage_seen_ = now;
}

void ReputationServer::AuditAppend(std::string_view kind,
                                   std::string_view payload) {
  if (audit_ == nullptr) return;
  auto entry = audit_->Append(kind, payload, Now());
  if (!entry.ok()) {
    PISREP_LOG(kWarning) << "audit append failed: " << entry.status();
    return;
  }
  if (trust_audit_appends_metric_) trust_audit_appends_metric_->Increment();
  if (config_.trust.checkpoint_every > 0 &&
      entry->index % config_.trust.checkpoint_every == 0) {
    Status checkpointed = audit_->WriteCheckpoint(
        config_.trust.audit_keys.private_key, Now());
    if (!checkpointed.ok()) {
      PISREP_LOG(kWarning) << "audit checkpoint failed: " << checkpointed;
    } else if (trust_checkpoints_metric_) {
      trust_checkpoints_metric_->Increment();
    }
  }
  if (trust_chain_length_gauge_) {
    trust_chain_length_gauge_->Set(
        static_cast<std::int64_t>(audit_->head_index()));
  }
  if (trust_checkpoint_age_gauge_) {
    // Age in entries, not wall time: how much history the next checkpoint
    // has yet to pin (deterministic under simulated clocks).
    trust_checkpoint_age_gauge_->Set(static_cast<std::int64_t>(
        audit_->head_index() - audit_->last_checkpoint_index()));
  }
}

void ReputationServer::AnnotateManifest(SoftwareInfo* info) const {
  auto index = manifests_.Snapshot();
  if (index == nullptr) return;
  auto it = index->find(info->meta.id);
  if (it == index->end()) return;
  info->vendor_signed = true;
  info->signed_vendor = it->second.vendor;
}

Status ReputationServer::SubmitManifest(
    const trust::SoftwareManifest& manifest) {
  if (!trust::VerifyManifest(trust_keys_, manifest)) {
    ++stats_.signatures_rejected;
    if (trust_sig_rejected_metric_) trust_sig_rejected_metric_->Increment();
    return Status::PermissionDenied(
        "manifest signature does not verify against a pinned vendor key");
  }
  if (trust_sig_verified_metric_) trust_sig_verified_metric_->Increment();
  PISREP_RETURN_IF_ERROR(manifests_.Put(manifest, Now()));
  ++stats_.manifests_accepted;
  AuditAppend("manifest", "vendor=" + manifest.vendor +
                              " software=" + manifest.software.ToHex() +
                              " version=" + manifest.version);
  return Status::Ok();
}

Status ReputationServer::PublishAdvisory(
    const trust::ExpertAdvisory& advisory) {
  if (!trust::VerifyAdvisory(trust_keys_, advisory)) {
    ++stats_.signatures_rejected;
    if (trust_sig_rejected_metric_) trust_sig_rejected_metric_->Increment();
    return Status::PermissionDenied(
        "advisory signature does not verify against a pinned expert key");
  }
  if (trust_sig_verified_metric_) trust_sig_verified_metric_->Increment();
  // Republishing through the ordinary feed plumbing: the expert's feed is
  // created on first advisory, owned by the reserved system publisher.
  if (!feeds_.HasFeed(advisory.expert)) {
    PISREP_RETURN_IF_ERROR(feeds_.CreateFeed(
        advisory.expert, kExpertPublisher, "signed expert advisories"));
  }
  FeedEntry entry;
  entry.feed = advisory.expert;
  entry.software = advisory.software;
  entry.score = advisory.score;
  entry.behaviors = advisory.behaviors;
  entry.note = advisory.note;
  entry.published_at = advisory.issued_at;
  entry.expert_flagged = advisory.flagged;
  PISREP_RETURN_IF_ERROR(feeds_.Publish(entry, kExpertPublisher));
  ++stats_.advisories_accepted;
  AuditAppend("advisory",
              "expert=" + advisory.expert +
                  " software=" + advisory.software.ToHex() +
                  " flagged=" + (advisory.flagged ? "1" : "0"));
  return Status::Ok();
}

Status ReputationServer::ReportExecutions(std::string_view session,
                                          const SoftwareId& software,
                                          std::int64_t count) {
  PISREP_RETURN_IF_ERROR(accounts_.Authenticate(session).status());
  return registry_.AddRuns(software, count);
}

Status ReputationServer::SubmitRating(std::string_view session,
                                      const core::SoftwareMeta& meta,
                                      int score, std::string_view comment,
                                      core::BehaviorSet behaviors,
                                      util::TimePoint now) {
  PISREP_ASSIGN_OR_RETURN(core::UserId user, accounts_.Authenticate(session));
  Status flood_ok = flood_.CheckVoteAllowed(user, now);
  if (!flood_ok.ok()) {
    ++stats_.votes_rejected_flood;
    return flood_ok;
  }
  PISREP_RETURN_IF_ERROR(registry_.RegisterSoftware(meta));

  core::RatingRecord record;
  record.user = user;
  record.software = meta.id;
  record.score = score;
  record.comment = std::string(comment);
  record.submitted_at = now;

  double trust_snapshot = 0.0;
  if (config_.pseudonymous_votes) {
    // §5 (idemix suggestion): store the vote under a pseudonym derived from
    // (user, software). The same user always maps to the same pseudonym for
    // one software — preserving the one-vote rule — but pseudonyms for
    // different software are unlinkable without the server secret, and the
    // ratings table never holds the account id. The trust factor is frozen
    // now, since it cannot be looked up later.
    record.user = PseudonymFor(user, meta.id);
    trust_snapshot = accounts_.TrustFactor(user);
  }

  bool approved = !config_.moderation_enabled || comment.empty();
  Status submitted = votes_.SubmitRating(record, approved, trust_snapshot);
  if (!submitted.ok()) {
    if (submitted.code() == util::StatusCode::kAlreadyExists) {
      ++stats_.votes_rejected_duplicate;
    }
    return submitted;
  }
  flood_.RecordVote(user, now);
  ++stats_.votes_accepted;
  // The audit payload names the stored author — the pseudonym under
  // pseudonymous voting, so the tamper-evident log never de-anonymizes.
  AuditAppend("vote", "user=" + std::to_string(record.user) +
                          " software=" + meta.id.ToHex() +
                          " score=" + std::to_string(score));

  if (!approved) {
    moderation_.Enqueue(PendingComment{user, meta.id, record.comment, now});
  }
  if (behaviors != core::kNoBehaviors) {
    PISREP_RETURN_IF_ERROR(registry_.ReportBehaviors(meta.id, behaviors));
  }
  return Status::Ok();
}

core::UserId ReputationServer::PseudonymFor(core::UserId user,
                                            const SoftwareId& software) const {
  util::Sha256Digest mac = util::HmacSha256(
      config_.pseudonym_secret,
      std::to_string(user) + ":" + software.ToHex());
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits = (bits << 8) | mac.bytes[i];
  // Negative ids mark pseudonyms; they can never collide with account ids.
  return -static_cast<core::UserId>(bits >> 1) - 1;
}

Status ReputationServer::SubmitRemark(std::string_view session,
                                      core::UserId author,
                                      const SoftwareId& software,
                                      bool positive, util::TimePoint now) {
  PISREP_ASSIGN_OR_RETURN(core::UserId rater, accounts_.Authenticate(session));
  if (author < 0) {
    // Pseudonymous comment: there is no account to credit or debit — the
    // unlinkability/meta-moderation trade-off of pseudonymous voting.
    return Status::FailedPrecondition(
        "cannot remark on a pseudonymous comment");
  }
  // Regression fix (PR 10): a rater created inside the current aggregation
  // window has never been through a trust recomputation — its §3.2 weight
  // is unearned, and a burst of day-zero sock-puppet accounts could swing
  // another user's trust factor before the first aggregation saw them.
  // The rejection is itself an audited trust decision.
  PISREP_ASSIGN_OR_RETURN(Account rater_account, accounts_.GetAccount(rater));
  if (now - rater_account.joined_at < config_.aggregation_period) {
    ++stats_.remarks_rejected_young;
    AuditAppend("remark-rejected",
                "rater=" + std::to_string(rater) +
                    " author=" + std::to_string(author) +
                    " reason=rater-younger-than-aggregation-window");
    return Status::FailedPrecondition(
        "rater account too new: trust factor not yet aggregated");
  }
  Remark remark;
  remark.rater = rater;
  remark.author = author;
  remark.software = software;
  remark.positive = positive;
  remark.submitted_at = now;
  PISREP_RETURN_IF_ERROR(votes_.SubmitRemark(remark));
  ++stats_.remarks_accepted;
  AuditAppend("remark", "rater=" + std::to_string(rater) +
                            " author=" + std::to_string(author) +
                            " software=" + software.ToHex() +
                            " positive=" + (positive ? "1" : "0"));
  // §3.2: remarks feed the comment author's trust factor.
  return accounts_.ApplyRemark(author, positive, now).status();
}

Result<core::VendorScore> ReputationServer::QueryVendor(
    std::string_view session, const core::VendorId& vendor) {
  PISREP_RETURN_IF_ERROR(accounts_.Authenticate(session).status());
  return registry_.GetVendorScore(vendor);
}

Status ReputationServer::CreateFeed(std::string_view session,
                                    std::string_view name,
                                    std::string_view description) {
  PISREP_ASSIGN_OR_RETURN(core::UserId user, accounts_.Authenticate(session));
  return feeds_.CreateFeed(name, user, description);
}

Status ReputationServer::PublishFeedEntry(std::string_view session,
                                          const FeedEntry& entry) {
  PISREP_ASSIGN_OR_RETURN(core::UserId user, accounts_.Authenticate(session));
  return feeds_.Publish(entry, user);
}

Result<FeedEntry> ReputationServer::QueryFeed(std::string_view session,
                                              std::string_view feed,
                                              const SoftwareId& software) {
  PISREP_RETURN_IF_ERROR(accounts_.Authenticate(session).status());
  return feeds_.Lookup(feed, software);
}

// ---------------------------------------------------------------------
// RPC adapter
// ---------------------------------------------------------------------

Status ReputationServer::AttachRpc(net::SimNetwork* network,
                                   std::string address) {
  rpc_ = std::make_unique<net::RpcServer>(network, std::move(address));
  rpc_->AttachObservability(config_.metrics, config_.tracer);
  PISREP_RETURN_IF_ERROR(rpc_->Start());
  RegisterRpcMethods();
  return Status::Ok();
}

void ReputationServer::Stop() {
  rpc_.reset();  // unbinds the address; in-flight requests go unanswered
  aggregation_.CancelSchedule();
  snapshot_token_.reset();  // queued snapshot ticks become no-ops
  tier_token_.reset();      // queued tier ticks become no-ops
  accounts_.DropSessions();
}

void ReputationServer::RegisterRpcMethods() {
  rpc_->RegisterMethod("RequestPuzzle", [this](const XmlNode& request)
                           -> Result<XmlNode> {
    Puzzle puzzle = RequestPuzzle(request.ChildText("nonce").value_or(""));
    XmlNode result("result");
    XmlNode& node = result.AddChild("puzzle");
    node.SetAttribute("nonce", puzzle.nonce);
    node.SetAttribute("bits", std::to_string(puzzle.difficulty_bits));
    return result;
  });

  rpc_->RegisterMethod(
      "Register", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string source,
                                request.ChildText("source"));
        PISREP_ASSIGN_OR_RETURN(std::string username,
                                request.ChildText("username"));
        PISREP_ASSIGN_OR_RETURN(std::string password,
                                request.ChildText("password"));
        PISREP_ASSIGN_OR_RETURN(std::string email,
                                request.ChildText("email"));
        std::string nonce = request.ChildText("nonce").value_or("");
        std::string solution = request.ChildText("solution").value_or("");
        PISREP_RETURN_IF_ERROR(Register(source, username, password, email,
                                        nonce, solution, Now()));
        return XmlNode("result");
      });

  rpc_->RegisterMethod(
      "Activate", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string username,
                                request.ChildText("username"));
        PISREP_ASSIGN_OR_RETURN(std::string token,
                                request.ChildText("token"));
        PISREP_RETURN_IF_ERROR(Activate(username, token));
        return XmlNode("result");
      });

  rpc_->RegisterMethod(
      "Login", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string username,
                                request.ChildText("username"));
        PISREP_ASSIGN_OR_RETURN(std::string password,
                                request.ChildText("password"));
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                Login(username, password, Now()));
        XmlNode result("result");
        result.AddTextChild("session", session);
        return result;
      });

  rpc_->RegisterMethod(
      "QuerySoftware", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                request.ChildText("session"));
        PISREP_ASSIGN_OR_RETURN(std::string id_hex, request.ChildText("id"));
        PISREP_ASSIGN_OR_RETURN(SoftwareId id, SoftwareIdFromHex(id_hex));
        PISREP_ASSIGN_OR_RETURN(SoftwareInfo info,
                                QuerySoftware(session, id));
        return proto::SoftwareInfoToXml(info);
      });

  rpc_->RegisterMethod(
      "SubmitRating", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                request.ChildText("session"));
        const XmlNode* software = request.FindChild("software");
        if (software == nullptr) {
          return Status::InvalidArgument("missing <software> element");
        }
        PISREP_ASSIGN_OR_RETURN(core::SoftwareMeta meta,
                                MetaFromXml(*software));
        PISREP_ASSIGN_OR_RETURN(std::int64_t score,
                                request.ChildInt("score"));
        std::string comment = request.ChildText("comment").value_or("");
        PISREP_ASSIGN_OR_RETURN(
            core::BehaviorSet behaviors,
            core::BehaviorSetFromString(
                request.ChildText("behaviors").value_or("")));
        PISREP_RETURN_IF_ERROR(SubmitRating(session, meta,
                                            static_cast<int>(score), comment,
                                            behaviors, Now()));
        return XmlNode("result");
      });

  rpc_->RegisterMethod(
      "ReportExecutions", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                request.ChildText("session"));
        PISREP_ASSIGN_OR_RETURN(std::string id_hex, request.ChildText("id"));
        PISREP_ASSIGN_OR_RETURN(SoftwareId id, SoftwareIdFromHex(id_hex));
        PISREP_ASSIGN_OR_RETURN(std::int64_t count,
                                request.ChildInt("count"));
        PISREP_RETURN_IF_ERROR(ReportExecutions(session, id, count));
        return XmlNode("result");
      });

  rpc_->RegisterMethod(
      "SubmitRemark", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                request.ChildText("session"));
        PISREP_ASSIGN_OR_RETURN(std::int64_t author,
                                request.ChildInt("author"));
        PISREP_ASSIGN_OR_RETURN(std::string id_hex, request.ChildText("id"));
        PISREP_ASSIGN_OR_RETURN(SoftwareId id, SoftwareIdFromHex(id_hex));
        PISREP_ASSIGN_OR_RETURN(std::int64_t positive,
                                request.ChildInt("positive"));
        PISREP_RETURN_IF_ERROR(
            SubmitRemark(session, author, id, positive != 0, Now()));
        return XmlNode("result");
      });

  rpc_->RegisterMethod(
      "QueryVendor", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                request.ChildText("session"));
        PISREP_ASSIGN_OR_RETURN(std::string vendor,
                                request.ChildText("vendor"));
        PISREP_ASSIGN_OR_RETURN(core::VendorScore score,
                                QueryVendor(session, vendor));
        XmlNode result("result");
        XmlNode& node = result.AddChild("vendor");
        node.SetAttribute("name", score.vendor);
        node.SetAttribute("score", util::StrFormat("%.6f", score.score));
        node.SetAttribute("count", std::to_string(score.software_count));
        return result;
      });

  rpc_->RegisterMethod(
      "QueryFeed", [this](const XmlNode& request) -> Result<XmlNode> {
        PISREP_ASSIGN_OR_RETURN(std::string session,
                                request.ChildText("session"));
        PISREP_ASSIGN_OR_RETURN(std::string feed, request.ChildText("feed"));
        PISREP_ASSIGN_OR_RETURN(std::string id_hex, request.ChildText("id"));
        PISREP_ASSIGN_OR_RETURN(SoftwareId id, SoftwareIdFromHex(id_hex));
        PISREP_ASSIGN_OR_RETURN(FeedEntry entry,
                                QueryFeed(session, feed, id));
        XmlNode result("result");
        result.AddChild(proto::FeedEntryToXml(entry));
        return result;
      });

  // Signed trust plane (PR 10). Like the replication-plane methods these
  // take no session: the pinned-key signature inside the payload IS the
  // authentication, and a forged one is rejected before any state changes.
  rpc_->RegisterMethod(
      "SubmitManifest", [this](const XmlNode& request) -> Result<XmlNode> {
        const XmlNode* node = request.FindChild("manifest");
        if (node == nullptr) {
          return Status::InvalidArgument("missing <manifest> element");
        }
        PISREP_ASSIGN_OR_RETURN(trust::SoftwareManifest manifest,
                                trust::ManifestFromXml(*node));
        PISREP_RETURN_IF_ERROR(SubmitManifest(manifest));
        return XmlNode("result");
      });

  rpc_->RegisterMethod(
      "PublishAdvisory", [this](const XmlNode& request) -> Result<XmlNode> {
        const XmlNode* node = request.FindChild("advisory");
        if (node == nullptr) {
          return Status::InvalidArgument("missing <advisory> element");
        }
        PISREP_ASSIGN_OR_RETURN(trust::ExpertAdvisory advisory,
                                trust::AdvisoryFromXml(*node));
        PISREP_RETURN_IF_ERROR(PublishAdvisory(advisory));
        return XmlNode("result");
      });

  // Audit-chain head for external monitors and the offline verifier's
  // remote mode. Public data: the head commits the history, it reveals
  // nothing about entry contents.
  rpc_->RegisterMethod(
      "QueryAuditHead", [this](const XmlNode&) -> Result<XmlNode> {
        if (audit_ == nullptr) {
          return Status::Unavailable("audit log disabled");
        }
        XmlNode result("result");
        result.SetAttribute("index", std::to_string(audit_->head_index()));
        result.SetAttribute("hash", audit_->head_hash());
        result.SetAttribute("checkpoints",
                            std::to_string(audit_->checkpoint_count()));
        result.SetAttribute(
            "checkpoint_index",
            std::to_string(audit_->last_checkpoint_index()));
        return result;
      });

  // Cluster-internal: the router pulls every vendor aggregate this shard
  // has published so it can rewrite vendor scores locally instead of
  // scattering per query. Unauthenticated like the replication-plane
  // methods — the payload is exactly the aggregates QueryVendor already
  // serves, with no per-user data. Vendors are emitted sorted by name so
  // the response bytes are deterministic regardless of map iteration
  // order (pinned by cluster_test).
  rpc_->RegisterMethod(
      "QueryVendorIndex", [this](const XmlNode&) -> Result<XmlNode> {
        std::shared_ptr<const ScoreSnapshot> snapshot = snapshot_.Current();
        if (snapshot == nullptr) {
          return Status::Unavailable("no score snapshot published");
        }
        std::vector<const core::VendorScore*> vendors;
        vendors.reserve(snapshot->by_vendor.size());
        for (const auto& [id, score] : snapshot->by_vendor) {
          vendors.push_back(&score);
        }
        std::sort(vendors.begin(), vendors.end(),
                  [](const core::VendorScore* a, const core::VendorScore* b) {
                    return a->vendor < b->vendor;
                  });
        XmlNode result("result");
        result.SetAttribute("epoch", std::to_string(snapshot->epoch));
        for (const core::VendorScore* score : vendors) {
          XmlNode& node = result.AddChild("vendor");
          node.SetAttribute("name", score->vendor);
          node.SetAttribute("score", util::StrFormat("%.6f", score->score));
          node.SetAttribute("count",
                            std::to_string(score->software_count));
          node.SetAttribute("computed_at",
                            std::to_string(score->computed_at));
        }
        return result;
      });
}

}  // namespace pisrep::server
