#include "server/bootstrap.h"

#include "util/hex.h"
#include "util/string_util.h"

namespace pisrep::server {

namespace {
using util::Result;
using util::Status;
}  // namespace

Result<std::size_t> BootstrapImporter::Import(
    const std::vector<BootstrapRecord>& records) {
  std::size_t imported = 0;
  for (const BootstrapRecord& record : records) {
    if (record.score < core::kMinRating || record.score > core::kMaxRating) {
      return Status::InvalidArgument(util::StrFormat(
          "bootstrap score %.2f outside [1, 10] for %s", record.score,
          record.meta.file_name.c_str()));
    }
    if (record.vote_count <= 0) {
      return Status::InvalidArgument("bootstrap record needs vote_count > 0");
    }
    PISREP_RETURN_IF_ERROR(registry_->RegisterSoftware(record.meta));
    PISREP_RETURN_IF_ERROR(registry_->PutBootstrapPrior(
        record.meta.id, record.score,
        static_cast<double>(record.vote_count)));
    ++imported;
  }
  return imported;
}

Result<std::size_t> BootstrapImporter::ImportCsv(std::string_view csv) {
  std::vector<BootstrapRecord> records;
  for (const std::string& raw_line : util::Split(csv, '\n')) {
    std::string_view line = util::Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields = util::Split(line, ',');
    if (fields.size() != 7) {
      return Status::InvalidArgument("bootstrap CSV line needs 7 fields: " +
                                     std::string(line));
    }
    BootstrapRecord record;
    PISREP_ASSIGN_OR_RETURN(auto digest_bytes, util::HexDecode(fields[0]));
    if (digest_bytes.size() != record.meta.id.bytes.size()) {
      return Status::InvalidArgument("bad digest length in: " +
                                     std::string(line));
    }
    for (std::size_t i = 0; i < digest_bytes.size(); ++i) {
      record.meta.id.bytes[i] = digest_bytes[i];
    }
    record.meta.file_name = fields[1];
    PISREP_ASSIGN_OR_RETURN(record.meta.file_size,
                            util::ParseInt64(fields[2]));
    record.meta.company = fields[3];
    record.meta.version = fields[4];
    PISREP_ASSIGN_OR_RETURN(record.score, util::ParseDouble(fields[5]));
    PISREP_ASSIGN_OR_RETURN(std::int64_t votes, util::ParseInt64(fields[6]));
    record.vote_count = static_cast<int>(votes);
    records.push_back(std::move(record));
  }
  return Import(records);
}

}  // namespace pisrep::server
