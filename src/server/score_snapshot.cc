#include "server/score_snapshot.h"

#include <utility>

#include "util/logging.h"

namespace pisrep::server {

proto::SoftwareInfo LookupSnapshotInfo(const ScoreSnapshot& snapshot,
                                       const core::SoftwareId& id) {
  auto it = snapshot.by_software.find(id);
  if (it != snapshot.by_software.end()) return it->second;
  // Unknown digest: the same shape the slow path returns for software that
  // is neither registered nor run-counted.
  proto::SoftwareInfo info;
  info.meta.id = id;
  info.known = false;
  return info;
}

std::shared_ptr<const ScoreSnapshot> BuildScoreSnapshot(
    const SoftwareRegistry& registry, const VoteStore& votes,
    const SnapshotBuildOptions& options, std::uint64_t epoch,
    util::TimePoint now) {
  auto snapshot = std::make_shared<ScoreSnapshot>();
  snapshot->epoch = epoch;
  snapshot->published_at = now;
  // Generations are read before the tables: a mutation racing the build
  // could only make the snapshot look *staler* than it is (a harmless
  // extra miss), never fresher. In practice builds run on the single
  // writer thread anyway.
  snapshot->registry_generation = registry.content_generation();
  snapshot->votes_generation = votes.content_generation();

  // Registered software, materialized through the same accessors the slow
  // path reads — equivalence is structural, not re-implemented.
  for (const core::SoftwareId& id : registry.AllSoftware()) {
    proto::SoftwareInfo info;
    info.run_count = registry.RunCount(id);
    auto meta = registry.GetSoftware(id);
    PISREP_CHECK(meta.ok()) << "software listed but not readable";
    info.meta = *meta;
    info.known = true;
    auto score = registry.GetScore(id);
    if (score.ok()) info.score = *score;
    if (!info.meta.company.empty()) {
      auto vendor = registry.GetVendorScore(info.meta.company);
      if (vendor.ok()) info.vendor_score = *vendor;
    }
    info.reported_behaviors =
        registry.ReportedBehaviors(id, options.behavior_report_threshold);
    info.comments =
        votes.VisibleComments(id, options.max_comments_per_query);
    snapshot->by_software.emplace(id, std::move(info));
  }

  // Run statistics attach to bare digests before any registration; the
  // slow path answers those with known=false plus the counter, so the
  // snapshot must too.
  for (const auto& [id, runs] : registry.AllRunCounts()) {
    if (snapshot->by_software.find(id) != snapshot->by_software.end()) {
      continue;
    }
    proto::SoftwareInfo info;
    info.meta.id = id;
    info.known = false;
    info.run_count = runs;
    snapshot->by_software.emplace(id, std::move(info));
  }

  for (const core::VendorScore& vendor : registry.AllVendorScores()) {
    snapshot->by_vendor.emplace(vendor.vendor, vendor);
  }
  return snapshot;
}

}  // namespace pisrep::server
