#include "server/feeds.h"

#include "util/hex.h"
#include "util/logging.h"

namespace pisrep::server {

namespace {

using storage::Row;
using storage::SchemaBuilder;
using storage::Value;
using util::Result;
using util::Status;

FeedEntry EntryFromRow(const Row& row) {
  FeedEntry entry;
  entry.feed = row[1].AsStr();
  auto digest = util::HexDecode(row[2].AsStr());
  PISREP_CHECK(digest.ok() && digest->size() == entry.software.bytes.size())
      << "corrupt software id in feed store";
  for (std::size_t i = 0; i < digest->size(); ++i) {
    entry.software.bytes[i] = (*digest)[i];
  }
  entry.score = row[3].AsReal();
  auto behaviors = core::BehaviorSetFromString(row[4].AsStr());
  entry.behaviors = behaviors.ok() ? *behaviors : core::kNoBehaviors;
  entry.note = row[5].AsStr();
  entry.published_at = row[6].AsInt();
  // Rows persisted before the expert-flag column default to unflagged.
  entry.expert_flagged = row.size() > 7 && row[7].AsInt() != 0;
  return entry;
}

}  // namespace

FeedStore::FeedStore(storage::Database* db) : db_(db) {
  if (!db_->HasTable("feeds")) {
    Status status = db_->CreateTable(SchemaBuilder("feeds")
                                         .Str("name")
                                         .Int("publisher")
                                         .Str("description")
                                         .PrimaryKey("name")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  if (!db_->HasTable("feed_entries")) {
    Status status = db_->CreateTable(SchemaBuilder("feed_entries")
                                         .Str("key")
                                         .Str("feed")
                                         .Str("software")
                                         .Real("score")
                                         .Str("behaviors")
                                         .Str("note")
                                         .Int("published_at")
                                         .Int("flagged")
                                         .PrimaryKey("key")
                                         .Index("feed")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  feeds_ = db_->GetTable("feeds").value();
  entries_ = db_->GetTable("feed_entries").value();
}

Status FeedStore::CreateFeed(std::string_view name, core::UserId publisher,
                             std::string_view description) {
  if (name.empty()) return Status::InvalidArgument("feed name required");
  return feeds_->Insert(Row{
      Value::Str(std::string(name)),
      Value::Int(publisher),
      Value::Str(std::string(description)),
  });
}

bool FeedStore::HasFeed(std::string_view name) const {
  return feeds_->Contains(Value::Str(std::string(name)));
}

Result<core::UserId> FeedStore::FeedPublisher(std::string_view name) const {
  PISREP_ASSIGN_OR_RETURN(Row row,
                          feeds_->Get(Value::Str(std::string(name))));
  return row[1].AsInt();
}

Status FeedStore::Publish(const FeedEntry& entry, core::UserId publisher) {
  PISREP_ASSIGN_OR_RETURN(core::UserId owner, FeedPublisher(entry.feed));
  if (owner != publisher) {
    return Status::PermissionDenied("only the feed owner may publish");
  }
  if (entry.score < core::kMinRating || entry.score > core::kMaxRating) {
    return Status::InvalidArgument("feed score outside [1, 10]");
  }
  std::string key = entry.feed + ":" + entry.software.ToHex();
  return entries_->Upsert(Row{
      Value::Str(key),
      Value::Str(entry.feed),
      Value::Str(entry.software.ToHex()),
      Value::Real(entry.score),
      Value::Str(core::BehaviorSetToString(entry.behaviors)),
      Value::Str(entry.note),
      Value::Int(entry.published_at),
      Value::Int(entry.expert_flagged ? 1 : 0),
  });
}

Result<FeedEntry> FeedStore::Lookup(std::string_view feed,
                                    const core::SoftwareId& software) const {
  std::string key = std::string(feed) + ":" + software.ToHex();
  PISREP_ASSIGN_OR_RETURN(Row row, entries_->Get(Value::Str(key)));
  return EntryFromRow(row);
}

std::vector<FeedEntry> FeedStore::Entries(std::string_view feed) const {
  std::vector<FeedEntry> out;
  auto rows = entries_->FindByIndex("feed", Value::Str(std::string(feed)));
  if (!rows.ok()) return out;
  out.reserve(rows->size());
  for (const Row& row : *rows) out.push_back(EntryFromRow(row));
  return out;
}

std::vector<std::string> FeedStore::FeedNames() const {
  std::vector<std::string> names;
  feeds_->ForEach([&](const Row& row) { names.push_back(row[0].AsStr()); });
  return names;
}

}  // namespace pisrep::server
