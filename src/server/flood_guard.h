#ifndef PISREP_SERVER_FLOOD_GUARD_H_
#define PISREP_SERVER_FLOOD_GUARD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/types.h"
#include "obs/metrics.h"
#include "proto/wire.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace pisrep::server {

/// The registration puzzle is part of the client/server wire schema and
/// lives in proto/; the alias keeps the historical server-side spelling.
using Puzzle = proto::Puzzle;

/// Rate limiting and abuse resistance for account creation and voting.
class FloodGuard {
 public:
  struct Config {
    /// Puzzle difficulty for registrations (0 disables puzzles).
    int registration_puzzle_bits = 12;
    /// Max votes a single account may submit per day (0 = unlimited).
    int max_votes_per_user_per_day = 20;
    /// Max registrations per client source address per day (0 = unlimited).
    int max_registrations_per_source_per_day = 3;
    std::uint64_t seed = 0xf100d;
  };

  explicit FloodGuard(Config config);

  /// Issues a registration puzzle. The nonce is remembered until solved or
  /// the guard is reset. A non-empty `forced_nonce` is used verbatim
  /// instead of drawing one from the guard's RNG: the cluster router mints
  /// one nonce per RequestPuzzle and forces it onto every shard, so the
  /// subsequent Register broadcast validates everywhere.
  Puzzle IssuePuzzle(std::string_view forced_nonce = {});

  /// Verifies a puzzle solution; a nonce can be redeemed only once.
  util::Status CheckPuzzle(std::string_view nonce,
                           std::string_view solution);

  /// Brute-forces a solution (the honest client's work loop). Delegates to
  /// proto::SolvePuzzle; kept for server-side callers and benches.
  static std::string SolvePuzzle(const Puzzle& puzzle,
                                 std::uint64_t* attempts = nullptr);

  /// True when SHA-256(nonce || solution) has the required zero prefix.
  static bool SolutionValid(std::string_view nonce,
                            std::string_view solution, int difficulty_bits);

  /// Per-source registration throttle. `source` is any stable client
  /// identifier (the simulated host name — the real system deliberately
  /// avoids storing IPs, §2.2, so this state is transient and never
  /// persisted).
  util::Status CheckRegistrationAllowed(std::string_view source,
                                        util::TimePoint now);
  void RecordRegistration(std::string_view source, util::TimePoint now);

  /// Per-user vote throttle (§2.1 vote flooding: "allow normal users to be
  /// able to vote smoothly and yet be able to address abusive users").
  util::Status CheckVoteAllowed(core::UserId user, util::TimePoint now);
  void RecordVote(core::UserId user, util::TimePoint now);

  const Config& config() const { return config_; }

  /// Wires `pisrep_server_flood_rejections_total{kind=...}` counters into
  /// `metrics` (null detaches).
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  struct DayCounter {
    std::int64_t day = -1;
    int count = 0;
  };

  Config config_;
  util::Rng rng_;
  std::unordered_map<std::string, int> outstanding_puzzles_;
  std::unordered_map<std::string, DayCounter> registrations_;
  std::unordered_map<core::UserId, DayCounter> votes_;

  obs::Counter* puzzle_rejections_ = nullptr;
  obs::Counter* registration_rejections_ = nullptr;
  obs::Counter* vote_rejections_ = nullptr;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_FLOOD_GUARD_H_
