#ifndef PISREP_SERVER_MODERATION_H_
#define PISREP_SERVER_MODERATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "core/types.h"
#include "server/vote_store.h"
#include "util/status.h"

namespace pisrep::server {

/// A comment awaiting administrator review.
struct PendingComment {
  core::UserId author = 0;
  core::SoftwareId software;
  std::string comment;
  util::TimePoint submitted_at = 0;
};

/// The §2.1 third mitigation: "one or more administrators keeping track of
/// all ratings and comments going into the system, verifying the validity
/// and quality of the comments prior to allowing other users to view them."
///
/// When enabled, new comments enter this queue unapproved; administrators
/// approve or reject them, which flips the visibility flag in the vote
/// store. The paper notes this "would require a lot of manual work" — the
/// simulation measures exactly that queue backlog.
class ModerationQueue {
 public:
  explicit ModerationQueue(VoteStore* votes) : votes_(votes) {}

  /// Queues a comment for review (called by the server when moderation is
  /// enabled and a rating carries a non-empty comment).
  void Enqueue(PendingComment comment);

  std::size_t PendingCount() const { return queue_.size(); }

  /// Oldest pending comment; kNotFound when the queue is empty.
  util::Result<PendingComment> Peek() const;

  /// Approves the oldest pending comment, making it visible.
  util::Status ApproveNext();

  /// Rejects the oldest pending comment; it stays invisible forever.
  util::Status RejectNext();

  std::uint64_t approved_count() const { return approved_; }
  std::uint64_t rejected_count() const { return rejected_; }

  /// Called after every moderation decision with the comment and whether
  /// it was approved — how the server appends decisions to its audit log
  /// without this queue knowing the log exists.
  using Observer = std::function<void(const PendingComment&, bool approved)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

 private:
  VoteStore* votes_;
  std::deque<PendingComment> queue_;
  std::uint64_t approved_ = 0;
  std::uint64_t rejected_ = 0;
  Observer observer_;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_MODERATION_H_
