#include "server/vote_store.h"

#include <algorithm>
#include <unordered_set>

#include "util/hex.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::server {

namespace {

using core::SoftwareId;
using storage::Row;
using storage::SchemaBuilder;
using storage::Value;
using util::Result;
using util::Status;

SoftwareId IdFromHex(const std::string& hex) {
  SoftwareId id;
  auto decoded = util::HexDecode(hex);
  PISREP_CHECK(decoded.ok() && decoded->size() == id.bytes.size())
      << "corrupt software id in vote store";
  for (std::size_t i = 0; i < id.bytes.size(); ++i) {
    id.bytes[i] = (*decoded)[i];
  }
  return id;
}

StoredRating RatingFromRow(const Row& row) {
  StoredRating stored;
  stored.record.user = row[1].AsInt();
  stored.record.software = IdFromHex(row[2].AsStr());
  stored.record.score = static_cast<int>(row[3].AsInt());
  stored.record.comment = row[4].AsStr();
  stored.record.submitted_at = row[5].AsInt();
  stored.approved = row[6].AsBool();
  stored.trust_snapshot = row[7].AsReal();
  return stored;
}

}  // namespace

VoteStore::VoteStore(storage::Database* db) : db_(db) {
  if (!db_->HasTable("ratings")) {
    Status status = db_->CreateTable(SchemaBuilder("ratings")
                                         .Str("key")
                                         .Int("user")
                                         .Str("software")
                                         .Int("score")
                                         .Str("comment")
                                         .Int("submitted_at")
                                         .Boolean("approved")
                                         .Real("trust_snapshot")
                                         .PrimaryKey("key")
                                         .Index("user")
                                         .Index("software")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  if (!db_->HasTable("remarks")) {
    Status status = db_->CreateTable(SchemaBuilder("remarks")
                                         .Str("key")
                                         .Int("rater")
                                         .Str("comment_key")
                                         .Boolean("positive")
                                         .Int("submitted_at")
                                         .PrimaryKey("key")
                                         .Index("comment_key")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  ratings_ = db_->GetTable("ratings").value();
  remarks_ = db_->GetTable("remarks").value();
}

std::string VoteStore::VoteKey(core::UserId user,
                               const SoftwareId& software) {
  return std::to_string(user) + ":" + software.ToHex();
}

std::string VoteStore::CommentKey(core::UserId author,
                                  const SoftwareId& software) {
  return std::to_string(author) + ":" + software.ToHex();
}

Status VoteStore::SubmitRating(const core::RatingRecord& record,
                               bool approved, double trust_snapshot) {
  if (!core::IsValidRating(record.score)) {
    return Status::InvalidArgument(util::StrFormat(
        "rating %d outside [%d, %d]", record.score, core::kMinRating,
        core::kMaxRating));
  }
  if (trust_snapshot < 0.0) {
    return Status::InvalidArgument("trust snapshot must be >= 0");
  }
  std::string key = VoteKey(record.user, record.software);
  if (ratings_->Contains(Value::Str(key))) {
    // §2.1: "each user only votes for a software program exactly once."
    return Status::AlreadyExists("user already voted on this software");
  }
  return ratings_->Insert(Row{
      Value::Str(key),
      Value::Int(record.user),
      Value::Str(record.software.ToHex()),
      Value::Int(record.score),
      Value::Str(record.comment),
      Value::Int(record.submitted_at),
      Value::Boolean(approved),
      Value::Real(trust_snapshot),
  });
}

bool VoteStore::HasVoted(core::UserId user,
                         const SoftwareId& software) const {
  return ratings_->Contains(Value::Str(VoteKey(user, software)));
}

std::vector<StoredRating> VoteStore::VotesForSoftware(
    const SoftwareId& software) const {
  std::vector<StoredRating> out;
  auto rows = ratings_->FindByIndex("software", Value::Str(software.ToHex()));
  if (!rows.ok()) return out;
  out.reserve(rows->size());
  for (const Row& row : *rows) out.push_back(RatingFromRow(row));
  return out;
}

std::vector<StoredRating> VoteStore::VotesByUser(core::UserId user) const {
  std::vector<StoredRating> out;
  auto rows = ratings_->FindByIndex("user", Value::Int(user));
  if (!rows.ok()) return out;
  out.reserve(rows->size());
  for (const Row& row : *rows) out.push_back(RatingFromRow(row));
  return out;
}

std::vector<core::RatingRecord> VoteStore::VisibleComments(
    const SoftwareId& software, std::size_t limit) const {
  std::vector<StoredRating> votes = VotesForSoftware(software);
  std::vector<core::RatingRecord> comments;
  for (const StoredRating& vote : votes) {
    if (vote.approved && !vote.record.comment.empty()) {
      comments.push_back(vote.record);
    }
  }
  std::sort(comments.begin(), comments.end(),
            [](const core::RatingRecord& a, const core::RatingRecord& b) {
              return a.submitted_at > b.submitted_at;
            });
  if (comments.size() > limit) comments.resize(limit);
  return comments;
}

Status VoteStore::SetApproved(core::UserId author,
                              const SoftwareId& software, bool approved) {
  std::string key = VoteKey(author, software);
  PISREP_ASSIGN_OR_RETURN(Row row, ratings_->Get(Value::Str(key)));
  row[6] = Value::Boolean(approved);
  return ratings_->Upsert(std::move(row));
}

Status VoteStore::SubmitRemark(const Remark& remark) {
  if (remark.rater == remark.author) {
    return Status::InvalidArgument("cannot remark on your own comment");
  }
  std::string comment_key = CommentKey(remark.author, remark.software);
  if (!ratings_->Contains(
          Value::Str(VoteKey(remark.author, remark.software)))) {
    return Status::NotFound("no such comment to remark on");
  }
  std::string key = std::to_string(remark.rater) + ":" + comment_key;
  if (remarks_->Contains(Value::Str(key))) {
    return Status::AlreadyExists("already remarked on this comment");
  }
  return remarks_->Insert(Row{
      Value::Str(key),
      Value::Int(remark.rater),
      Value::Str(comment_key),
      Value::Boolean(remark.positive),
      Value::Int(remark.submitted_at),
  });
}

bool VoteStore::HasRemarked(core::UserId rater, core::UserId author,
                            const SoftwareId& software) const {
  std::string key =
      std::to_string(rater) + ":" + CommentKey(author, software);
  return remarks_->Contains(Value::Str(key));
}

std::int64_t VoteStore::RemarkBalance(core::UserId author,
                                      const SoftwareId& software) const {
  auto rows = remarks_->FindByIndex(
      "comment_key", Value::Str(CommentKey(author, software)));
  if (!rows.ok()) return 0;
  std::int64_t balance = 0;
  for (const Row& row : *rows) balance += row[3].AsBool() ? 1 : -1;
  return balance;
}

std::vector<SoftwareId> VoteStore::RatedSoftware() const {
  std::unordered_set<std::string> seen;
  std::vector<SoftwareId> out;
  ratings_->ForEach([&](const Row& row) {
    const std::string& hex = row[2].AsStr();
    if (seen.insert(hex).second) out.push_back(IdFromHex(hex));
  });
  return out;
}

std::size_t VoteStore::TotalVotes() const { return ratings_->size(); }
std::size_t VoteStore::TotalRemarks() const { return remarks_->size(); }

}  // namespace pisrep::server
