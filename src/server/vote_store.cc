#include "server/vote_store.h"

#include <algorithm>
#include <unordered_set>

#include "util/hex.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pisrep::server {

namespace {

using core::SoftwareId;
using storage::Row;
using storage::SchemaBuilder;
using storage::Value;
using util::Result;
using util::Status;

SoftwareId IdFromHex(const std::string& hex) {
  SoftwareId id;
  auto decoded = util::HexDecode(hex);
  PISREP_CHECK(decoded.ok() && decoded->size() == id.bytes.size())
      << "corrupt software id in vote store";
  for (std::size_t i = 0; i < id.bytes.size(); ++i) {
    id.bytes[i] = (*decoded)[i];
  }
  return id;
}

StoredRating RatingFromRow(const Row& row) {
  StoredRating stored;
  stored.record.user = row[1].AsInt();
  stored.record.software = IdFromHex(row[2].AsStr());
  stored.record.score = static_cast<int>(row[3].AsInt());
  stored.record.comment = row[4].AsStr();
  stored.record.submitted_at = row[5].AsInt();
  stored.approved = row[6].AsBool();
  stored.trust_snapshot = row[7].AsReal();
  return stored;
}

}  // namespace

VoteStore::VoteStore(storage::Database* db) : db_(db) {
  if (!db_->HasTable("ratings")) {
    Status status = db_->CreateTable(SchemaBuilder("ratings")
                                         .Str("key")
                                         .Int("user")
                                         .Str("software")
                                         .Int("score")
                                         .Str("comment")
                                         .Int("submitted_at")
                                         .Boolean("approved")
                                         .Real("trust_snapshot")
                                         .PrimaryKey("key")
                                         .Index("user")
                                         .Index("software")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  if (!db_->HasTable("remarks")) {
    Status status = db_->CreateTable(SchemaBuilder("remarks")
                                         .Str("key")
                                         .Int("rater")
                                         .Str("comment_key")
                                         .Boolean("positive")
                                         .Int("submitted_at")
                                         .PrimaryKey("key")
                                         .Index("comment_key")
                                         .Build());
    PISREP_CHECK(status.ok()) << status.ToString();
  }
  ratings_ = db_->GetTiered("ratings").value();
  remarks_ = db_->GetTiered("remarks").value();
  // Seed the rated-software cache from recovered rows. Iteration over
  // rows_ is insertion order, so rated_order_ matches what incremental
  // maintenance would have produced.
  ratings_->ForEach([this](const Row& row) {
    const std::string& hex = row[2].AsStr();
    if (votes_per_software_[hex]++ == 0) rated_order_.push_back(hex);
  });
}

void VoteStore::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    votes_metric_ = nullptr;
    remarks_metric_ = nullptr;
    dirty_gauge_ = nullptr;
    return;
  }
  votes_metric_ = metrics->GetCounter("pisrep_server_votes_total");
  remarks_metric_ = metrics->GetCounter("pisrep_server_remarks_total");
  dirty_gauge_ = metrics->GetGauge("pisrep_server_vote_dirty_pending");
  dirty_gauge_->Set(static_cast<std::int64_t>(dirty_order_.size()));
}

std::string VoteStore::VoteKey(core::UserId user,
                               const SoftwareId& software) {
  return std::to_string(user) + ":" + software.ToHex();
}

std::string VoteStore::CommentKey(core::UserId author,
                                  const SoftwareId& software) {
  return std::to_string(author) + ":" + software.ToHex();
}

Status VoteStore::SubmitRating(const core::RatingRecord& record,
                               bool approved, double trust_snapshot) {
  if (!core::IsValidRating(record.score)) {
    return Status::InvalidArgument(util::StrFormat(
        "rating %d outside [%d, %d]", record.score, core::kMinRating,
        core::kMaxRating));
  }
  if (trust_snapshot < 0.0) {
    return Status::InvalidArgument("trust snapshot must be >= 0");
  }
  std::string key = VoteKey(record.user, record.software);
  if (ratings_->Contains(Value::Str(key))) {
    // §2.1: "each user only votes for a software program exactly once."
    return Status::AlreadyExists("user already voted on this software");
  }
  std::string software_hex = record.software.ToHex();
  PISREP_RETURN_IF_ERROR(ratings_->Insert(Row{
      Value::Str(key),
      Value::Int(record.user),
      Value::Str(software_hex),
      Value::Int(record.score),
      Value::Str(record.comment),
      Value::Int(record.submitted_at),
      Value::Boolean(approved),
      Value::Real(trust_snapshot),
  }));
  if (votes_per_software_[software_hex]++ == 0) {
    rated_order_.push_back(software_hex);
  }
  MarkDirty(software_hex);
  ++content_generation_;
  if (votes_metric_) votes_metric_->Increment();
  return Status::Ok();
}

bool VoteStore::HasVoted(core::UserId user,
                         const SoftwareId& software) const {
  return ratings_->Contains(Value::Str(VoteKey(user, software)));
}

std::vector<StoredRating> VoteStore::VotesForSoftware(
    const SoftwareId& software) const {
  std::vector<StoredRating> out;
  Value key = Value::Str(software.ToHex());
  // The reserve comes from the in-memory per-software counter, not
  // CountByIndex — counting through the facade would walk (and possibly
  // pread) every vote once before the real visit walks them again.
  auto it = votes_per_software_.find(software.ToHex());
  if (it == votes_per_software_.end()) return out;
  out.reserve(it->second);
  // ForEachByIndex materializes StoredRating straight from the table rows
  // — no intermediate std::vector<Row> copy as FindByIndex would make.
  Status visited = ratings_->ForEachByIndex(
      "software", key, [&](const Row& row) { out.push_back(RatingFromRow(row)); });
  PISREP_CHECK(visited.ok()) << visited.ToString();
  return out;
}

void VoteStore::ForEachVoteOn(
    const SoftwareId& software,
    const std::function<void(core::UserId, int, double)>& fn) const {
  Status visited = ratings_->ForEachByIndex(
      "software", Value::Str(software.ToHex()), [&](const Row& row) {
        fn(row[1].AsInt(), static_cast<int>(row[3].AsInt()),
           row[7].AsReal());
      });
  PISREP_CHECK(visited.ok()) << visited.ToString();
}

std::vector<StoredRating> VoteStore::VotesByUser(core::UserId user) const {
  std::vector<StoredRating> out;
  Value key = Value::Int(user);
  Status visited = ratings_->ForEachByIndex(
      "user", key, [&](const Row& row) { out.push_back(RatingFromRow(row)); });
  PISREP_CHECK(visited.ok()) << visited.ToString();
  return out;
}

std::vector<core::RatingRecord> VoteStore::VisibleComments(
    const SoftwareId& software, std::size_t limit) const {
  std::vector<core::RatingRecord> comments;
  if (limit == 0) return comments;
  // Rows handed out by the facade may be transient cold decodes, valid
  // only inside the callback — so the filter pass copies just the two
  // scalars the selection needs, never a Row pointer. Only the `limit`
  // selected rows are re-fetched and materialized (comment strings
  // copied) afterwards.
  struct Candidate {
    std::int64_t submitted_at;
    core::UserId user;
  };
  std::vector<Candidate> visible;
  Status visited = ratings_->ForEachByIndex(
      "software", Value::Str(software.ToHex()), [&](const Row& row) {
        if (row[6].AsBool() && !row[4].AsStr().empty()) {
          visible.push_back(Candidate{row[5].AsInt(), row[1].AsInt()});
        }
      });
  if (!visited.ok()) return comments;
  auto newer = [](const Candidate& a, const Candidate& b) {
    return a.submitted_at > b.submitted_at;
  };
  if (visible.size() > limit) {
    std::partial_sort(visible.begin(), visible.begin() + limit,
                      visible.end(), newer);
    visible.resize(limit);
  } else {
    std::sort(visible.begin(), visible.end(), newer);
  }
  comments.reserve(visible.size());
  for (const Candidate& candidate : visible) {
    auto row = ratings_->Get(Value::Str(VoteKey(candidate.user, software)));
    PISREP_CHECK(row.ok()) << row.status().ToString();
    comments.push_back(RatingFromRow(*row).record);
  }
  return comments;
}

Status VoteStore::SetApproved(core::UserId author,
                              const SoftwareId& software, bool approved) {
  std::string key = VoteKey(author, software);
  PISREP_ASSIGN_OR_RETURN(Row row, ratings_->Get(Value::Str(key)));
  row[6] = Value::Boolean(approved);
  PISREP_RETURN_IF_ERROR(ratings_->Upsert(std::move(row)));
  // Approval only gates comment visibility, not the score — but marking
  // dirty keeps the invalidation protocol simple ("any write to a
  // software's votes dirties it") at the cost of one redundant recompute.
  MarkDirty(software.ToHex());
  ++content_generation_;
  return Status::Ok();
}

Status VoteStore::SubmitRemark(const Remark& remark) {
  if (remark.rater == remark.author) {
    return Status::InvalidArgument("cannot remark on your own comment");
  }
  std::string comment_key = CommentKey(remark.author, remark.software);
  if (!ratings_->Contains(
          Value::Str(VoteKey(remark.author, remark.software)))) {
    return Status::NotFound("no such comment to remark on");
  }
  std::string key = std::to_string(remark.rater) + ":" + comment_key;
  if (remarks_->Contains(Value::Str(key))) {
    return Status::AlreadyExists("already remarked on this comment");
  }
  PISREP_RETURN_IF_ERROR(remarks_->Insert(Row{
      Value::Str(key),
      Value::Int(remark.rater),
      Value::Str(comment_key),
      Value::Boolean(remark.positive),
      Value::Int(remark.submitted_at),
  }));
  if (remarks_metric_) remarks_metric_->Increment();
  return Status::Ok();
}

bool VoteStore::HasRemarked(core::UserId rater, core::UserId author,
                            const SoftwareId& software) const {
  std::string key =
      std::to_string(rater) + ":" + CommentKey(author, software);
  return remarks_->Contains(Value::Str(key));
}

std::int64_t VoteStore::RemarkBalance(core::UserId author,
                                      const SoftwareId& software) const {
  std::int64_t balance = 0;
  Status visited = remarks_->ForEachByIndex(
      "comment_key", Value::Str(CommentKey(author, software)),
      [&](const Row& row) { balance += row[3].AsBool() ? 1 : -1; });
  return visited.ok() ? balance : 0;
}

std::vector<SoftwareId> VoteStore::RatedSoftware() const {
  std::vector<SoftwareId> out;
  out.reserve(rated_order_.size());
  for (const std::string& hex : rated_order_) out.push_back(IdFromHex(hex));
  return out;
}

std::size_t VoteStore::VoteCountFor(const SoftwareId& software) const {
  auto it = votes_per_software_.find(software.ToHex());
  return it == votes_per_software_.end() ? 0 : it->second;
}

std::vector<SoftwareId> VoteStore::TakeDirtySoftware() {
  std::vector<SoftwareId> out;
  out.reserve(dirty_order_.size());
  for (const std::string& hex : dirty_order_) out.push_back(IdFromHex(hex));
  dirty_order_.clear();
  dirty_set_.clear();
  if (dirty_gauge_) dirty_gauge_->Set(0);
  return out;
}

void VoteStore::MarkDirty(const std::string& software_hex) {
  if (dirty_set_.insert(software_hex).second) {
    dirty_order_.push_back(software_hex);
    if (dirty_gauge_) {
      dirty_gauge_->Set(static_cast<std::int64_t>(dirty_order_.size()));
    }
  }
}

std::size_t VoteStore::TotalVotes() const { return ratings_->size(); }
std::size_t VoteStore::TotalRemarks() const { return remarks_->size(); }

}  // namespace pisrep::server
