#ifndef PISREP_SERVER_SCORE_SNAPSHOT_H_
#define PISREP_SERVER_SCORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/types.h"
#include "proto/wire.h"
#include "server/software_registry.h"
#include "server/vote_store.h"
#include "util/atomic_shared_ptr.h"
#include "util/clock.h"

namespace pisrep::server {

/// An immutable, epoch-numbered materialization of everything the read
/// path serves (DESIGN.md §14): every digest's full QuerySoftware answer
/// and every vendor's aggregate score, frozen at publication time.
///
/// RCU discipline: a ScoreSnapshot is built off to the side, published via
/// one atomic shared-pointer swap (SnapshotPublisher) and never modified
/// afterwards. Readers that grabbed the previous snapshot keep a reference
/// and finish against a consistent epoch; the last reference reclaims it.
/// Readers therefore never block the writer and the writer never blocks
/// readers — there is no lock to take on either side.
struct ScoreSnapshot {
  /// 1-based publication counter (monotonic per server).
  std::uint64_t epoch = 0;
  /// Sim time of publication (drives the snapshot-age gauge).
  util::TimePoint published_at = 0;
  /// Content generations of the two mutable stores at build time. The
  /// gated read path serves from the snapshot only while these still match
  /// the live stores, which keeps single-threaded callers bit-compatible
  /// with the historical always-fresh behaviour.
  std::uint64_t registry_generation = 0;
  std::uint64_t votes_generation = 0;

  /// Digest → fully materialized QuerySoftware answer. Digests known only
  /// through run statistics are present too (run_count set, known=false),
  /// mirroring the slow path's handling of unregistered software.
  std::unordered_map<core::SoftwareId, proto::SoftwareInfo,
                     core::SoftwareIdHash>
      by_software;
  /// Vendor → aggregate score: the vendor index the cluster router's
  /// QuerySoftware vendor-rewrite and QueryVendor serve from.
  std::unordered_map<core::VendorId, core::VendorScore> by_vendor;
};

/// The answer the snapshot gives for `id` — identical in shape to the slow
/// path: a full entry when the digest is known, otherwise an empty
/// known=false record carrying the digest. Shared by the server read path,
/// the consistency property test and the serving benchmark so all three
/// agree on the semantics by construction.
proto::SoftwareInfo LookupSnapshotInfo(const ScoreSnapshot& snapshot,
                                       const core::SoftwareId& id);

/// Freshness-relevant knobs copied from ReputationServer::Config; the
/// snapshot must materialize comments and behaviours exactly as the slow
/// path would render them.
struct SnapshotBuildOptions {
  std::size_t max_comments_per_query = 10;
  int behavior_report_threshold = 2;
};

/// Materializes a snapshot from the live stores through the same accessors
/// the slow path uses (structural equivalence, not a parallel
/// implementation). Runs on the writer thread; the result is immutable.
std::shared_ptr<const ScoreSnapshot> BuildScoreSnapshot(
    const SoftwareRegistry& registry, const VoteStore& votes,
    const SnapshotBuildOptions& options, std::uint64_t epoch,
    util::TimePoint now);

/// The single atomic publication point. Writers Publish a freshly built
/// snapshot (release); readers Current() it (acquire) and hold the
/// shared_ptr for the duration of their read. No mutex anywhere: the
/// atomic shared-pointer swap *is* the entire synchronization protocol,
/// which is why the read path carries no GUARDED_BY obligations for the
/// thread-safety analysis to flag. (util::AtomicSharedPtr rather than
/// std::atomic<std::shared_ptr> — see that header for the libstdc++
/// memory-order bug it works around.)
class SnapshotPublisher {
 public:
  /// The most recently published snapshot; null before the first Publish.
  std::shared_ptr<const ScoreSnapshot> Current() const {
    return snapshot_.Load();
  }

  void Publish(std::shared_ptr<const ScoreSnapshot> snapshot) {
    snapshot_.Store(std::move(snapshot));
  }

 private:
  util::AtomicSharedPtr<const ScoreSnapshot> snapshot_;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_SCORE_SNAPSHOT_H_
