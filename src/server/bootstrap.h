#ifndef PISREP_SERVER_BOOTSTRAP_H_
#define PISREP_SERVER_BOOTSTRAP_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "server/software_registry.h"
#include "util/status.h"

namespace pisrep::server {

/// One imported rating from an external software database.
struct BootstrapRecord {
  core::SoftwareMeta meta;
  double score = 0.0;   ///< the external database's score in [1, 10]
  int vote_count = 0;   ///< how many external votes back it
};

/// The §2.1 second mitigation: "bootstrapping of the program database at an
/// early stage ... copying the information from an existing, more or less
/// reliable, software rating database" so that "no common program has few
/// or zero votes".
///
/// Imported scores become bootstrap priors in the registry; the aggregation
/// job blends them with live community votes, weighting each external vote
/// like a trust-1 community vote.
class BootstrapImporter {
 public:
  explicit BootstrapImporter(SoftwareRegistry* registry)
      : registry_(registry) {}

  /// Imports a batch of records. Returns the number imported; fails fast on
  /// the first malformed record.
  util::Result<std::size_t> Import(const std::vector<BootstrapRecord>& records);

  /// Parses and imports the CSV interchange format, one record per line:
  ///   sha1_hex,file_name,file_size,company,version,score,vote_count
  /// Blank lines and lines starting with '#' are skipped.
  util::Result<std::size_t> ImportCsv(std::string_view csv);

 private:
  SoftwareRegistry* registry_;
};

}  // namespace pisrep::server

#endif  // PISREP_SERVER_BOOTSTRAP_H_
