#include "obs/export.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace pisrep::obs {

namespace {

/// Renders a double compactly: integral values without a decimal point
/// (bucket bounds and sim-time sums are usually whole numbers), otherwise
/// shortest-ish %g form. snprintf with a fixed format is deterministic.
std::string FormatDouble(double v) {
  auto as_int = static_cast<std::int64_t>(v);
  if (static_cast<double>(as_int) == v) return std::to_string(as_int);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

/// Splits `name{key="v"}` into the family and the raw label body (without
/// braces); label body is empty for unlabeled metrics.
void SplitName(const std::string& name, std::string* family,
               std::string* labels) {
  std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  // Drop the surrounding braces; keep the key="v",... body.
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// `family` + merged labels (existing body plus an extra key="v" pair).
std::string NameWith(const std::string& family, const std::string& labels,
                     const std::string& extra) {
  std::string out = family;
  out.push_back('{');
  out.append(labels);
  if (!labels.empty() && !extra.empty()) out.push_back(',');
  out.append(extra);
  out.push_back('}');
  return out;
}

const char* TypeName(MetricSnapshot::Type type) {
  switch (type) {
    case MetricSnapshot::Type::kCounter: return "counter";
    case MetricSnapshot::Type::kGauge: return "gauge";
    case MetricSnapshot::Type::kHistogram: return "histogram";
  }
  return "unknown";
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string RenderText(const MetricsRegistry& registry) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : registry.Snapshot()) {
    std::string family;
    std::string labels;
    SplitName(m.name, &family, &labels);
    if (family != last_family) {
      out.append("# TYPE ");
      out.append(family);
      out.push_back(' ');
      out.append(TypeName(m.type));
      out.push_back('\n');
      last_family = family;
    }
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        out.append(m.name);
        out.push_back(' ');
        out.append(std::to_string(m.counter_value));
        out.push_back('\n');
        break;
      case MetricSnapshot::Type::kGauge:
        out.append(m.name);
        out.push_back(' ');
        out.append(std::to_string(m.gauge_value));
        out.push_back('\n');
        break;
      case MetricSnapshot::Type::kHistogram: {
        // Buckets are exported cumulatively, Prometheus style.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          cumulative += m.bucket_counts[i];
          std::string le = i < m.bounds.size()
                               ? FormatDouble(m.bounds[i])
                               : std::string("+Inf");
          out.append(NameWith(family + "_bucket", labels,
                              "le=\"" + le + "\""));
          out.push_back(' ');
          out.append(std::to_string(cumulative));
          out.push_back('\n');
        }
        out.append(labels.empty() ? family + "_sum"
                                  : NameWith(family + "_sum", labels, ""));
        out.push_back(' ');
        out.append(FormatDouble(m.sum));
        out.push_back('\n');
        out.append(labels.empty() ? family + "_count"
                                  : NameWith(family + "_count", labels, ""));
        out.push_back(' ');
        out.append(std::to_string(m.count));
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string RenderJson(const MetricsRegistry& registry) {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& m : registry.Snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, m.name);
    out.append(",\"type\":\"");
    out.append(TypeName(m.type));
    out.append("\"");
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        out.append(",\"value\":");
        out.append(std::to_string(m.counter_value));
        break;
      case MetricSnapshot::Type::kGauge:
        out.append(",\"value\":");
        out.append(std::to_string(m.gauge_value));
        break;
      case MetricSnapshot::Type::kHistogram: {
        out.append(",\"bounds\":[");
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          if (i != 0) out.push_back(',');
          out.append(FormatDouble(m.bounds[i]));
        }
        out.append("],\"buckets\":[");
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          if (i != 0) out.push_back(',');
          out.append(std::to_string(m.bucket_counts[i]));
        }
        out.append("],\"sum\":");
        out.append(FormatDouble(m.sum));
        out.append(",\"count\":");
        out.append(std::to_string(m.count));
        break;
      }
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

std::string RenderDigest(const MetricsRegistry& registry) {
  std::string out;
  bool first = true;
  for (const MetricSnapshot& m : registry.Snapshot()) {
    if (!first) out.push_back(' ');
    first = false;
    out.append(m.name);
    out.push_back('=');
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        out.append(std::to_string(m.counter_value));
        break;
      case MetricSnapshot::Type::kGauge:
        out.append(std::to_string(m.gauge_value));
        break;
      case MetricSnapshot::Type::kHistogram:
        out.append(std::to_string(m.count));
        out.push_back('/');
        out.append(FormatDouble(m.sum));
        break;
    }
  }
  return out;
}

}  // namespace pisrep::obs
