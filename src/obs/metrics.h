#ifndef PISREP_OBS_METRICS_H_
#define PISREP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pisrep::obs {

/// Runtime observability: a registry of named counters, gauges, and
/// fixed-bucket histograms.
///
/// Design constraints (DESIGN.md §10):
///  - Metric handles are stable raw pointers owned by the registry; an
///    instrumented component fetches them once (AttachMetrics) and keeps
///    them for its lifetime, so the hot path never touches the registry
///    lock or a string.
///  - Updates are relaxed atomics; a disabled registry turns every update
///    into a single predictable branch (`enabled` pointer load + test).
///    Components not wired to any registry hold null handles — the same
///    single-branch cost.
///  - Export iterates a name-sorted map, so output order is deterministic
///    and sim runs are reproducible byte-for-byte (as long as the metric
///    *values* are sim-time derived; wall-clock-valued histograms are
///    documented as instrumentation-only).
///
/// Naming scheme: `pisrep_<layer>_<name>` with optional labels rendered
/// into the name itself via WithLabel: `pisrep_net_faults_total{kind="drop"}`.
/// Counter families end in `_total`; gauges and histograms do not.

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, pending dirty set, ...).
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket layout is chosen at registration time
/// and never changes, so two runs that observe the same values export the
/// same buckets — determinism lives in the layout, not the data source.
class Histogram {
 public:
  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-style raw bucket counts: bucket i counts observations
  /// <= bounds()[i]; the final extra slot is the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;  ///< sorted, strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Renders `family{key="value"}`; use for per-label metric names so one
/// family groups several cells in the exporters.
std::string WithLabel(std::string_view family, std::string_view key,
                      std::string_view value);

/// A flattened read of one metric, consumed by the exporters and tests.
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;  ///< full name, labels included
  Type type = Type::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 (+Inf)
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Owner of every metric. Registration is mutex-guarded and idempotent:
/// asking for an existing name returns the existing handle (the type must
/// match — a mismatch is a programming error and CHECK-fails). Updates on
/// the returned handles are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Flips collection on/off for every handle at once. Handles stay valid;
  /// while disabled every update is a branch and nothing is written.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Counter* GetCounter(const std::string& name) EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mutex_);
  /// `bounds` must be sorted and strictly increasing; an implicit +Inf
  /// bucket is appended. Re-registration ignores `bounds` and returns the
  /// existing histogram.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds) EXCLUDES(mutex_);

  /// Name-sorted flattened read of every metric (deterministic order).
  /// Concurrent updates on live handles land in the snapshot
  /// monotonically but not atomically across cells: a counter bumped
  /// mid-snapshot may show in one cell and not another. Totals are exact
  /// once updaters have quiesced (asserted by the tsan-stress suite).
  std::vector<MetricSnapshot> Snapshot() const EXCLUDES(mutex_);

  std::size_t MetricCount() const EXCLUDES(mutex_);

 private:
  struct Cell {
    MetricSnapshot::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::atomic<bool> enabled_{true};
  mutable util::Mutex mutex_;
  /// Sorted => stable export order. The map (registration) is guarded;
  /// updates on the handles inside the cells are lock-free atomics.
  std::map<std::string, Cell> cells_ GUARDED_BY(mutex_);
};

}  // namespace pisrep::obs

#endif  // PISREP_OBS_METRICS_H_
