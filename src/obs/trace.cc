#include "obs/trace.h"

#include <utility>

namespace pisrep::obs {

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Span::~Span() { Finish(); }

void Span::SetError(std::string_view note) {
  if (tracer_ == nullptr) return;
  rec_.error = true;
  rec_.note = std::string(note);
}

void Span::Finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;  // idempotent: a second Finish is a no-op
  tracer->FinishSpan(std::move(rec_));
}

Tracer::Tracer(const util::SimClock* clock, std::size_t capacity)
    : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {}

Span Tracer::StartSpan(std::string_view name) {
  SpanRecord rec;
  rec.trace_id = next_trace_id_++;
  rec.span_id = next_span_id_++;
  rec.name = std::string(name);
  rec.start = Now();
  ++spans_started_;
  return Span(this, std::move(rec));
}

Span Tracer::StartChild(std::string_view name, std::uint64_t trace_id,
                        std::uint64_t parent_span_id) {
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.parent_id = parent_span_id;
  rec.span_id = next_span_id_++;
  rec.name = std::string(name);
  rec.start = Now();
  ++spans_started_;
  return Span(this, std::move(rec));
}

void Tracer::FinishSpan(SpanRecord rec) {
  rec.end = Now();
  finished_.push_back(std::move(rec));
  while (finished_.size() > capacity_) {
    finished_.pop_front();
    ++spans_dropped_;
  }
}

}  // namespace pisrep::obs
