#include "obs/snapshot_logger.h"

#include "obs/export.h"
#include "util/logging.h"

namespace pisrep::obs {

SnapshotLogger::SnapshotLogger(const MetricsRegistry* registry,
                               util::Duration period)
    : registry_(registry), period_(period) {}

bool SnapshotLogger::Tick(util::TimePoint now) {
  if (registry_ == nullptr || period_ <= 0) return false;
  if (armed_ && now - last_ < period_) return false;
  armed_ = true;
  last_ = now;
  ++snapshots_;
  PISREP_LOG(kInfo) << "metrics @" << now << "ms: "
                    << RenderDigest(*registry_);
  return true;
}

}  // namespace pisrep::obs
