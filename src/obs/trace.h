#ifndef PISREP_OBS_TRACE_H_
#define PISREP_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "util/clock.h"

namespace pisrep::obs {

class Tracer;

/// One finished (or in-flight) span. Ids are small sequential integers
/// handed out by the Tracer, so a sim run produces the same ids every
/// time. `parent_id == 0` marks a root span.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string name;
  util::TimePoint start = 0;
  util::TimePoint end = 0;
  bool error = false;
  std::string note;
};

/// RAII handle for an open span. Movable, not copyable; finishes itself
/// on destruction (idempotent). A default-constructed Span is inactive
/// and every operation on it is a no-op, so instrumentation sites do not
/// need to branch on "is tracing attached".
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t trace_id() const { return rec_.trace_id; }
  std::uint64_t span_id() const { return rec_.span_id; }

  /// Marks the span failed and records why.
  void SetError(std::string_view note);
  /// Closes the span now (the destructor calls this too).
  void Finish();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord rec)
      : tracer_(tracer), rec_(std::move(rec)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

/// Factory + bounded sink for spans.
///
/// Timestamps come from the injected SimClock (never the wall clock);
/// without a clock every span is stamped 0, which keeps the causal
/// structure intact. Single-threaded by design: spans are opened and
/// finished on the event-loop thread. The tracer must outlive every Span
/// it handed out (spans finish into it from their destructors).
class Tracer {
 public:
  /// `clock` may be null (timestamps become 0); `capacity` bounds the
  /// finished-span buffer — the oldest record is dropped beyond it.
  explicit Tracer(const util::SimClock* clock = nullptr,
                  std::size_t capacity = 256);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Late clock injection, for owners created before the clock exists
  /// (e.g. a tracer handed to ScenarioRunner, whose loop owns the clock).
  void set_clock(const util::SimClock* clock) { clock_ = clock; }

  /// Opens a root span (fresh trace id).
  Span StartSpan(std::string_view name);
  /// Opens a child span continuing `trace_id` under `parent_span_id` —
  /// the receiving half of cross-process propagation (the RPC codec
  /// carries the two ids as request attributes).
  Span StartChild(std::string_view name, std::uint64_t trace_id,
                  std::uint64_t parent_span_id);

  const std::deque<SpanRecord>& finished() const { return finished_; }
  std::uint64_t spans_started() const { return spans_started_; }
  std::uint64_t spans_dropped() const { return spans_dropped_; }

 private:
  friend class Span;
  void FinishSpan(SpanRecord rec);
  util::TimePoint Now() const { return clock_ ? clock_->Now() : 0; }

  const util::SimClock* clock_;
  std::size_t capacity_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t spans_started_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::deque<SpanRecord> finished_;
};

}  // namespace pisrep::obs

#endif  // PISREP_OBS_TRACE_H_
