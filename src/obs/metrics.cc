#include "obs/metrics.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace pisrep::obs {

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  PISREP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be sorted";
  PISREP_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
               bounds_.end())
      << "histogram bounds must be strictly increasing";
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // First bucket whose upper bound admits v; everything above every bound
  // lands in the +Inf slot.
  std::size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::string WithLabel(std::string_view family, std::string_view key,
                      std::string_view value) {
  std::string out;
  out.reserve(family.size() + key.size() + value.size() + 5);
  out.append(family);
  out.push_back('{');
  out.append(key);
  out.append("=\"");
  out.append(value);
  out.append("\"}");
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  util::MutexLock lock(&mutex_);
  auto it = cells_.find(name);
  if (it != cells_.end()) {
    PISREP_CHECK(it->second.type == MetricSnapshot::Type::kCounter)
        << "metric '" << name << "' already registered with another type";
    return it->second.counter.get();
  }
  Cell cell;
  cell.type = MetricSnapshot::Type::kCounter;
  // Private-constructor factory. pisrep-lint: allow(raw-new-delete)
  cell.counter.reset(new Counter(&enabled_));
  Counter* handle = cell.counter.get();
  cells_.emplace(name, std::move(cell));
  return handle;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  util::MutexLock lock(&mutex_);
  auto it = cells_.find(name);
  if (it != cells_.end()) {
    PISREP_CHECK(it->second.type == MetricSnapshot::Type::kGauge)
        << "metric '" << name << "' already registered with another type";
    return it->second.gauge.get();
  }
  Cell cell;
  cell.type = MetricSnapshot::Type::kGauge;
  // Private-constructor factory. pisrep-lint: allow(raw-new-delete)
  cell.gauge.reset(new Gauge(&enabled_));
  Gauge* handle = cell.gauge.get();
  cells_.emplace(name, std::move(cell));
  return handle;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  util::MutexLock lock(&mutex_);
  auto it = cells_.find(name);
  if (it != cells_.end()) {
    PISREP_CHECK(it->second.type == MetricSnapshot::Type::kHistogram)
        << "metric '" << name << "' already registered with another type";
    return it->second.histogram.get();
  }
  Cell cell;
  cell.type = MetricSnapshot::Type::kHistogram;
  // Private-constructor factory. pisrep-lint: allow(raw-new-delete)
  cell.histogram.reset(new Histogram(&enabled_, std::move(bounds)));
  Histogram* handle = cell.histogram.get();
  cells_.emplace(name, std::move(cell));
  return handle;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  util::MutexLock lock(&mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.type = cell.type;
    switch (cell.type) {
      case MetricSnapshot::Type::kCounter:
        snap.counter_value = cell.counter->Value();
        break;
      case MetricSnapshot::Type::kGauge:
        snap.gauge_value = cell.gauge->Value();
        break;
      case MetricSnapshot::Type::kHistogram:
        snap.bounds = cell.histogram->bounds();
        snap.bucket_counts = cell.histogram->BucketCounts();
        snap.sum = cell.histogram->Sum();
        snap.count = cell.histogram->Count();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t MetricsRegistry::MetricCount() const {
  util::MutexLock lock(&mutex_);
  return cells_.size();
}

}  // namespace pisrep::obs
