#ifndef PISREP_OBS_SNAPSHOT_LOGGER_H_
#define PISREP_OBS_SNAPSHOT_LOGGER_H_

#include <cstdint>

#include "obs/metrics.h"
#include "util/clock.h"

namespace pisrep::obs {

/// Periodically logs a one-line metrics digest at kInfo.
///
/// Deliberately loop-agnostic (obs sits below net in the layer DAG): the
/// owner calls Tick(now) from whatever schedule it has — the
/// ReputationServer drives it from the EventLoop, so "periodic" means
/// sim-clock periodic and the wall clock is never read.
class SnapshotLogger {
 public:
  /// `registry` must outlive the logger. `period` <= 0 disables it.
  SnapshotLogger(const MetricsRegistry* registry, util::Duration period);

  /// Logs a digest on the first call and then whenever at least `period`
  /// sim-time has elapsed since the last snapshot; returns true when a
  /// line was emitted.
  bool Tick(util::TimePoint now);

  std::uint64_t snapshots() const { return snapshots_; }

 private:
  const MetricsRegistry* registry_;
  util::Duration period_;
  bool armed_ = false;  ///< set once the first digest has been logged
  util::TimePoint last_ = 0;
  std::uint64_t snapshots_ = 0;
};

}  // namespace pisrep::obs

#endif  // PISREP_OBS_SNAPSHOT_LOGGER_H_
