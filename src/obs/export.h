#ifndef PISREP_OBS_EXPORT_H_
#define PISREP_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace pisrep::obs {

/// Prometheus-style text exposition of every metric in `registry`:
///
///   # TYPE pisrep_server_votes_total counter
///   pisrep_server_votes_total 42
///   # TYPE pisrep_net_rpc_client_latency_ms histogram
///   pisrep_net_rpc_client_latency_ms_bucket{le="50"} 3
///   pisrep_net_rpc_client_latency_ms_bucket{le="+Inf"} 7
///   pisrep_net_rpc_client_latency_ms_sum 1250
///   pisrep_net_rpc_client_latency_ms_count 7
///
/// Labeled cells (`family{key="value"}`) render verbatim; the `le` label
/// of histogram buckets merges into any existing label set. Output order
/// is the registry's name-sorted order — byte-stable across runs.
std::string RenderText(const MetricsRegistry& registry);

/// The same snapshot as a JSON array (one object per metric), for
/// programmatic consumers of the portal.
std::string RenderJson(const MetricsRegistry& registry);

/// One-line digest of counters and gauges (histograms appear as
/// count/sum), used by the periodic snapshot logger.
std::string RenderDigest(const MetricsRegistry& registry);

}  // namespace pisrep::obs

#endif  // PISREP_OBS_EXPORT_H_
